"""E2 — "a very efficient evaluation engine" (Sections 1-2).

The paper's premise is that the restricted algebra admits a set-at-a-time
engine far better than tuple-at-a-time scanning.  Reproduced shape: the
indexed semi-joins (sorted arrays + extreme tables) beat the quadratic
definitional evaluation, and the gap widens with instance size.
"""

import random

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.workloads.generators import random_instance

INDEXED = Evaluator("indexed")
NAIVE = Evaluator("naive")

QUERY = parse("R0 containing R1 before R2")
SIZES = (100, 400, 1600)


def _instance(size: int):
    rng = random.Random(size)
    return random_instance(
        rng,
        names=("R0", "R1", "R2"),
        max_nodes=size,
        min_nodes=size,
        max_depth=12,
        max_children=6,
    )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="e2-containment")
def bench_e2_indexed(benchmark, size):
    instance = _instance(size)
    expected = NAIVE.evaluate(QUERY, instance)
    result = benchmark(INDEXED.evaluate, QUERY, instance)
    assert result == expected


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="e2-containment")
def bench_e2_naive(benchmark, size):
    instance = _instance(size)
    result = benchmark(NAIVE.evaluate, QUERY, instance)
    assert result == INDEXED.evaluate(QUERY, instance)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="e2-order")
def bench_e2_order_ops_indexed(benchmark, size):
    """Order semi-joins are O(n + m): only the extreme endpoint matters."""
    instance = _instance(size)
    query = parse("R0 before R1 after R2")
    result = benchmark(INDEXED.evaluate, query, instance)
    assert result == NAIVE.evaluate(query, instance)


@pytest.mark.benchmark(group="e2-real-corpus")
def bench_e2_source_corpus_query(benchmark, source_engine):
    query = parse('Proc containing (Var @ "x")')
    result = benchmark(source_engine.query, query)
    assert len(result) <= len(source_engine.instance.region_set("Proc"))
