"""E3 — Proposition 3.3: the algebra ⇄ restricted-FMFT correspondence.

Reproduced shape: the translation itself is linear and cheap, and the
specialized algebra engine evaluates a query orders of magnitude faster
than the generic first-order evaluation of its translated formula — the
practical content of working in the restricted fragment.
"""

import random

import pytest

from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.fmft.model import model_from_instance
from repro.fmft.semantics import satisfying_words
from repro.fmft.translate import algebra_to_formula, formula_to_algebra
from repro.workloads.generators import random_instance

QUERY = parse('R0 containing (R1 @ "p") before R2')


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(33)
    instance = random_instance(
        rng, names=("R0", "R1", "R2"), max_nodes=120, patterns=("p",)
    )
    model, region_of_word = model_from_instance(instance, patterns=("p",))
    return instance, model, region_of_word


@pytest.mark.benchmark(group="e3-translate")
def bench_e3_algebra_to_formula(benchmark):
    formula = benchmark(algebra_to_formula, QUERY)
    assert formula_to_algebra(formula) == QUERY


@pytest.mark.benchmark(group="e3-translate")
def bench_e3_round_trip(benchmark):
    benchmark(lambda: formula_to_algebra(algebra_to_formula(QUERY)))


@pytest.mark.benchmark(group="e3-evaluate")
def bench_e3_algebra_engine(benchmark, corpus):
    instance, model, region_of_word = corpus
    result = benchmark(evaluate, QUERY, instance)
    words = satisfying_words(algebra_to_formula(QUERY), model)
    assert {region_of_word[w] for w in words} == set(result)


@pytest.mark.benchmark(group="e3-evaluate")
def bench_e3_logic_evaluation(benchmark, corpus):
    instance, model, region_of_word = corpus
    formula = algebra_to_formula(QUERY)
    words = benchmark(satisfying_words, formula, model)
    assert {region_of_word[w] for w in words} == set(evaluate(QUERY, instance))
