"""E17 — live ingestion: query tail latency under writes, and
segment-append commit cost vs a full corpus reload.

Two halves, both written to ``BENCH_e17.json``:

* **Tail latency under sustained writes** — the real HTTP stack with an
  ingest-enabled corpus, driven by the load generator twice with the
  same seed: once read-only, once with the write mix adding
  ``WRITE_RATE`` single-op ``/ingest`` batches per second.  Every
  commit publishes a new generation mid-traffic, so this measures what
  snapshot isolation actually costs readers.  Caching is off in both
  runs so the comparison is evaluation latency, not hit rate.
  Bound: query p99 under writes ≤ 2× the read-only p99 (+2 ms noise
  floor for sub-millisecond baselines).

* **Commit vs reload** — the same mutation applied both ways, timed
  in-process: a single-document append through the WAL + segment fast
  path (:meth:`~repro.ingest.LiveCorpus` append → new generation)
  versus ``reload_corpus`` (full re-parse of the corpus from its spec).
  Bound: the median segment-append commit is ≥ 5× faster than the
  median full reload — the point of having segments at all.

The bound function is a plain assert so the file also runs (and gates)
under ``pytest --benchmark-disable``.
"""

from __future__ import annotations

import json
import os
import random
import statistics
import tempfile
from pathlib import Path
from time import perf_counter

import pytest

from repro.server.config import CorpusSpec, ServerConfig
from repro.server.http import create_server
from repro.server.loadgen import percentile, run_load
from repro.server.service import QueryService
from repro.workloads.corpora import generate_play
from repro.workloads.queries import PLAY_QUERIES

QPS = 60.0
WRITE_RATE = 10.0
DURATION = 4.0
CONCURRENCY = 4
COMMITS = 30  #: timed appends for the commit-vs-reload half
RELOADS = 7  #: timed full reloads (each one re-parses the corpus)
#: Acts for the commit-vs-reload corpus.  A reload re-parses the whole
#: corpus while a commit's heavy step (engine rebuild + forest warm)
#: only scans it, so the ratio widens with corpus size; the load half
#: keeps the smaller corpus its QPS is calibrated for.
COMMIT_CORPUS_ACTS = 6


def _corpus_text(seed: int = 2027, acts: int = 3) -> str:
    rng = random.Random(seed)
    return generate_play(
        rng,
        acts=acts,
        scenes_per_act=3,
        speeches_per_scene=6,
        lines_per_speech=3,
    )


def _build_service(
    workdir: Path, ingest_dir: Path, acts: int = 3
) -> QueryService:
    source = workdir / "play.tagged"
    source.write_text(_corpus_text(acts=acts), encoding="utf-8")
    config = ServerConfig(
        workers=4,
        queue_depth=64,
        cache_enabled=False,
        corpora=(
            CorpusSpec(
                name="play",
                kind="tagged",
                path=str(source),
            ),
        ),
        shards=1,
        ingest_enabled=True,
        ingest_dir=str(ingest_dir),
        ingest_fsync=True,
        compaction_enabled=False,
    )
    return QueryService(config)


def _doc(i: int) -> str:
    return (
        f"<speech><speaker>Bench {i}</speaker>"
        f"<line>crown prophecy midnight throne {i}</line></speech>"
    )


# ----------------------------------------------------------------------
# Half 1: query tail latency with and without the write mix.
# ----------------------------------------------------------------------


def _measure_load(ingest_rate: float, seed: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-e17-") as tmp:
        workdir = Path(tmp)
        service = _build_service(workdir, workdir / "wal")
        (workdir / "wal").mkdir(exist_ok=True)
        server = create_server(service, port=0)
        server.serve_in_background()
        try:
            result = run_load(
                "127.0.0.1",
                server.bound_port,
                PLAY_QUERIES,
                corpus="play",
                qps=QPS,
                duration=DURATION,
                concurrency=CONCURRENCY,
                use_cache=False,
                seed=seed,
                ingest_rate=ingest_rate,
            )
        finally:
            server.stop()
    ordered = sorted(result.latencies)
    return {
        "ingest_rate": ingest_rate,
        "queries_ok": result.status_counts.get("200", 0),
        "status_counts": dict(sorted(result.status_counts.items())),
        "p50_ms": percentile(ordered, 0.50) * 1e3,
        "p95_ms": percentile(ordered, 0.95) * 1e3,
        "p99_ms": percentile(ordered, 0.99) * 1e3,
        "writes_sent": result.ingest_sent,
        "writes_ok": result.ingest_ok,
        "write_p99_ms": percentile(sorted(result.ingest_latencies), 0.99)
        * 1e3,
    }


# ----------------------------------------------------------------------
# Half 2: segment-append commit vs full reload, in-process.
# ----------------------------------------------------------------------


def _measure_commit_vs_reload() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-e17-") as tmp:
        workdir = Path(tmp)
        service = _build_service(
            workdir, workdir / "wal", acts=COMMIT_CORPUS_ACTS
        )
        (workdir / "wal").mkdir(exist_ok=True)
        try:
            commit_seconds = []
            for i in range(COMMITS):
                started = perf_counter()
                service.ingest(
                    "play",
                    [{"op": "append", "id": f"bench-{i}", "text": _doc(i)}],
                )
                commit_seconds.append(perf_counter() - started)
            reload_seconds = []
            for _ in range(RELOADS):
                started = perf_counter()
                service.reload_corpus("play")
                reload_seconds.append(perf_counter() - started)
        finally:
            service.close()
    return {
        "commits": COMMITS,
        "reloads": RELOADS,
        "corpus_acts": COMMIT_CORPUS_ACTS,
        "commit_median_ms": statistics.median(commit_seconds) * 1e3,
        "commit_p99_ms": percentile(sorted(commit_seconds), 0.99) * 1e3,
        "reload_median_ms": statistics.median(reload_seconds) * 1e3,
        "speedup": statistics.median(reload_seconds)
        / max(statistics.median(commit_seconds), 1e-9),
    }


# ----------------------------------------------------------------------
# Latency chart.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def commit_service():
    with tempfile.TemporaryDirectory(prefix="bench-e17-") as tmp:
        workdir = Path(tmp)
        service = _build_service(workdir, workdir / "wal")
        (workdir / "wal").mkdir(exist_ok=True)
        try:
            yield service
        finally:
            service.close()


@pytest.mark.benchmark(group="e17-ingest")
def bench_e17_commit_latency(benchmark, commit_service):
    counter = iter(range(10**9))

    def commit():
        i = next(counter)
        commit_service.ingest(
            "play",
            [{"op": "append", "id": f"bench-lat-{i}", "text": _doc(i)}],
        )

    benchmark(commit)


@pytest.mark.benchmark(group="e17-ingest")
def bench_e17_reload_latency(benchmark, commit_service):
    benchmark(lambda: commit_service.reload_corpus("play"))


# ----------------------------------------------------------------------
# The acceptance assertion + JSON artifact.
# ----------------------------------------------------------------------


def _measure_load_best(ingest_rate: float, runs: int = 3) -> dict:
    """Min-of-N over whole load runs (keyed by query p99).

    The E15 discipline: on a noisy single-CPU container one background
    hiccup (an fsync stall, a GC pause in the harness itself) can blow
    a 4-second run's tail by an order of magnitude; the best of two
    runs measures the service, not the neighbourhood.
    """
    samples = [
        _measure_load(ingest_rate=ingest_rate, seed=17 + attempt)
        for attempt in range(runs)
    ]
    return min(samples, key=lambda s: s["p99_ms"])


def bench_e17_ingest_bound():
    read_only = _measure_load_best(ingest_rate=0.0)
    under_writes = _measure_load_best(ingest_rate=WRITE_RATE)
    commit = _measure_commit_vs_reload()

    report = {
        "experiment": "e17-ingest",
        "cpu_count": os.cpu_count(),
        "qps": QPS,
        "write_rate": WRITE_RATE,
        "duration_seconds": DURATION,
        "read_only": read_only,
        "under_writes": under_writes,
        "commit_vs_reload": commit,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_e17.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    # Both runs must actually have done their job …
    assert read_only["queries_ok"] > 0, read_only
    assert under_writes["queries_ok"] > 0, under_writes
    assert under_writes["writes_ok"] >= WRITE_RATE * DURATION * 0.5, under_writes
    # … reads must not fall apart under sustained writes (2 ms noise
    # floor keeps a sub-millisecond baseline from flaking the ratio) …
    assert under_writes["p99_ms"] <= 2.0 * read_only["p99_ms"] + 2.0, report
    # … and a segment-append commit must beat a full reload soundly.
    assert commit["speedup"] >= 5.0, commit
