"""A1 — ablations of the engine's design choices (DESIGN.md §5).

Each pair isolates one implementation decision the library makes:

* **memoization** — common sub-expressions are evaluated once per query;
* **extreme tables** — the indexed semi-joins vs the definitional scan
  (the core of the "efficient evaluation engine" claim, complementing
  E2 with a common-subexpression-heavy query);
* **windowed BI** — the sparse-table both-included vs the triple loop;
* **forest reuse** — direct operators on a cached instance forest vs
  rebuilding it per query.
"""

import random

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.core.forest import Forest
from repro.workloads.generators import figure_3_instance, random_instance

# A query whose sub-expressions repeat: memoization halves the work.
SHARED = parse(
    "((R0 containing R1) union (R0 containing R1) union "
    "((R0 containing R1) isect R2)) except (R0 containing R1)"
)


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(101)
    return random_instance(
        rng,
        names=("R0", "R1", "R2"),
        max_nodes=800,
        min_nodes=800,
        max_depth=12,
        max_children=6,
    )


@pytest.mark.benchmark(group="a1-memoization")
def bench_a1_memoized(benchmark, corpus):
    evaluator = Evaluator("indexed", memoize=True)
    result = benchmark(evaluator.evaluate, SHARED, corpus)
    assert result == Evaluator("indexed", memoize=False).evaluate(SHARED, corpus)


@pytest.mark.benchmark(group="a1-memoization")
def bench_a1_unmemoized(benchmark, corpus):
    evaluator = Evaluator("indexed", memoize=False)
    benchmark(evaluator.evaluate, SHARED, corpus)


@pytest.mark.benchmark(group="a1-join-tables")
def bench_a1_indexed_join(benchmark, corpus):
    evaluator = Evaluator("indexed")
    benchmark(evaluator.evaluate, parse("R0 containing R1"), corpus)


@pytest.mark.benchmark(group="a1-join-tables")
def bench_a1_scan_join(benchmark, corpus):
    evaluator = Evaluator("naive")
    benchmark(evaluator.evaluate, parse("R0 containing R1"), corpus)


@pytest.mark.benchmark(group="a1-bi-window")
def bench_a1_windowed_bi(benchmark):
    family = figure_3_instance(48)
    evaluator = Evaluator("indexed")
    result = benchmark(evaluator.evaluate, parse("bi(C, B, A)"), family)
    assert len(result) == 1


@pytest.mark.benchmark(group="a1-bi-window")
def bench_a1_loop_bi(benchmark):
    family = figure_3_instance(48)
    evaluator = Evaluator("naive")
    result = benchmark(evaluator.evaluate, parse("bi(C, B, A)"), family)
    assert len(result) == 1


@pytest.mark.benchmark(group="a1-forest-cache")
def bench_a1_cached_forest(benchmark, corpus):
    evaluator = Evaluator("indexed")
    corpus.forest()  # warm the cache
    benchmark(evaluator.evaluate, parse("R0 dcontaining R1"), corpus)


@pytest.mark.benchmark(group="a1-forest-cache")
def bench_a1_rebuilt_forest(benchmark, corpus):
    evaluator = Evaluator("indexed")

    def evaluate_with_fresh_forest():
        corpus._forest = None  # drop the cache (ablation only)
        Forest.from_regions(corpus.all_regions())
        return evaluator.evaluate(parse("R0 dcontaining R1"), corpus)

    benchmark(evaluate_with_fresh_forest)
