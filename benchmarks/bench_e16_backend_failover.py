"""E16 — backend topology: hedged-request tail latency and kill/respawn
availability.

Two halves, both written to ``BENCH_e16.json``:

* **Hedging** — an in-process 3-node / 2-group / 2-replica topology
  where the primary node has a seeded 2% chance of a 50 ms stall —
  genuine tail latency, not uniform slowness: the hedge trigger is the
  node's own windowed p95, so a stall frequent enough to *become* the
  p95 would raise the trigger and disarm hedging.
  The same seeded query sequence runs with the hedge budget off and on;
  hedging must cut p99 while staying inside its request-volume budget.
* **Kill/respawn availability** — one abbreviated run of the
  backend-kill chaos harness (real ``repro serve`` subprocesses, a
  SIGKILL mid-load): availability during the kill window and the
  supervisor's respawn count, re-asserting the harness's invariants as
  a benchmark artifact.

The bound function is a plain assert so the file also runs (and gates)
under ``pytest --benchmark-disable``.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path
from time import perf_counter, sleep

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.backend.base import SliceProvider
from repro.backend.frontier import BackendNode, FrontierExecutor
from repro.backend.inprocess import InProcessBackend
from repro.engine.corpus import Corpus
from repro.faults.retry import CircuitBreaker
from repro.server.loadgen import percentile
from repro.workloads.corpora import generate_play

QUERY = "speech dwithin scene"
WARMUP_QUERIES = 30  #: fills the latency window that arms the trigger
MEASURED_QUERIES = 120
SLOW_RATE = 0.02
SLOW_SECONDS = 0.05
HEDGE_BUDGET = 0.5


class TailLatencyBackend(InProcessBackend):
    """An in-process backend with a seeded probabilistic stall — the
    'sometimes slow replica' hedging exists for."""

    def __init__(self, node_id, slices, rng):
        super().__init__(node_id, slices)
        self.rng = rng
        self.slow_rate = 0.0
        self.slow_seconds = 0.0

    def shard_query(self, *args, **kwargs):
        if self.slow_rate and self.rng.random() < self.slow_rate:
            sleep(self.slow_seconds)
        return super().shard_query(*args, **kwargs)


@pytest.fixture(scope="module")
def instance():
    rng = random.Random(2026)
    corpus = Corpus()
    for _ in range(4):
        corpus.add(
            generate_play(
                rng,
                acts=2,
                scenes_per_act=2,
                speeches_per_scene=4,
                lines_per_speech=3,
            )
        )
    return corpus.engine().instance


def _make_frontier(instance, hedge_budget: float, seed: int):
    provider = SliceProvider(lambda name: (instance, 1))
    rng = random.Random(seed)
    backends = [
        TailLatencyBackend(f"b{i}", provider, rng) for i in range(3)
    ]
    nodes = [
        BackendNode(
            backend,
            CircuitBreaker(failure_threshold=5, reset_timeout=1.0),
        )
        for backend in backends
    ]
    frontier = FrontierExecutor(
        nodes,
        groups=2,
        replicas=2,
        hedge_budget=hedge_budget,
        hedge_min_seconds=0.01,
        hedge_quantile=0.95,
    )
    # The tail stall goes on the node the ring made primary — the node
    # hedges race against.
    primary = frontier.replicas_for("play", 0)[0]
    primary.backend.slow_rate = SLOW_RATE
    primary.backend.slow_seconds = SLOW_SECONDS
    return frontier


def _measure(instance, hedge_budget: float, seed: int) -> dict:
    frontier = _make_frontier(instance, hedge_budget, seed)
    expr = parse(QUERY)
    try:
        for _ in range(WARMUP_QUERIES):
            frontier.run("play", expr)
        latencies = []
        hedges = hedge_wins = 0
        for _ in range(MEASURED_QUERIES):
            started = perf_counter()
            _, stats = frontier.run("play", expr)
            latencies.append(perf_counter() - started)
            hedges += stats.hedges
            hedge_wins += stats.hedge_wins
        budget = frontier._budget.snapshot()
        result = list(frontier.run("play", expr)[0])
    finally:
        frontier.close()
    ordered = sorted(latencies)
    return {
        "hedge_budget": hedge_budget,
        "queries": MEASURED_QUERIES,
        "p50_ms": percentile(ordered, 0.50) * 1e3,
        "p95_ms": percentile(ordered, 0.95) * 1e3,
        "p99_ms": percentile(ordered, 0.99) * 1e3,
        "hedges": hedges,
        "hedge_wins": hedge_wins,
        "primaries": budget["primaries"],
        "result": result,
    }


# ----------------------------------------------------------------------
# Latency chart.
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="e16-backend-failover")
@pytest.mark.parametrize("hedge_budget", [0.0, HEDGE_BUDGET])
def bench_e16_query_latency(benchmark, instance, hedge_budget):
    frontier = _make_frontier(instance, hedge_budget, seed=7)
    expr = parse(QUERY)
    try:
        frontier.run("play", expr)  # warm
        benchmark(frontier.run, "play", expr)
    finally:
        frontier.close()


# ----------------------------------------------------------------------
# The acceptance assertion + JSON artifact.
# ----------------------------------------------------------------------


def bench_e16_failover_bound(instance):
    from repro.faults.backendchaos import BackendChaosConfig, run_backend_chaos

    unhedged = _measure(instance, hedge_budget=0.0, seed=7)
    hedged = _measure(instance, hedge_budget=HEDGE_BUDGET, seed=7)

    # Same topology, same seeded stalls, same answer.
    expected = [
        (r.left, r.right)
        for r in Evaluator("indexed").evaluate(parse(QUERY), instance)
    ]
    for row in (unhedged, hedged):
        assert [(r.left, r.right) for r in row.pop("result")] == expected

    chaos = run_backend_chaos(
        BackendChaosConfig(
            seed=0,
            qps=30.0,
            warmup_seconds=0.5,
            kill_seconds=2.5,
            recovery_seconds=1.5,
            breaker_reset=0.5,
            respawn_delay=0.3,
        )
    )

    report = {
        "experiment": "e16-backend-failover",
        "query": QUERY,
        "corpus_regions": len(instance),
        "cpu_count": os.cpu_count(),
        "tail": {
            "slow_rate": SLOW_RATE,
            "slow_ms": SLOW_SECONDS * 1e3,
        },
        "hedging": {"without": unhedged, "with": hedged},
        "kill_respawn": {
            "ok": chaos.ok,
            "violations": chaos.violations,
            "killed_node": chaos.killed_node,
            "kill_availability": chaos.kill_availability,
            "respawns": chaos.respawns,
            "failovers": chaos.failovers,
            "responses": chaos.responses,
        },
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_e16.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    # Hedging must actually fire, win, and stay inside its budget …
    assert hedged["hedges"] >= 1, hedged
    assert hedged["hedge_wins"] >= 1, hedged
    assert hedged["hedges"] <= HEDGE_BUDGET * hedged["primaries"] + 1, hedged
    assert unhedged["hedges"] == 0, unhedged
    # … and buy a real p99 improvement against the tail stall.
    assert hedged["p99_ms"] <= 0.7 * unhedged["p99_ms"], (
        f"hedging bought no tail improvement: p99 "
        f"{unhedged['p99_ms']:.1f} ms -> {hedged['p99_ms']:.1f} ms"
    )
    # The kill/respawn half re-asserts the chaos invariants.
    assert chaos.ok, chaos.violations
    assert chaos.kill_availability >= 0.9, chaos.kill_availability
    assert chaos.respawns >= 1
