"""E15 — overhead of request tracing and SLO accounting on the serve path.

The contract (ISSUE 6): with tracing **disabled** — the default
``ServerConfig`` — the full request path (admission, worker pool,
evaluation, completion accounting) must run within 1% of a service with
the observability machinery stubbed out entirely.  The implementation
meets this by front-loading every per-request decision: ``_begin_trace``
is one ``None`` check when tracing is off, SLO recording is two deque
appends with burn gauges deferred to scrape time, and context
propagation is a single ``contextvars.copy_context()`` at submit.

``bench_e15_overhead_bound`` re-measures the claim (min-of-N
interleaved timing against a stubbed twin of the same service) and
asserts the ≤1% acceptance bound, then writes the full ladder —
stubbed, disabled, tracing at 0%, tracing at 100% sampling — to
``BENCH_e15.json``.
"""

import gc
import json
import os
import time
from pathlib import Path

import pytest

from repro.server import CorpusSpec, QueryService, ServerConfig

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=4)

#: Moderately heavy queries, cache off — evaluation dominates, as it
#: does for any real request, so the bound measures relative overhead
#: of the bookkeeping around it.
QUERIES = [
    "speech containing (speaker before line)",
    "(speech dwithin scene) union (line within speech)",
    "scene containing (speech containing line)",
]


class _NullSLO:
    """The observatory's interface with every verb stubbed out."""

    monitors: dict = {}

    def record(self, endpoint, status, seconds):
        pass

    def poll(self):
        pass

    def fast_burn_active(self):
        return {}

    def snapshot(self):
        return {}


def _make_service(tracing=False, sample_rate=0.1):
    return QueryService(
        ServerConfig(
            workers=2,
            queue_depth=8,
            cache_enabled=False,
            corpora=(PLAY,),
            tracing=tracing,
            trace_sample_rate=sample_rate,
        )
    )


def _make_stubbed_baseline():
    """The same service with this PR's per-request observability gone:
    no SLO accounting, no context propagation into the pool."""
    service = _make_service()
    service.slo = _NullSLO()
    service.pool.propagate_context = False
    return service


def _workload(service):
    for query in QUERIES:
        service.execute(query, use_cache=False)


def _best_of(service, rounds: int, iterations: int) -> float:
    """Min-of-N with the garbage collector pinned during the timed
    region: a cycle collection landing inside one service's round (and
    not another's) otherwise dominates the <1% signal on small boxes."""
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            for _ in range(iterations):
                _workload(service)
            best = min(best, time.perf_counter() - started)
        finally:
            gc.enable()
    return best


# ----------------------------------------------------------------------
# The ladder, for the comparison chart.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def services():
    built = {
        "stubbed": _make_stubbed_baseline(),
        "disabled": _make_service(),
        "tracing_0pct": _make_service(tracing=True, sample_rate=0.0),
        "tracing_100pct": _make_service(tracing=True, sample_rate=1.0),
    }
    for service in built.values():
        _workload(service)  # warm corpus, pool, bytecode
    yield built
    for service in built.values():
        service.close()


@pytest.mark.benchmark(group="e15-trace-overhead")
def bench_e15_stubbed_baseline(benchmark, services):
    benchmark(_workload, services["stubbed"])


@pytest.mark.benchmark(group="e15-trace-overhead")
def bench_e15_tracing_disabled(benchmark, services):
    benchmark(_workload, services["disabled"])


@pytest.mark.benchmark(group="e15-trace-overhead")
def bench_e15_tracing_sampled_0pct(benchmark, services):
    benchmark(_workload, services["tracing_0pct"])


@pytest.mark.benchmark(group="e15-trace-overhead")
def bench_e15_tracing_sampled_100pct(benchmark, services):
    benchmark(_workload, services["tracing_100pct"])


# ----------------------------------------------------------------------
# The acceptance assertion + JSON artifact.
# ----------------------------------------------------------------------


def bench_e15_overhead_bound():
    """Tracing-disabled request overhead stays within the 1% bound.

    Interleaved min-of-N timing: the minimum over many rounds is stable
    against scheduler noise, and interleaving the services keeps
    thermal/frequency drift from biasing either side.  The services are
    built fresh here (not shared with the ladder above) so the
    pytest-benchmark runs cannot skew this measurement's heap or SLO
    window state.
    """
    fresh = {
        "stubbed": _make_stubbed_baseline(),
        "disabled": _make_service(),
        "tracing_0pct": _make_service(tracing=True, sample_rate=0.0),
        "tracing_100pct": _make_service(tracing=True, sample_rate=1.0),
    }
    try:
        for service in fresh.values():
            for _ in range(3):
                _workload(service)  # warm corpus, pool, bytecode
        rounds, iterations = 15, 4
        best = {name: float("inf") for name in fresh}
        for _ in range(rounds):
            for name, service in fresh.items():
                best[name] = min(best[name], _best_of(service, 1, iterations))
    finally:
        for service in fresh.values():
            service.close()

    baseline = best["stubbed"]
    ratios = {name: seconds / baseline for name, seconds in best.items()}
    report = {
        "experiment": "e15-trace-overhead",
        "queries": QUERIES,
        "cpu_count": os.cpu_count(),
        "rounds": rounds,
        "iterations_per_round": iterations,
        "best_seconds": best,
        "ratio_vs_stubbed": ratios,
        "disabled_overhead_bound": 1.01,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_e15.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    assert ratios["disabled"] <= 1.01, (
        f"tracing-disabled request path is {ratios['disabled']:.4f}x the "
        f"stubbed baseline (bound: 1.01)"
    )
