"""E13 — serving-layer throughput: result cache and zero-drop load.

Two acceptance claims for the ``repro.server`` subsystem (ISSUE 3):

1. **Cache speedup** — the region algebra is side-effect-free, so a
   result is a pure function of (corpus generation, normalized plan);
   replaying a realistic query mix against :class:`QueryService` with
   the LRU result cache on must beat the cache-disabled service by at
   least 2x (``bench_e13_cache_speedup_bound`` measures min-of-N
   interleaved and asserts the bound; measured ratios are ~20x, the
   residual cost being parse + normalization on the request path).
2. **No shed load below saturation** — the open-loop load generator
   driving the HTTP front end at a QPS the worker pool can comfortably
   sustain must see zero dropped connections and zero 429s
   (``bench_e13_zero_drops_below_saturation``).

The ``benchmark``-fixture functions chart the cached/uncached pair; the
bound functions are plain asserts so the whole file also runs (and
gates) under ``pytest --benchmark-disable``.
"""

from time import perf_counter

import pytest

from repro.server import (
    CorpusSpec,
    QueryService,
    ServerConfig,
    create_server,
    run_load,
)
from repro.workloads import PLAY_QUERIES

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=5)
MIX = tuple(PLAY_QUERIES.values())


@pytest.fixture(scope="module")
def service():
    svc = QueryService(
        ServerConfig(workers=4, queue_depth=16, corpora=(PLAY,))
    )
    yield svc
    svc.close()


def _replay(service, use_cache: bool, repeats: int = 10) -> None:
    for _ in range(repeats):
        for query in MIX:
            service.execute(query, use_cache=use_cache)


# ----------------------------------------------------------------------
# The ladder, for the comparison chart.
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="e13-server-throughput")
def bench_e13_mix_uncached(benchmark, service):
    _replay(service, use_cache=False, repeats=1)  # warm
    benchmark(_replay, service, False)


@pytest.mark.benchmark(group="e13-server-throughput")
def bench_e13_mix_cached(benchmark, service):
    _replay(service, use_cache=True, repeats=1)  # populate
    benchmark(_replay, service, True)


# ----------------------------------------------------------------------
# The acceptance assertions.
# ----------------------------------------------------------------------


def bench_e13_cache_speedup_bound(service):
    """Cached replay of the play mix is at least 2x the uncached rate.

    Interleaved min-of-N keeps scheduler noise and frequency drift from
    biasing either side (same protocol as E12).
    """
    _replay(service, use_cache=False, repeats=1)
    _replay(service, use_cache=True, repeats=1)  # populate the cache

    rounds = 5
    uncached_best = cached_best = float("inf")
    for _ in range(rounds):
        started = perf_counter()
        _replay(service, use_cache=False)
        uncached_best = min(uncached_best, perf_counter() - started)
        started = perf_counter()
        _replay(service, use_cache=True)
        cached_best = min(cached_best, perf_counter() - started)

    speedup = uncached_best / cached_best
    assert speedup >= 2.0, (
        f"cached replay is only {speedup:.2f}x the uncached replay "
        f"(bound: 2x; uncached {uncached_best:.4f}s, "
        f"cached {cached_best:.4f}s)"
    )


def bench_e13_zero_drops_below_saturation():
    """At a comfortably sub-saturation QPS the server sheds nothing:
    every request connects and answers 200."""
    service = QueryService(
        ServerConfig(workers=4, queue_depth=16, corpora=(PLAY,))
    )
    server = create_server(service, port=0)
    server.serve_in_background()
    try:
        result = run_load(
            "127.0.0.1",
            server.bound_port,
            MIX,
            qps=40.0,
            duration=2.0,
            concurrency=4,
        )
        assert result.sent > 0
        assert result.dropped == 0, (
            f"{result.dropped} dropped connections below saturation:\n"
            f"{result.format_report()}"
        )
        assert result.status_counts == {"200": result.sent}, (
            f"non-200 responses below saturation: {result.status_counts}"
        )
    finally:
        server.stop()
