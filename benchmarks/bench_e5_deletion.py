"""E5 — Theorem 4.1: the deletion-witness construction at scale.

The theorem is constructive; this measures the construction.  Shape:
building ``S`` pays a per-selected-region witness scan on top of plain
evaluation (quadratic in the worst case, vs the engine's near-linear
joins), but the resulting witness set stays shallow — within the 2|e|
nesting bound — regardless of instance size.  The construction is a
theory tool, not a query path, so the scan is kept literal.
"""

import random

import pytest

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.core.regionset import RegionSet
from repro.properties.deletion import witness_set
from repro.workloads.generators import random_instance

QUERY = parse("(R0 containing R1) except (R0 within R2)")
SIZES = (100, 400, 1600)


def _corpus(size: int):
    rng = random.Random(size * 7)
    return random_instance(
        rng,
        names=("R0", "R1", "R2"),
        max_nodes=size,
        min_nodes=size,
        max_depth=12,
        max_children=6,
    )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="e5-witness")
def bench_e5_witness_construction(benchmark, size):
    instance = _corpus(size)
    witness = benchmark(witness_set, QUERY, instance)
    bound = 2 * max(A.size(QUERY), 1)
    assert RegionSet(witness).max_nesting_depth() <= bound


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="e5-witness")
def bench_e5_plain_evaluation_baseline(benchmark, size):
    instance = _corpus(size)
    benchmark(evaluate, QUERY, instance)
