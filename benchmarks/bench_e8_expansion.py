"""E8 — Propositions 5.2/5.4: bounded expansions vs native operators.

Reproduced shape: the pure-algebra expansions are correct under their
bounds but their cost grows with the bound (the expansion size is
O(bound) / O(bound²)), while the native operators are flat — the price
of staying inside the inexpressible-in-general core algebra.
"""

import pytest

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.algebra.expand import expand_both_included, expand_directly_including
from repro.workloads.generators import TreeNode, instance_from_trees, nested_tower

NAMES = ("R0", "R1", "R2")


def _wide_instance(width: int):
    children = []
    for i in range(width):
        children.append(TreeNode("R1"))
        children.append(TreeNode("R2"))
    return instance_from_trees([TreeNode("R0", children)], names=NAMES)


@pytest.mark.parametrize("depth", (4, 16, 64))
@pytest.mark.benchmark(group="e8-direct")
def bench_e8_direct_native(benchmark, depth):
    tower = nested_tower(depth, ("R0", "R1"))
    query = A.DirectlyIncluding(A.NameRef("R0"), A.NameRef("R1"))
    result = benchmark(evaluate, query, tower)
    assert result


@pytest.mark.parametrize("depth", (4, 16, 64))
@pytest.mark.benchmark(group="e8-direct")
def bench_e8_direct_expansion(benchmark, depth):
    """Prop 5.2 expansion sized to the tower's self-nesting."""
    tower = nested_tower(depth, ("R0", "R1"))
    bound = tower.region_set("R0").max_nesting_depth()
    expr = expand_directly_including(
        A.NameRef("R0"), A.NameRef("R1"), ("R0", "R1"), depth_bound=bound
    )
    result = benchmark(evaluate, expr, tower)
    assert result == evaluate(
        A.DirectlyIncluding(A.NameRef("R0"), A.NameRef("R1")), tower
    )


@pytest.mark.parametrize("width", (4, 16, 64))
@pytest.mark.benchmark(group="e8-bi")
def bench_e8_bi_native(benchmark, width):
    instance = _wide_instance(width)
    query = A.BothIncluded(A.NameRef("R0"), A.NameRef("R1"), A.NameRef("R2"))
    result = benchmark(evaluate, query, instance)
    assert result


@pytest.mark.parametrize("width", (4, 16))
@pytest.mark.benchmark(group="e8-bi")
def bench_e8_bi_expansion(benchmark, width):
    """Prop 5.4 expansion sized to the sibling width (O(width²) ops)."""
    instance = _wide_instance(width)
    expr = expand_both_included(
        A.NameRef("R0"), A.NameRef("R1"), A.NameRef("R2"), width_bound=2 * width
    )
    result = benchmark(evaluate, expr, instance)
    assert result == evaluate(
        A.BothIncluded(A.NameRef("R0"), A.NameRef("R1"), A.NameRef("R2")), instance
    )


@pytest.mark.parametrize("bound", (2, 8, 32))
@pytest.mark.benchmark(group="e8-size")
def bench_e8_expansion_size_growth(benchmark, bound):
    """Expansion construction: expression size grows with the bound."""
    expr = benchmark(
        expand_both_included,
        A.NameRef("R0"),
        A.NameRef("R1"),
        A.NameRef("R2"),
        bound,
    )
    assert A.size(expr) >= bound
