"""E11 — Section 7: the n-ary relational extension.

The conclusion proposes full joins over region relations; "it is easy to
see that direct inclusion and both-included can be expressed by this
extended language".  Reproduced shape: the relational formulations are
correct but pay the polynomial join blow-up, while the specialized
operators stay near-linear — quantifying the efficiency the restricted
algebra trades expressiveness for.
"""

import pytest

from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.algebra.relational import (
    RegionRelation,
    relational_both_included,
    relational_directly_including,
)
from repro.workloads.generators import balanced_tree, figure_3_instance

SIZES = (2, 3)  # balanced-tree depth knobs


@pytest.mark.parametrize("depth", (3, 4))
@pytest.mark.benchmark(group="e11-direct")
def bench_e11_relational_direct(benchmark, depth):
    instance = balanced_tree(depth, 3, ("R0", "R1"))
    result = benchmark(
        relational_directly_including,
        instance,
        instance.region_set("R0"),
        instance.region_set("R1"),
    )
    assert result == evaluate("R0 dcontaining R1", instance)


@pytest.mark.parametrize("depth", (3, 4, 6))
@pytest.mark.benchmark(group="e11-direct")
def bench_e11_native_direct(benchmark, depth):
    instance = balanced_tree(depth, 3, ("R0", "R1"))
    result = benchmark(evaluate, parse("R0 dcontaining R1"), instance)
    assert result


@pytest.mark.parametrize("k", (4, 8))
@pytest.mark.benchmark(group="e11-bi")
def bench_e11_relational_bi(benchmark, k):
    family = figure_3_instance(k)
    result = benchmark(
        relational_both_included,
        family.region_set("C"),
        family.region_set("B"),
        family.region_set("A"),
    )
    assert len(result) == 1


@pytest.mark.parametrize("k", (4, 8, 64))
@pytest.mark.benchmark(group="e11-bi")
def bench_e11_native_bi(benchmark, k):
    family = figure_3_instance(k)
    result = benchmark(evaluate, parse("bi(C, B, A)"), family)
    assert len(result) == 1


@pytest.mark.benchmark(group="e11-join")
def bench_e11_raw_join_cost(benchmark):
    """A single theta-join over two 60-region columns."""
    instance = balanced_tree(4, 3, ("R0", "R1"))
    left = RegionRelation.from_region_set("r", instance.region_set("R0"))
    right = RegionRelation.from_region_set("s", instance.region_set("R1"))
    joined = benchmark(left.join, right, "r", "includes", "s")
    assert len(joined) > 0
