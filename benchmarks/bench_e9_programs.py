"""E9 — Section 6: the one-loop chain program vs the naive iteration.

The paper: "A naive computation, that uses the above program, may be
very expensive, since each direct inclusion entail[s] loop execution.
It turns out that this can be avoided, and in fact one loop is
sufficient for computing the sequence."

Reproduced shape: on deeply nested sources the corrected one-loop
program does the work of a single layer peel (iterations = R1's
self-nesting depth) while the iterated baseline multiplies peels per
chain operator.  The printed program's global interference set is also
measured; EXPERIMENTS.md documents where it diverges.
"""

import random

import pytest

from repro.algebra.evaluator import evaluate
from repro.algebra.programs import (
    direct_chain_by_iterated_program,
    direct_chain_program,
    direct_chain_program_corrected,
)
from repro.engine.sourcecode import generate_program_source, parse_source
from repro.workloads.generators import nested_tower

CHAIN = ["Proc", "Proc_body", "Var"]


@pytest.fixture(scope="module", params=(3, 6, 9))
def deep_source(request):
    rng = random.Random(request.param)
    text = generate_program_source(
        rng, procedures=60, max_nesting=request.param, max_vars=3
    )
    return request.param, parse_source(text).instance


@pytest.mark.benchmark(group="e9-chain")
def bench_e9_one_loop_corrected(benchmark, deep_source):
    _, instance = deep_source
    result = benchmark(direct_chain_program_corrected, instance, CHAIN)
    native = evaluate("Proc dcontaining Proc_body dcontaining Var", instance)
    assert result.regions == native


@pytest.mark.benchmark(group="e9-chain")
def bench_e9_one_loop_paper(benchmark, deep_source):
    _, instance = deep_source
    result = benchmark(direct_chain_program, instance, CHAIN)
    native = evaluate("Proc dcontaining Proc_body dcontaining Var", instance)
    # Sound but possibly incomplete (see EXPERIMENTS.md E9).
    assert not result.regions.difference(native)


@pytest.mark.benchmark(group="e9-chain")
def bench_e9_iterated_baseline(benchmark, deep_source):
    _, instance = deep_source
    result = benchmark(direct_chain_by_iterated_program, instance, CHAIN)
    native = evaluate("Proc dcontaining Proc_body dcontaining Var", instance)
    assert result.regions == native


@pytest.mark.parametrize("depth", (12, 48))
@pytest.mark.benchmark(group="e9-iterations")
def bench_e9_iteration_count_on_towers(benchmark, depth):
    """Iterations track nesting depth — the paper's stated cost driver."""
    tower = nested_tower(depth, ("R0", "R1", "R2"))
    chain = ["R0", "R1", "R2"]
    one_loop = benchmark(direct_chain_program_corrected, tower, chain)
    iterated = direct_chain_by_iterated_program(tower, chain)
    assert one_loop.iterations <= iterated.iterations
    assert one_loop.regions == iterated.regions
