"""E4 — Theorems 3.4/3.5: emptiness testing and its hardness wall.

Reproduced shape: bounded-model emptiness testing is feasible for tiny
bounds and blows up combinatorially as the model bound or the number of
region names grows — the practical face of Co-NP-hardness.  The 3-CNF
reduction itself (Theorem 3.5) is linear-time to *construct*; deciding
it is what explodes.
"""

import random

import pytest

from repro.algebra.parser import parse
from repro.fmft.hardness import CNF, Literal, cnf_to_expression
from repro.fmft.satisfiability import find_nonempty_witness, is_empty_bounded
from repro.optimize.equivalence import check_equivalence

SATISFIABLE = parse("A containing (B before B)")
EMPTY = parse("(A containing B) except (A containing B)")


@pytest.mark.parametrize("max_nodes", (2, 3, 4))
@pytest.mark.benchmark(group="e4-emptiness-bound")
def bench_e4_emptiness_search_growth(benchmark, max_nodes):
    """Cost grows combinatorially with the model bound."""
    result = benchmark(
        is_empty_bounded, EMPTY, ("A", "B"), (), max_nodes
    )
    assert result is True


@pytest.mark.benchmark(group="e4-witness")
def bench_e4_witness_found_early(benchmark):
    """Non-empty expressions exit as soon as a witness instance appears."""
    witness = benchmark(find_nonempty_witness, SATISFIABLE, ("A", "B"), (), 4)
    assert witness is not None


@pytest.mark.parametrize("variables", (2, 4, 8, 16))
@pytest.mark.benchmark(group="e4-reduction")
def bench_e4_cnf_reduction_construction(benchmark, variables):
    """Theorem 3.5's reduction is polynomial (here: linear) to build."""
    rng = random.Random(variables)
    cnf = CNF(
        variables,
        tuple(
            tuple(
                Literal(rng.randint(1, variables), rng.random() < 0.5)
                for _ in range(3)
            )
            for _ in range(2 * variables)
        ),
    )
    expr = benchmark(cnf_to_expression, cnf)
    assert expr is not None


@pytest.mark.benchmark(group="e4-equivalence")
def bench_e4_equivalence_check(benchmark):
    """The optimizer's equivalence test = one emptiness test (Sec 3)."""
    first = parse("A containing B containing A")
    second = parse("A containing B")
    verdict = benchmark(
        check_equivalence, first, second, None, 3
    )
    assert not verdict.equivalent
