"""E6 — Figure 2 / Theorem 5.1: the direct-inclusion counter-example.

Reproduced artifacts: the alternating-nesting tower scales linearly for
the native forest-based ``⊃_d`` but costs one loop iteration per layer
in the Section 6 while-program; and the Theorem 5.1 refuter disposes of
candidate expressions quickly (the sweep in the tests exhausts them).
"""

import pytest

from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.algebra.programs import direct_including_program
from repro.properties.counterexamples import refute_direct_inclusion
from repro.workloads.generators import figure_2_instance

DEPTHS = (16, 64, 256)
TARGET = parse("B dcontaining A")


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.benchmark(group="e6-native")
def bench_e6_native_direct_inclusion(benchmark, depth):
    tower = figure_2_instance(depth)
    result = benchmark(evaluate, TARGET, tower)
    assert len(result) == len(tower.region_set("B"))


@pytest.mark.parametrize("depth", DEPTHS)
@pytest.mark.benchmark(group="e6-program")
def bench_e6_while_program(benchmark, depth):
    """The embedded-language program pays one iteration per B-layer."""
    tower = figure_2_instance(depth)
    b_set, a_set = tower.region_set("B"), tower.region_set("A")

    result = benchmark(direct_including_program, tower, b_set, a_set)
    assert result.iterations == len(b_set)
    assert result.regions == evaluate(TARGET, tower)


@pytest.mark.benchmark(group="e6-refuter")
def bench_e6_refuter_on_strawman(benchmark):
    """Refuting the Section 5.1 strawman ``B ⊃ A``."""
    candidate = parse("B containing A")
    witness = benchmark(refute_direct_inclusion, candidate)
    assert witness is not None
