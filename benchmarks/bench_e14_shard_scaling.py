"""E14 — sharded scatter-gather scaling (single-query latency).

One query against a large multi-play corpus, evaluated with the
:mod:`repro.shard` executor at shard counts 1/2/4/8.  Two metrics per
shard count, both written to ``BENCH_e14.json``:

* **wall seconds** — thread-pool wall time.  On the GIL-bound CPython
  this container runs (``cpu_count`` is recorded in the JSON), pure
  Python shard tasks cannot overlap, so wall time is flat-to-worse with
  shard count; the number is reported for honesty, not asserted.
* **critical-path seconds** — per-phase maxima of per-shard task times
  (measured with the ``serial`` pool, so tasks never interleave) plus
  merge time: the wall time of a machine with one core per shard.  The
  acceptance bound asserts **>= 1.8x** speedup at 4 shards over the
  single-shard evaluator, with the merge overhead reported alongside.

The ``benchmark``-fixture functions chart the per-shard-count latency;
the bound function is a plain assert so the file also runs (and gates)
under ``pytest --benchmark-disable``.
"""

from __future__ import annotations

import json
import os
import random
from pathlib import Path
from time import perf_counter

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.shard import ShardExecutor
from repro.workloads.corpora import generate_play

SHARD_COUNTS = (1, 2, 4, 8)
QUERY = "speech containing (speaker before line)"
ROUNDS = 3  #: min-of-N per configuration


def _corpus_text() -> str:
    rng = random.Random(2026)
    return "\n".join(
        generate_play(
            rng,
            acts=3,
            scenes_per_act=3,
            speeches_per_scene=6,
            lines_per_speech=3,
        )
        for _ in range(16)
    )


@pytest.fixture(scope="module")
def instance():
    from repro.engine.session import Engine

    return Engine.from_tagged_text(_corpus_text()).instance


@pytest.fixture(scope="module")
def expr():
    return parse(QUERY)


def _baseline_seconds(instance, expr, vm: bool = False) -> float:
    evaluator = Evaluator("indexed", vm=vm)
    evaluator.evaluate(expr, instance)  # warm caches
    best = float("inf")
    for _ in range(ROUNDS):
        started = perf_counter()
        evaluator.evaluate(expr, instance)
        best = min(best, perf_counter() - started)
    return best


def _sharded_measurements(instance, expr, shards: int, vm: bool = False) -> dict:
    """Min-of-N wall (thread pool) and critical-path (serial) times.

    ``vm`` defaults off: the scaling bound measures the partition /
    exchange / merge machinery against the interpreter it was sized
    for.  The compiled rows ride along in the JSON for comparison (the
    kernels shrink per-shard work but not the merge, so the *scaling*
    ratio is not asserted there).
    """
    wall = float("inf")
    with ShardExecutor(instance, shards, pool="thread", vm=vm) as executor:
        executor.run(expr)  # warm the pool and caches
        for _ in range(ROUNDS):
            started = perf_counter()
            executor.run(expr)
            wall = min(wall, perf_counter() - started)
    critical = float("inf")
    merge = 0.0
    with ShardExecutor(instance, shards, pool="serial", vm=vm) as executor:
        executor.run(expr)
        for _ in range(ROUNDS):
            started = perf_counter()
            executor.run(expr)
            elapsed = perf_counter() - started
            stats = executor.last_stats
            # A one-segment partition short-circuits to plain evaluation
            # and records no phases; its critical path IS the run time.
            path = stats.critical_path_seconds() or elapsed
            if path < critical:
                critical, merge = path, stats.merge_seconds
        segments = len(executor.partition)
    return {
        "shards": shards,
        "segments": segments,
        "wall_seconds": wall,
        "critical_path_seconds": critical,
        "merge_seconds": merge,
    }


# ----------------------------------------------------------------------
# The ladder, for the comparison chart.
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="e14-shard-scaling")
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def bench_e14_latency(benchmark, instance, expr, shards):
    with ShardExecutor(instance, shards, pool="thread") as executor:
        executor.run(expr)  # warm
        benchmark(executor.run, expr)


# ----------------------------------------------------------------------
# The acceptance assertion + JSON artifact.
# ----------------------------------------------------------------------


def bench_e14_scaling_bound(instance, expr):
    baseline = _baseline_seconds(instance, expr)
    rows = [
        _sharded_measurements(instance, expr, shards)
        for shards in SHARD_COUNTS
    ]
    for row in rows:
        row["wall_speedup"] = baseline / row["wall_seconds"]
        row["critical_path_speedup"] = baseline / row["critical_path_seconds"]
        row["merge_share"] = row["merge_seconds"] / row["critical_path_seconds"]
    # Additive comparison: the same ladder on the compiled (repro.vm)
    # path, reported but not bounded — bench E19 owns the VM's bound.
    vm_baseline = _baseline_seconds(instance, expr, vm=True)
    vm_rows = [
        _sharded_measurements(instance, expr, shards, vm=True)
        for shards in SHARD_COUNTS
    ]
    for row in vm_rows:
        row["wall_speedup"] = vm_baseline / row["wall_seconds"]
        row["critical_path_speedup"] = (
            vm_baseline / row["critical_path_seconds"]
        )
    report = {
        "experiment": "e14-shard-scaling",
        "query": QUERY,
        "corpus_regions": len(instance),
        "cpu_count": os.cpu_count(),
        "baseline_seconds": baseline,
        "rounds": ROUNDS,
        "results": rows,
        "compiled_baseline_seconds": vm_baseline,
        "compiled_results": vm_rows,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_e14.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    # Sharded evaluation must return the same answer it is being timed on.
    expected = Evaluator("indexed").evaluate(expr, instance)
    with ShardExecutor(instance, 4) as executor:
        assert list(executor.run(expr)) == list(expected)

    at_four = next(r for r in rows if r["shards"] == 4)
    assert at_four["critical_path_speedup"] >= 1.8, (
        f"critical-path speedup at 4 shards is only "
        f"{at_four['critical_path_speedup']:.2f}x (bound: 1.8x; baseline "
        f"{baseline * 1e3:.2f} ms, critical path "
        f"{at_four['critical_path_seconds'] * 1e3:.2f} ms, merge "
        f"{at_four['merge_seconds'] * 1e3:.2f} ms)"
    )
