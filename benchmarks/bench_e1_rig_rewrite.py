"""E1 — Figure 1 / Section 2.2: RIG-based query rewriting.

The paper's motivating optimization: under the Figure 1 RIG,
``e1 = Name ⊂ Proc_header ⊂ Proc ⊂ Program`` is equivalent to
``e2 = Name ⊂ Proc_header ⊂ Program``, and "the second expression has
less operations … and can be evaluated more efficiently".

Reproduced shape: e2 beats e1 on a generated source corpus, and the
optimizer turns e1 into e2 fast enough to pay for itself.
"""

import pytest

from repro.algebra.parser import parse
from repro.optimize.optimizer import optimize
from repro.rig.graph import figure_1_rig

E1 = "Name within Proc_header within Proc within Program"
E2 = "Name within Proc_header within Program"


@pytest.mark.benchmark(group="e1-query")
def bench_e1_original_chain(benchmark, source_engine):
    expr = parse(E1)
    result = benchmark(source_engine.query, expr)
    assert result == source_engine.query(E2)


@pytest.mark.benchmark(group="e1-query")
def bench_e1_rewritten_chain(benchmark, source_engine):
    expr = parse(E2)
    result = benchmark(source_engine.query, expr)
    assert len(result) == len(source_engine.instance.region_set("Proc"))


@pytest.mark.benchmark(group="e1-query")
def bench_e1_optimize_then_run(benchmark, source_engine):
    def optimized_run():
        plan = optimize(parse(E1), rig=figure_1_rig())
        return source_engine.query(plan.expression)

    result = benchmark(optimized_run)
    assert result == source_engine.query(E2)


@pytest.mark.benchmark(group="e1-optimizer")
def bench_e1_rewrite_cost(benchmark):
    """The polynomial chain-simplification pass itself."""
    rig = figure_1_rig()
    expr = parse(E1)
    plan = benchmark(optimize, expr, rig)
    assert plan.expression == parse(E2)
