"""Shared corpora and helpers for the benchmark harness.

Each ``bench_eN_*.py`` file regenerates one experiment of
EXPERIMENTS.md; fixtures here build the shared synthetic corpora once
per session.  Sizes are chosen so the full suite runs in a couple of
minutes while still showing each claimed asymptotic shape.
"""

from __future__ import annotations

import random

import pytest

from repro.engine.session import Engine
from repro.engine.sourcecode import generate_program_source


@pytest.fixture(scope="session")
def source_engine() -> Engine:
    """A large generated program (the paper's running corpus)."""
    rng = random.Random(2024)
    source = generate_program_source(rng, procedures=150, max_nesting=6, max_vars=4)
    return Engine.from_source(source)


@pytest.fixture(scope="session")
def play_engine() -> Engine:
    rng = random.Random(2025)
    from repro.workloads.corpora import generate_play

    text = generate_play(
        rng, acts=6, scenes_per_act=5, speeches_per_scene=8, lines_per_speech=3
    )
    return Engine.from_tagged_text(text)
