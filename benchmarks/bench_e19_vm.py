"""E19 — compiled plan execution vs the memoizing interpreter.

ISSUE 10's contract: lowering optimized plans to register programs of
set-at-a-time kernels over the flat ``(lefts, rights)`` arrays buys
≥5x on the E2-style query mix at the largest instance size, with the
interpreter kept as the bit-identical fallback.  The gap is pure
dispatch and materialization overhead: the kernels compute the same
extreme-table semi-joins the interpreter does, but per *set* instead of
per Region object, with no per-node memo dict, span bookkeeping, or
Region tuple construction.

``bench_e19_vm_speedup_bound`` re-measures the claim (interleaved
min-of-N) across SIZES and writes ``BENCH_e19.json``; CI fails the job
when the largest size falls under 3x (target: 5x).
"""

import gc
import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.workloads.generators import random_instance

#: The E2 mix: containment chains, a shared-subtree union, order folds.
QUERIES = [
    parse("R0 containing R1 before R2"),
    parse("(R0 within R1) union (R2 within R1)"),
    parse("R0 containing (R1 containing R2)"),
    parse("R0 before R1 after R2"),
]

SIZES = (100, 400, 1600)

SPEEDUP_TARGET = 5.0  #: the ISSUE 10 acceptance line, at SIZES[-1]
SPEEDUP_FLOOR = 3.0  #: CI fails below this


def _instance(size: int):
    rng = random.Random(size)
    return random_instance(
        rng,
        names=("R0", "R1", "R2"),
        max_nodes=size,
        min_nodes=size,
        max_depth=12,
        max_children=6,
    )


def _workload(evaluator, instance):
    for query in QUERIES:
        evaluator.evaluate(query, instance)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="e19-vm")
def bench_e19_compiled(benchmark, size):
    instance = _instance(size)
    vm = Evaluator("indexed")
    interp = Evaluator("indexed", vm=False)
    for query in QUERIES:  # the oracle first: results must be identical
        assert list(vm.evaluate(query, instance)) == list(
            interp.evaluate(query, instance)
        )
    benchmark(_workload, vm, instance)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="e19-vm")
def bench_e19_interpreted(benchmark, size):
    instance = _instance(size)
    benchmark(_workload, Evaluator("indexed", vm=False), instance)


def _best_of(evaluator, instance, rounds: int, iterations: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            for _ in range(iterations):
                _workload(evaluator, instance)
            best = min(best, time.perf_counter() - started)
        finally:
            gc.enable()
    return best


def bench_e19_vm_speedup_bound():
    """Compiled execution is ≥3x (target 5x) the interpreter at scale.

    Interleaved min-of-N per size so frequency drift cannot bias either
    executor; the ratio at the largest size is the acceptance gate.
    """
    vm = Evaluator("indexed")
    interp = Evaluator("indexed", vm=False)
    rounds, iterations = 12, 10
    ladder = {}
    for size in SIZES:
        instance = _instance(size)
        for query in QUERIES:
            assert list(vm.evaluate(query, instance)) == list(
                interp.evaluate(query, instance)
            ), f"size={size} query={query}"
        best_vm = best_interp = float("inf")
        for _ in range(rounds):
            best_vm = min(best_vm, _best_of(vm, instance, 1, iterations))
            best_interp = min(
                best_interp, _best_of(interp, instance, 1, iterations)
            )
        ladder[size] = {
            "compiled_seconds": best_vm,
            "interpreted_seconds": best_interp,
            "speedup": best_interp / best_vm,
        }

    report = {
        "experiment": "e19-vm",
        "queries": [str(q) for q in QUERIES],
        "cpu_count": os.cpu_count(),
        "rounds": rounds,
        "iterations_per_round": iterations,
        "sizes": ladder,
        "speedup_target": SPEEDUP_TARGET,
        "speedup_floor": SPEEDUP_FLOOR,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_e19.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    headline = ladder[SIZES[-1]]["speedup"]
    assert headline >= SPEEDUP_FLOOR, (
        f"compiled execution is only {headline:.2f}x the interpreter at "
        f"n={SIZES[-1]} (floor: {SPEEDUP_FLOOR}x, target: {SPEEDUP_TARGET}x)"
    )
