"""A2 — ablation: scalar vs numpy-vectorized containment joins.

The scalar indexed join pays two Python-level binary searches per left
region; the vectorized variant batches them into two ``searchsorted``
calls.  Shape: crossover in the tens of regions, then the gap grows
with the left side's size.
"""

import random

import pytest

from repro.core.regionset import RegionSet
from repro.core.vectorized import vectorized_included_in, vectorized_including

SIZES = (100, 1000, 10_000)


def _pair(size: int):
    rng = random.Random(size)
    make = lambda: RegionSet.of(
        *{
            (left, left + rng.randint(0, 60))
            for left in rng.sample(range(size * 40), size)
        }
    )
    return make(), make()


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="a2-including")
def bench_a2_scalar_including(benchmark, size):
    a, b = _pair(size)
    result = benchmark(a.including, b)
    assert result == vectorized_including(a, b)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.benchmark(group="a2-including")
def bench_a2_vectorized_including(benchmark, size):
    a, b = _pair(size)
    result = benchmark(vectorized_including, a, b)
    assert result == a.including(b)


@pytest.mark.parametrize("size", SIZES[1:])
@pytest.mark.benchmark(group="a2-included-in")
def bench_a2_scalar_included_in(benchmark, size):
    a, b = _pair(size)
    benchmark(a.included_in, b)


@pytest.mark.parametrize("size", SIZES[1:])
@pytest.mark.benchmark(group="a2-included-in")
def bench_a2_vectorized_included_in(benchmark, size):
    a, b = _pair(size)
    benchmark(vectorized_included_in, a, b)
