"""E12 — overhead of the observability layer on the evaluator hot path.

The contract the tracing/metrics instrumentation must keep (ISSUE 1):
with observability **disabled** — the default ``Evaluator()`` — the
evaluator must run within a few percent of the seed evaluator, whose
``_eval`` had no instrumentation at all.  The implementation meets this
by *shadowing* ``_eval`` with the instrumented twin only when a tracer
or metrics registry is attached, so the disabled path executes the
seed's exact code with zero per-node checks.

Every rung of this ladder pins ``vm=False``: the contract is about the
*interpreter* hot path, and the compiled engine (repro.vm) would bypass
the seed clone's ``_eval`` entirely.  A compiled rung rides along for
the chart; its speedup is asserted in bench E19, not here.

``bench_e12_overhead_bound`` re-measures the claim directly (min-of-N
interleaved timing against an in-file clone of the seed ``_eval``) and
asserts the ≤5% acceptance bound; the ``benchmark``-fixture functions
chart the full ladder: seed clone, disabled, metrics-only, tracing.
"""

import random
import time

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.workloads.generators import random_instance


class _SeedEvaluator(Evaluator):
    """The seed repository's ``_eval``, byte-for-byte (the baseline)."""

    def _eval(self, expr, instance, memo):
        if not self.memoize:
            return self._dispatch(expr, instance, memo)
        cached = memo.get(expr)
        if cached is not None:
            return cached
        result = self._dispatch(expr, instance, memo)
        memo[expr] = result
        return result


QUERIES = [
    # Memoization-heavy (the common-sub-expression path).
    "((R0 containing R1) union (R0 containing R1) union "
    "((R0 containing R1) isect R2)) except (R0 containing R1)",
    # Structural chain.
    "R0 containing (R1 containing R2)",
    # Mixed set and order operators.
    "(R0 within R1) union (R2 after R1)",
]


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(101)
    return random_instance(
        rng,
        names=("R0", "R1", "R2"),
        max_nodes=800,
        min_nodes=800,
        max_depth=12,
        max_children=6,
    )


@pytest.fixture(scope="module")
def queries():
    return [parse(text) for text in QUERIES]


def _workload(evaluator, queries, corpus):
    for query in queries:
        evaluator.evaluate(query, corpus)


# ----------------------------------------------------------------------
# The ladder, for the comparison chart.
# ----------------------------------------------------------------------


@pytest.mark.benchmark(group="e12-obs-overhead")
def bench_e12_seed_baseline(benchmark, corpus, queries):
    evaluator = _SeedEvaluator("indexed", vm=False)
    benchmark(_workload, evaluator, queries, corpus)


@pytest.mark.benchmark(group="e12-obs-overhead")
def bench_e12_obs_disabled(benchmark, corpus, queries):
    evaluator = Evaluator("indexed", vm=False)  # no tracer, no metrics
    benchmark(_workload, evaluator, queries, corpus)


@pytest.mark.benchmark(group="e12-obs-overhead")
def bench_e12_metrics_only(benchmark, corpus, queries):
    evaluator = Evaluator("indexed", metrics=MetricsRegistry(), vm=False)
    benchmark(_workload, evaluator, queries, corpus)


@pytest.mark.benchmark(group="e12-obs-overhead")
def bench_e12_tracing_enabled(benchmark, corpus, queries):
    evaluator = Evaluator(
        "indexed", tracer=Tracer(enabled=True, max_roots=8), vm=False
    )
    benchmark(_workload, evaluator, queries, corpus)


@pytest.mark.benchmark(group="e12-obs-overhead")
def bench_e12_vm_compiled(benchmark, corpus, queries):
    # The production default (VM on, observability off), for scale.
    evaluator = Evaluator("indexed")
    benchmark(_workload, evaluator, queries, corpus)


# ----------------------------------------------------------------------
# The acceptance assertion.
# ----------------------------------------------------------------------


def _best_of(evaluator, queries, corpus, rounds: int, iterations: int) -> float:
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        for _ in range(iterations):
            _workload(evaluator, queries, corpus)
        best = min(best, time.perf_counter() - started)
    return best


def bench_e12_overhead_bound(corpus, queries):
    """Disabled-observability overhead stays within the 5% acceptance bound.

    Interleaved min-of-N timing: the minimum over many rounds is stable
    against scheduler noise, and interleaving the two evaluators keeps
    thermal/frequency drift from biasing either side.
    """
    seed = _SeedEvaluator("indexed", vm=False)
    current = Evaluator("indexed", vm=False)
    for evaluator in (seed, current):  # warm caches and bytecode
        _workload(evaluator, queries, corpus)

    rounds, iterations = 9, 8
    seed_best = current_best = float("inf")
    for _ in range(rounds):
        seed_best = min(seed_best, _best_of(seed, queries, corpus, 1, iterations))
        current_best = min(
            current_best, _best_of(current, queries, corpus, 1, iterations)
        )
    ratio = current_best / seed_best
    # Identical code paths: the observed ratio is ~1.00; assert the
    # acceptance bound with margin for timer jitter.
    assert ratio <= 1.05, (
        f"observability-disabled evaluator is {ratio:.3f}x the seed "
        f"evaluator (bound: 1.05)"
    )
