"""E10 — Section 6 / Proposition 6.1: shrinking the interference set.

The chain program's per-iteration cost "is dominated by the inclusion
test involving the set All … and is heavily influenced by the size of
the set.  Can the size be reduced?"  Reproduced shapes:

* restricting ``All`` to a RIG-derived covering subset speeds up the
  single-operator program without changing its output;
* the polynomial min-cut solution for one pair vs exhaustive search;
* the Proposition 6.1 reduction: minimal-set search inherits vertex
  cover's exponential brute-force growth.
"""

import random

import pytest

from repro.algebra.evaluator import evaluate
from repro.algebra.programs import direct_including_program
from repro.engine.sourcecode import generate_program_source, parse_source
from repro.rig.graph import figure_1_rig
from repro.rig.minimal_set import (
    minimal_set_bruteforce,
    minimal_set_single_pair,
    vertex_cover_to_minimal_set,
)


@pytest.fixture(scope="module")
def source_instance():
    rng = random.Random(77)
    text = generate_program_source(rng, procedures=120, max_nesting=6, max_vars=4)
    return parse_source(text).instance


@pytest.mark.benchmark(group="e10-interference")
def bench_e10_full_interference_set(benchmark, source_instance):
    result = benchmark(
        direct_including_program,
        source_instance,
        source_instance.region_set("Proc"),
        source_instance.region_set("Var"),
    )
    assert result.regions == evaluate("Proc dcontaining Var", source_instance)


@pytest.mark.benchmark(group="e10-interference")
def bench_e10_minimal_interference_set(benchmark, source_instance):
    """All restricted to the min-cut cover of (Proc, Var)."""
    cover = minimal_set_single_pair(figure_1_rig(), "Proc", "Var")
    result = benchmark(
        direct_including_program,
        source_instance,
        source_instance.region_set("Proc"),
        source_instance.region_set("Var"),
        tuple(cover),
    )
    assert result.regions == evaluate("Proc dcontaining Var", source_instance)


@pytest.mark.benchmark(group="e10-solvers")
def bench_e10_min_cut_single_pair(benchmark):
    rig = figure_1_rig()
    cover = benchmark(minimal_set_single_pair, rig, "Program", "Var")
    brute = minimal_set_bruteforce(rig, ["Program", "Var"])
    assert len(cover) == len(brute)


@pytest.mark.parametrize("vertices", (4, 6, 8))
@pytest.mark.benchmark(group="e10-hardness")
def bench_e10_bruteforce_growth(benchmark, vertices):
    """Brute-force minimal set on VC-reduced instances grows exponentially."""
    rng = random.Random(vertices)
    names = [f"v{i}" for i in range(vertices)]
    edges = sorted(
        {tuple(sorted(rng.sample(names, 2))) for _ in range(vertices * 2)}
    )
    rig, chain = vertex_cover_to_minimal_set(names, edges)
    result = benchmark(minimal_set_bruteforce, rig, chain)
    assert result is not None
