"""E7 — Figure 3 / Theorem 5.3: the both-included counter-example.

Reproduced shape: on the ``4k+1``-sibling family the windowed
(sparse-table) ``BI`` implementation scales near-linearly while the
definitional triple loop is cubic; the reduce step of the proof (merging
the two isomorphic middle ``A`` regions) is cheap and flips the result.
"""

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.properties.counterexamples import refute_both_included
from repro.properties.reduction import isomorphic_sibling_pairs, reduce_regions
from repro.workloads.generators import figure_3_instance

INDEXED = Evaluator("indexed")
NAIVE = Evaluator("naive")
TARGET = parse("bi(C, B, A)")
KS = (8, 32, 128)


@pytest.mark.parametrize("k", KS)
@pytest.mark.benchmark(group="e7-bi")
def bench_e7_bi_indexed(benchmark, k):
    family = figure_3_instance(k)
    result = benchmark(INDEXED.evaluate, TARGET, family)
    assert len(result) == 1


@pytest.mark.parametrize("k", KS[:2])
@pytest.mark.benchmark(group="e7-bi")
def bench_e7_bi_naive(benchmark, k):
    family = figure_3_instance(k)
    result = benchmark(NAIVE.evaluate, TARGET, family)
    assert len(result) == 1


@pytest.mark.parametrize("k", (8, 32))
@pytest.mark.benchmark(group="e7-reduce")
def bench_e7_proof_reduction_step(benchmark, k):
    """The reduce(I, r', r'') step at the heart of the Theorem 5.3 proof."""
    family = figure_3_instance(k)
    forest = family.forest()
    middle = sorted(family.region_set("C"), key=lambda r: r.left)[2 * k]
    first_a, _, second_a = forest.children_of(middle)

    def reduce_once():
        return reduce_regions(family, first_a, second_a)

    reduced, _ = benchmark(reduce_once)
    assert not INDEXED.evaluate(TARGET, reduced)


@pytest.mark.benchmark(group="e7-refuter")
def bench_e7_refuter_on_strawman(benchmark):
    """Refuting the Section 5.2 strawman ``C ⊃ (B < A)``."""
    candidate = parse("C containing (B before A)")
    witness = benchmark(refute_both_included, candidate)
    assert witness is not None
