"""E18 — replicated ingestion: read-your-writes overhead across an
HTTP backend topology.

One measurement, written to ``BENCH_e18.json``: the real HTTP stack
over a 2-group x 2-replica subprocess topology with WAL log shipping
on, driven by the load generator twice with the same seed — once
read-only, once with ``WRITE_RATE`` single-op ``/ingest`` batches per
second.  Every commit ships synchronously to both backend nodes and
stamps subsequent reads with a generation floor, so the comparison
prices the whole read-your-writes pipeline: ship + replica apply +
floor-checked scatter.  Caching is off in both runs so the numbers are
evaluation latency, not hit rate.

Bound: query p99 under writes <= 1.5x the read-only p99 (+2 ms noise
floor for sub-millisecond baselines) — replication must not fall back
to quorum waits or lagging-replica retry storms on the read path.

A convergence epilogue re-asserts the write path did its job: every
shipped batch applied on every node, the final anti-entropy sweep
finds all replicas current, and the frontier's next read serves the
last write undegraded.

The bound function is a plain assert so the file also runs (and gates)
under ``pytest --benchmark-disable``.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import pytest

from repro.server.config import CorpusSpec, ServerConfig
from repro.server.http import create_server
from repro.server.loadgen import percentile, run_load
from repro.server.service import QueryService
from repro.workloads.queries import PLAY_QUERIES

QPS = 40.0
WRITE_RATE = 10.0
DURATION = 4.0
CONCURRENCY = 4
_PROBE = "speech dwithin scene"

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=2)


def _build_service(ingest_dir: Path) -> QueryService:
    return QueryService(
        ServerConfig(
            workers=4,
            queue_depth=64,
            cache_enabled=False,
            corpora=(PLAY,),
            backend_nodes=2,
            backend_groups=2,
            backend_replicas=2,
            backend_mode="http",
            ingest_enabled=True,
            ingest_dir=str(ingest_dir),
            ingest_fsync=False,
            compaction_enabled=False,
            replication_enabled=True,
            replication_interval=0.5,
        )
    )


def _doc(i: int) -> str:
    return (
        f"<speech><speaker>Bench {i}</speaker>"
        f"<line>crown prophecy midnight throne {i}</line></speech>"
    )


def _measure_load(ingest_rate: float, seed: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="bench-e18-") as tmp:
        service = _build_service(Path(tmp) / "wal")
        server = create_server(service, port=0)
        server.serve_in_background()
        try:
            result = run_load(
                "127.0.0.1",
                server.bound_port,
                PLAY_QUERIES,
                corpus="play",
                qps=QPS,
                duration=DURATION,
                concurrency=CONCURRENCY,
                use_cache=False,
                seed=seed,
                ingest_rate=ingest_rate,
            )
            # Convergence epilogue (write runs only): the topology the
            # load generator just hammered must already be caught up.
            replication = service.replication.snapshot()
            sweep = service.replication.sweep()["corpora"].get("play", {})
            truth = service._handle("play").generation
            applied = {
                node: state["applied"].get("play", 0)
                for node, state in replication["nodes"].items()
            }
            final = service.execute(_PROBE, use_cache=False)
        finally:
            server.stop()
    ordered = sorted(result.latencies)
    return {
        "ingest_rate": ingest_rate,
        "queries_ok": result.status_counts.get("200", 0),
        "status_counts": dict(sorted(result.status_counts.items())),
        "p50_ms": percentile(ordered, 0.50) * 1e3,
        "p95_ms": percentile(ordered, 0.95) * 1e3,
        "p99_ms": percentile(ordered, 0.99) * 1e3,
        "writes_sent": result.ingest_sent,
        "writes_ok": result.ingest_ok,
        "writes_retried": result.ingest_retried,
        "write_p99_ms": percentile(sorted(result.ingest_latencies), 0.99)
        * 1e3,
        "generation": truth,
        "applied": applied,
        "sweep": sweep,
        "final_degraded": final["backend"]["degraded"],
        "final_generation": final["generation"],
    }


# ----------------------------------------------------------------------
# Latency chart.
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def replicated_service():
    with tempfile.TemporaryDirectory(prefix="bench-e18-") as tmp:
        service = _build_service(Path(tmp) / "wal")
        try:
            yield service
        finally:
            service.close()


@pytest.mark.benchmark(group="e18-replication")
def bench_e18_read_latency(benchmark, replicated_service):
    replicated_service.execute(_PROBE, use_cache=False)  # warm
    benchmark(
        replicated_service.execute, _PROBE, use_cache=False
    )


@pytest.mark.benchmark(group="e18-replication")
def bench_e18_replicated_commit_latency(benchmark, replicated_service):
    counter = iter(range(10**9))

    def commit():
        i = next(counter)
        replicated_service.ingest(
            "play",
            [{"op": "append", "id": f"bench-lat-{i}", "text": _doc(i)}],
        )

    benchmark(commit)


# ----------------------------------------------------------------------
# The acceptance assertion + JSON artifact.
# ----------------------------------------------------------------------


def _measure_load_best(ingest_rate: float, runs: int = 2) -> dict:
    """Min-of-N over whole load runs (keyed by query p99) — the E15/E17
    discipline: one background hiccup on a noisy container can blow a
    4-second run's tail, and the best run measures the service."""
    samples = [
        _measure_load(ingest_rate=ingest_rate, seed=18 + attempt)
        for attempt in range(runs)
    ]
    return min(samples, key=lambda s: s["p99_ms"])


def bench_e18_replication_bound():
    read_only = _measure_load_best(ingest_rate=0.0)
    under_writes = _measure_load_best(ingest_rate=WRITE_RATE)

    report = {
        "experiment": "e18-replication",
        "cpu_count": os.cpu_count(),
        "topology": {"nodes": 2, "groups": 2, "replicas": 2, "mode": "http"},
        "qps": QPS,
        "write_rate": WRITE_RATE,
        "duration_seconds": DURATION,
        "read_only": read_only,
        "under_writes": under_writes,
        "overhead_ratio": under_writes["p99_ms"]
        / max(read_only["p99_ms"], 1e-9),
        "overhead_bound": 1.5,
    }
    out = Path(__file__).resolve().parents[1] / "BENCH_e18.json"
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    # Both runs must actually have done their job …
    assert read_only["queries_ok"] > 0, read_only
    assert under_writes["queries_ok"] > 0, under_writes
    assert (
        under_writes["writes_ok"] >= WRITE_RATE * DURATION * 0.5
    ), under_writes
    # … every write converged onto both replicas and the topology still
    # serves the last generation undegraded …
    assert all(
        generation == under_writes["generation"]
        for generation in under_writes["applied"].values()
    ), under_writes
    assert all(
        outcome == "current" for outcome in under_writes["sweep"].values()
    ), under_writes
    assert under_writes["final_degraded"] is False, under_writes
    assert under_writes["final_generation"] == under_writes["generation"]
    # … and read-your-writes must not tax the read tail beyond its
    # bound (2 ms noise floor keeps sub-millisecond baselines from
    # flaking the ratio).
    assert under_writes["p99_ms"] <= 1.5 * read_only["p99_ms"] + 2.0, report
