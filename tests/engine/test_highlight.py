"""Result rendering: inline annotation and excerpts."""

import pytest

from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.engine.highlight import annotate, excerpts
from repro.engine.tagged import parse_tagged_text
from repro.errors import EvaluationError


class TestAnnotate:
    def test_single_region(self):
        text = "alpha beta gamma"
        result = annotate(text, RegionSet.of((6, 9)))
        assert result == "alpha ⟦beta⟧ gamma"

    def test_adjacent_regions(self):
        text = "ab"
        result = annotate(text, RegionSet.of((0, 0), (1, 1)))
        assert result == "⟦a⟧⟦b⟧"

    def test_nested_regions(self):
        text = "abcde"
        result = annotate(text, RegionSet.of((0, 4), (1, 3)))
        assert result == "⟦a⟦bcd⟧e⟧"

    def test_custom_markers(self):
        result = annotate("xy", RegionSet.of((0, 1)), "[", "]")
        assert result == "[xy]"

    def test_region_at_text_end(self):
        result = annotate("abc", RegionSet.of((2, 2)))
        assert result == "ab⟦c⟧"

    def test_out_of_bounds_rejected(self):
        with pytest.raises(EvaluationError, match="outside"):
            annotate("abc", RegionSet.of((0, 10)))

    def test_empty_result_is_identity(self):
        assert annotate("abc", RegionSet.empty()) == "abc"

    def test_real_query_results(self):
        from repro.algebra.evaluator import evaluate

        doc = parse_tagged_text("<a><b>x</b><b>y</b></a>")
        annotated = annotate(doc.text, evaluate("b", doc.instance))
        assert annotated == "<a>⟦<b>x</b>⟧⟦<b>y</b>⟧</a>"


class TestExcerpts:
    def test_document_order_and_normalization(self):
        text = "first\n  item   here and second one"
        result = excerpts(text, RegionSet.of((24, 33), (0, 11)))
        assert [s for _, s in result] == ["first item", "second one"]

    def test_long_excerpt_trimmed_in_middle(self):
        text = "start " + "x" * 200 + " finish"
        (pair,) = excerpts(text, RegionSet.of((0, len(text) - 1)), max_width=21)
        region, snippet = pair
        assert len(snippet) <= 21
        assert "…" in snippet
        assert snippet.startswith("start")
        assert snippet.endswith("finish")

    def test_regions_carried_through(self):
        text = "hello world"
        result = excerpts(text, RegionSet.of((0, 4)))
        assert result == [(Region(0, 4), "hello")]
