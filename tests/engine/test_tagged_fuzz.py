"""Tagged-text parser robustness under arbitrary and generated input."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.tagged import parse_tagged_text
from repro.errors import ParseError


@st.composite
def well_formed_markup(draw, depth: int = 0) -> str:
    """Random well-formed tagged text."""
    pieces = []
    for _ in range(draw(st.integers(0, 3))):
        kind = draw(st.integers(0, 2 if depth < 3 else 1))
        if kind == 0:
            pieces.append(draw(st.text(alphabet="ab ", max_size=6)))
        elif kind == 1:
            tag = draw(st.sampled_from(("x", "y", "z")))
            pieces.append(f"<{tag}/>")
        else:
            tag = draw(st.sampled_from(("x", "y", "z")))
            inner = draw(well_formed_markup(depth=depth + 1))
            pieces.append(f"<{tag}>{inner}</{tag}>")
    return " ".join(pieces)


class TestFuzz:
    @given(st.text(alphabet="<>/ab x", max_size=50))
    @settings(max_examples=300)
    def test_arbitrary_text_parses_or_raises_parse_error(self, text):
        try:
            doc = parse_tagged_text(text)
        except ParseError:
            return
        doc.instance.validate_hierarchy()

    @given(well_formed_markup())
    @settings(max_examples=200)
    def test_well_formed_markup_always_parses(self, text):
        doc = parse_tagged_text(text)
        doc.instance.validate_hierarchy()
        # Every region's extracted text starts with its opening tag.
        for name in doc.instance.names:
            for region in doc.instance.region_set(name):
                assert doc.extract(region).startswith(f"<{name}")

    @given(well_formed_markup())
    @settings(max_examples=100)
    def test_region_count_matches_tag_count(self, text):
        doc = parse_tagged_text(text)
        opens = sum(
            text.count(f"<{t}>") + text.count(f"<{t}/>") for t in ("x", "y", "z")
        )
        assert len(doc.instance.all_regions()) == opens
