"""The SGML-ish tagged-text indexer."""

import pytest

from repro.core.region import Region
from repro.engine.tagged import parse_tagged_text
from repro.errors import ParseError


class TestParsing:
    def test_single_element(self):
        doc = parse_tagged_text("<a> hello </a>")
        regions = doc.instance.region_set("a")
        assert len(regions) == 1
        assert doc.extract(next(iter(regions))) == "<a> hello </a>"

    def test_nested_elements_strictly_nest(self):
        doc = parse_tagged_text("<a><b>x</b></a>")
        (a,) = doc.instance.region_set("a")
        (b,) = doc.instance.region_set("b")
        assert a.includes(b)

    def test_siblings_are_disjoint(self):
        doc = parse_tagged_text("<a>x</a><a>y</a>")
        first, second = sorted(doc.instance.region_set("a"))
        assert first.precedes(second)

    def test_self_closing(self):
        doc = parse_tagged_text("<a>x <hr/> y</a>")
        assert len(doc.instance.region_set("hr")) == 1

    def test_attributes_ignored(self):
        doc = parse_tagged_text('<speech speaker="ROMEO"> hi </speech>')
        assert len(doc.instance.region_set("speech")) == 1
        # Attribute text is markup: not in the word index.
        (region,) = doc.instance.region_set("speech")
        assert not doc.instance.matches(region, "ROMEO")
        assert doc.instance.matches(region, "hi")

    def test_comments_skipped(self):
        doc = parse_tagged_text("<a> x <!-- <b>not real</b> --> y </a>")
        assert "b" not in doc.instance.names
        (a,) = doc.instance.region_set("a")
        assert doc.instance.matches(a, "x")
        assert doc.instance.matches(a, "y")
        assert not doc.instance.matches(a, "real")

    def test_repeated_tag_names_nest(self):
        doc = parse_tagged_text("<sec>a<sec>b</sec></sec>")
        outer, inner = sorted(doc.instance.region_set("sec"))
        assert outer.includes(inner)

    def test_hierarchy_always_valid(self):
        doc = parse_tagged_text("<a><b>x</b><c><b>y</b></c></a>")
        doc.instance.validate_hierarchy()


class TestWordIndex:
    def test_words_at_original_positions(self):
        text = "<a> alpha beta </a>"
        doc = parse_tagged_text(text)
        (a,) = doc.instance.region_set("a")
        assert doc.instance.matches(a, "alpha")
        assert doc.instance.matches(a, "bet*")

    def test_words_outside_elements_indexed(self):
        doc = parse_tagged_text("pre <a>in</a> post")
        (a,) = doc.instance.region_set("a")
        assert not doc.instance.matches(a, "pre")
        assert not doc.instance.matches(a, "post")
        assert doc.instance.matches(a, "in")

    def test_containment_is_positional(self):
        doc = parse_tagged_text("<a> x </a> <b> y </b>")
        (a,) = doc.instance.region_set("a")
        (b,) = doc.instance.region_set("b")
        assert doc.instance.matches(a, "x") and not doc.instance.matches(a, "y")
        assert doc.instance.matches(b, "y") and not doc.instance.matches(b, "x")


class TestErrors:
    def test_mismatched_close(self):
        with pytest.raises(ParseError, match="unexpected closing"):
            parse_tagged_text("<a> x </b>")

    def test_unclosed(self):
        with pytest.raises(ParseError, match="unclosed"):
            parse_tagged_text("<a><b> x </b>")

    def test_stray_close(self):
        with pytest.raises(ParseError):
            parse_tagged_text("x </a>")

    def test_error_position(self):
        with pytest.raises(ParseError) as info:
            parse_tagged_text("abc </a>")
        assert info.value.position == 4


class TestExtraction:
    def test_extract_inner_region(self):
        text = "<play><act> words here </act></play>"
        doc = parse_tagged_text(text)
        (act,) = doc.instance.region_set("act")
        assert doc.extract(act) == "<act> words here </act>"

    def test_extract_arbitrary_region(self):
        doc = parse_tagged_text("<a>hello</a>")
        assert doc.extract(Region(3, 7)) == "hello"
