"""The Engine facade: querying, views, plans, persistence."""

import pytest

from repro.algebra import ast as A
from repro.core.regionset import RegionSet
from repro.engine.session import Engine
from repro.errors import EvaluationError, UnknownRegionNameError

SOURCE = """program Main {
    var x;
    proc Alpha {
        var y;
        proc Beta { var x; }
    }
}
"""


@pytest.fixture
def engine():
    return Engine.from_source(SOURCE)


class TestQuerying:
    def test_query_text(self, engine):
        result = engine.query("Name within Proc_header")
        assert len(result) == 2

    def test_query_expression_tree(self, engine):
        result = engine.query(A.NameRef("Proc"))
        assert len(result) == 2

    def test_optimized_query_same_result(self, engine):
        query = "Name within Proc_header within Proc within Program"
        assert engine.query(query) == engine.query(query, optimize_query=True)

    def test_unknown_name_rejected_before_evaluation(self, engine):
        with pytest.raises(UnknownRegionNameError):
            engine.query("Nonsense within Proc")

    def test_extraction(self, engine):
        names = engine.query("Name within Proc_header")
        assert set(engine.extract_all(names)) == {"Alpha", "Beta"}

    def test_match_points(self, engine):
        points = engine.match_points("var")
        assert len(points) == 3

    def test_statistics(self, engine):
        stats = engine.statistics()
        assert stats["regions"]["Proc"] == 2
        assert stats["total"] == len(engine.instance)
        assert stats["nesting_depth"] >= 5


class TestViews:
    def test_define_and_query_view(self, engine):
        engine.define_view("XVars", 'Var @ "x"')
        assert len(engine.query("XVars")) == 2
        assert len(engine.query("Proc containing XVars")) == 2

    def test_views_compose(self, engine):
        engine.define_view("XVars", 'Var @ "x"')
        engine.define_view("XProcs", "Proc dcontaining Proc_body dcontaining XVars")
        assert len(engine.query("XProcs")) == 1

    def test_view_name_collision_rejected(self, engine):
        with pytest.raises(EvaluationError, match="collides"):
            engine.define_view("Proc", "Var")

    def test_view_with_unknown_name_rejected(self, engine):
        with pytest.raises(UnknownRegionNameError):
            engine.define_view("Broken", "Nonsense union Var")

    def test_self_referential_view_rejected(self, engine):
        engine.define_view("V", "Var")
        engine._views["V"] = A.Union(A.NameRef("V"), A.NameRef("Var"))
        with pytest.raises(EvaluationError, match="self-referential"):
            engine.query("V")

    def test_views_listed_in_statistics(self, engine):
        engine.define_view("XVars", 'Var @ "x"')
        assert engine.statistics()["views"] == ["XVars"]


class TestExplain:
    def test_plan_reports_rig_rewrite(self, engine):
        plan = engine.explain(
            "Name within Proc_header within Proc within Program"
        )
        assert plan.optimized == A.including_chain(
            ["Name", "Proc_header", "Program"]
        )
        assert plan.optimized_cost < plan.original_cost
        assert "RIG chain simplification" in plan.steps
        assert "Name within Proc_header within Program" in str(plan)

    def test_plan_for_irreducible_query(self, engine):
        plan = engine.explain("Var within Proc_body")
        assert plan.original == plan.optimized


class TestNavigation:
    def test_region_at_innermost(self, engine):
        # Position of the 'x' in Beta's "var x;".
        position = SOURCE.index("proc Beta { var x; }") + len("proc Beta { var ")
        region = engine.region_at(position)
        assert region is not None
        assert engine.instance.name_of(region) == "Var"

    def test_region_at_gap(self, engine):
        assert engine.region_at(10_000) is None

    def test_path_at(self, engine):
        position = SOURCE.index("proc Beta { var x; }") + len("proc Beta { var ")
        names = [name for name, _ in engine.path_at(position)]
        assert names == [
            "Program",
            "Prog_body",
            "Proc",
            "Proc_body",
            "Proc",
            "Proc_body",
            "Var",
        ]

    def test_path_at_gap_is_empty(self, engine):
        assert engine.path_at(10_000) == []

    def test_outline(self, engine):
        outline = engine.outline()
        lines = outline.splitlines()
        assert lines[0].startswith("Program [")
        assert any(line.startswith("    Proc ") for line in lines)
        # Depth limiting trims the tree.
        shallow = engine.outline(max_depth=2)
        assert len(shallow.splitlines()) < len(lines)


class TestConstructionAndPersistence:
    def test_from_tagged_text(self):
        engine = Engine.from_tagged_text("<doc><sec> hello </sec></doc>")
        assert engine.region_names == ("doc", "sec")
        assert len(engine.query('sec @ "hello"')) == 1

    def test_save_load_round_trip(self, engine, tmp_path):
        path = tmp_path / "index.json"
        engine.save(path)
        loaded = Engine.load(path)
        assert loaded.query("Proc") == engine.query("Proc")

    def test_loaded_engine_has_no_text(self, engine, tmp_path):
        path = tmp_path / "index.json"
        engine.save(path)
        loaded = Engine.load(path)
        region = next(iter(loaded.query("Proc")))
        with pytest.raises(EvaluationError, match="without source text"):
            loaded.extract(region)

    def test_match_points_need_text_index(self, small_instance):
        engine = Engine(small_instance)
        with pytest.raises(EvaluationError, match="text-backed"):
            engine.match_points("x")

    def test_naive_strategy_engine_agrees(self, engine):
        naive = Engine.from_source(SOURCE)
        naive._evaluator = type(naive._evaluator)("naive")
        query = "Proc dcontaining Proc_body"
        assert naive.query(query) == engine.query(query)
