"""Property-based storage round trips."""

import json

from hypothesis import given, settings

from repro.engine.storage import instance_from_dict, instance_to_dict
from tests.conftest import hierarchical_instances


class TestRoundTripProperties:
    @given(hierarchical_instances(patterns=("p", "q")))
    @settings(max_examples=80, deadline=None)
    def test_label_instances_round_trip_exactly(self, instance):
        data = json.loads(json.dumps(instance_to_dict(instance)))
        rebuilt = instance_from_dict(data)
        assert rebuilt == instance
        assert rebuilt.names == instance.names
        for region in instance.all_regions():
            for pattern in ("p", "q"):
                assert rebuilt.matches(region, pattern) == instance.matches(
                    region, pattern
                )

    @given(hierarchical_instances())
    @settings(max_examples=50, deadline=None)
    def test_round_trip_preserves_query_results(self, instance):
        from repro.algebra.evaluator import evaluate

        rebuilt = instance_from_dict(instance_to_dict(instance))
        for query in ("R0 containing R1", "R0 dcontaining R1", "bi(R0, R1, R2)"):
            assert evaluate(query, rebuilt) == evaluate(query, instance)
