"""Corpora: the distinguished document unit of Section 5.2."""

import random

import pytest

from repro.engine.corpus import DOCUMENT_REGION_NAME, Corpus
from repro.errors import EvaluationError, ParseError
from repro.workloads.corpora import generate_play


@pytest.fixture
def corpus():
    corpus = Corpus()
    corpus.add("<note> alpha beta </note>", name="first")
    corpus.add("<note> beta gamma </note> <note> delta </note>", name="second")
    corpus.add("<memo> alpha </memo>", name="third")
    return corpus


class TestConstruction:
    def test_document_regions_created(self, corpus):
        engine = corpus.engine()
        assert len(engine.instance.region_set(DOCUMENT_REGION_NAME)) == 3
        assert corpus.document_names == ("first", "second", "third")

    def test_default_names(self):
        corpus = Corpus()
        corpus.add("<a>x</a>")
        assert corpus.document_names == ("doc1",)

    def test_empty_corpus_rejected(self):
        with pytest.raises(EvaluationError, match="no documents"):
            Corpus().engine()

    def test_malformed_document_rejected_eagerly(self, corpus):
        with pytest.raises(ParseError):
            corpus.add("<broken>")
        assert len(corpus) == 3  # unchanged

    def test_reserved_tag_rejected(self):
        corpus = Corpus()
        with pytest.raises(ParseError, match="reserved"):
            corpus.add(f"<{DOCUMENT_REGION_NAME}>x</{DOCUMENT_REGION_NAME}>")

    def test_adding_invalidates_cached_engine(self, corpus):
        first = corpus.engine()
        corpus.add("<note> epsilon </note>", name="fourth")
        assert corpus.engine() is not first
        assert len(corpus.engine().instance.region_set(DOCUMENT_REGION_NAME)) == 4


class TestQuerying:
    def test_cross_document_query(self, corpus):
        notes = corpus.query("note")
        assert len(notes) == 3

    def test_document_scoped_bi(self, corpus):
        # alpha before gamma within one document: only "second" has
        # beta..gamma; "first" has alpha beta; no single doc has both
        # alpha-then-gamma… except none. beta before gamma: second.
        docs = corpus.query(
            f'bi({DOCUMENT_REGION_NAME}, note @ "beta", note @ "gamma")'
        )
        assert len(docs) == 0  # beta and gamma share one note in 'second'
        within = corpus.query(
            f'{DOCUMENT_REGION_NAME} containing (note @ "gamma")'
        )
        assert len(within) == 1

    def test_document_of(self, corpus):
        (memo,) = corpus.query("memo")
        assert corpus.document_of(memo) == "third"

    def test_document_of_rejects_foreign_region(self, corpus):
        from repro.core.region import Region

        with pytest.raises(EvaluationError):
            corpus.document_of(Region(10_000, 10_001))

    def test_count_by_document(self, corpus):
        counts = corpus.count_by_document(corpus.query("note"))
        assert counts == {"first": 1, "second": 2, "third": 0}

    def test_documents_matching(self, corpus):
        names = list(corpus.documents_matching('note @ "beta"'))
        assert names == ["first", "second"]

    def test_extract(self, corpus):
        (memo,) = corpus.query("memo")
        assert corpus.extract(memo) == "<memo> alpha </memo>"


class TestCorpusWithRig:
    def test_rig_flows_into_the_engine(self):
        from repro.algebra.parser import parse
        from repro.rig.derive import rig_from_instances

        corpus = Corpus()
        corpus.add("<note> alpha <tag> beta </tag> </note>")
        derived = rig_from_instances([corpus.engine().instance])
        with_rig = Corpus(rig=derived)
        with_rig.add("<note> alpha <tag> beta </tag> </note>")
        plan = with_rig.engine().explain("tag within note within document")
        # With the derived RIG the chain can drop the middle test.
        assert plan.optimized_cost <= plan.original_cost


class TestAtScale:
    def test_play_collection(self):
        rng = random.Random(6)
        corpus = Corpus()
        for i in range(5):
            corpus.add(generate_play(rng, acts=1, scenes_per_act=2), name=f"play{i}")
        romeo_docs = set(corpus.documents_matching('speech containing (speaker @ "ROMEO")'))
        assert romeo_docs <= set(corpus.document_names)
        counts = corpus.count_by_document(corpus.query("scene"))
        assert sum(counts.values()) == 10
