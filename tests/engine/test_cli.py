"""The command-line interface."""

import json

import pytest

from repro.engine.cli import main

TAGGED = "<play><scene><speech> words here </speech></scene></play>"
SOURCE = "program Main { var x; proc P { var x; } }"


@pytest.fixture
def tagged_index(tmp_path):
    doc = tmp_path / "doc.xml"
    doc.write_text(TAGGED, encoding="utf-8")
    index = tmp_path / "doc.index.json"
    assert main(["index", str(doc), "--format", "tagged", "-o", str(index)]) == 0
    return doc, index


@pytest.fixture
def source_index(tmp_path):
    src = tmp_path / "main.prog"
    src.write_text(SOURCE, encoding="utf-8")
    index = tmp_path / "main.index.json"
    assert main(["index", str(src), "--format", "source", "-o", str(index)]) == 0
    return src, index


class TestIndex:
    def test_index_tagged(self, tagged_index, capsys):
        _, index = tagged_index
        assert index.exists()

    def test_index_missing_file(self, tmp_path, capsys):
        code = main(
            ["index", str(tmp_path / "nope.xml"), "-o", str(tmp_path / "o.json")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_index_malformed_source(self, tmp_path, capsys):
        bad = tmp_path / "bad.prog"
        bad.write_text("program {", encoding="utf-8")
        code = main(
            ["index", str(bad), "--format", "source", "-o", str(tmp_path / "o.json")]
        )
        assert code == 1


class TestQuery:
    def test_query_plain(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech within scene"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("1 region(s)")

    def test_query_json(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        left, right = payload[0]
        assert TAGGED[left] == "<"

    def test_query_with_text(self, tagged_index, capsys):
        doc, index = tagged_index
        assert main(["query", str(index), "speech", "--text", str(doc)]) == 0
        assert "words here" in capsys.readouterr().out

    def test_query_parse_error(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech within within"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_query_unknown_name(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "nothere"]) == 1

    def test_query_limit(self, source_index, capsys):
        _, index = source_index
        assert main(["query", str(index), "Var union Proc", "--limit", "1"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].endswith("region(s)")
        assert len(out) == 2  # header plus one region line

    def test_query_limit_json(self, source_index, capsys):
        _, index = source_index
        assert main(
            ["query", str(index), "Var union Proc", "--limit", "1", "--json"]
        ) == 0
        assert len(json.loads(capsys.readouterr().out)) == 1

    def test_query_annotate(self, tagged_index, capsys):
        doc, index = tagged_index
        assert main(
            ["query", str(index), "speech", "--text", str(doc), "--annotate"]
        ) == 0
        out = capsys.readouterr().out
        assert "⟦<speech>" in out and "</speech>⟧" in out

    def test_annotate_requires_text(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech", "--annotate"]) == 1
        assert "requires --text" in capsys.readouterr().err

    def test_query_profile(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech within scene", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "regions," in out
        assert "total:" in out

    def test_optimized_query_with_rig(self, source_index, capsys):
        _, index = source_index
        code = main(
            [
                "query",
                str(index),
                "Name within Proc_header within Proc within Program",
                "--optimize",
                "--rig",
                "figure1",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.startswith("1 region(s)")


class TestExplainAndStats:
    def test_explain(self, source_index, capsys):
        _, index = source_index
        code = main(
            ["explain", str(index), "Name within Proc_header within Proc within Program"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "Name within Proc_header within Program" in out

    def test_stats(self, source_index, capsys):
        _, index = source_index
        assert main(["stats", str(index)]) == 0
        out = capsys.readouterr().out
        assert "regions:" in out
        assert "Proc" in out

    def test_stats_json(self, source_index, capsys):
        _, index = source_index
        assert main(["stats", str(index), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regions"]["Proc"] == 1

    def test_stats_telemetry(self, source_index, capsys):
        _, index = source_index
        assert main(["stats", str(index), "--telemetry"]) == 0
        assert "index build (kind=load)" in capsys.readouterr().out

    def test_stats_telemetry_json(self, source_index, capsys):
        _, index = source_index
        assert main(["stats", str(index), "--telemetry", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        histograms = payload["telemetry"]["metrics"]["histograms"]
        assert histograms["index_build_seconds"]["kind=load"]["count"] == 1


class TestTrace:
    def test_trace_tree_shape(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["trace", str(index), "speech within scene"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("query")
        assert lines[1].lstrip().startswith("parse")
        assert any(line.lstrip().startswith("eval.IncludedIn") for line in lines)
        assert any(line.lstrip().startswith("eval.NameRef") for line in lines)
        assert "µs" in lines[0]
        assert lines[-1].startswith("1 region(s)")

    def test_trace_times_sum_consistently(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(
            ["trace", str(index), "speech within scene", "--json"]
        ) == 0
        root = json.loads(capsys.readouterr().out)

        def check(span):
            child_sum = sum(c["duration"] for c in span["children"])
            assert child_sum <= span["duration"] + 1e-9
            for child in span["children"]:
                check(child)

        assert root["name"] == "query"
        check(root)

    def test_trace_optimized(self, source_index, capsys):
        _, index = source_index
        code = main(
            [
                "trace",
                str(index),
                "Name within Proc_header within Proc within Program",
                "--optimize",
                "--rig",
                "figure1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "optimize" in out
        assert "rule.chains" in out

    def test_trace_parse_error(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["trace", str(index), "speech within within"]) == 1
        assert "error:" in capsys.readouterr().err


class TestQuerylog:
    def test_querylog_records_each_query(self, tagged_index, capsys):
        _, index = tagged_index
        code = main(
            ["querylog", str(index), "speech within scene", "play", "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["retained"] == 2
        queries = [record["query"] for record in payload["records"]]
        assert queries == ["speech within scene", "play"]
        assert all(r["cardinality_error"] is not None for r in payload["records"])

    def test_querylog_optimized_plan_logged(self, source_index, capsys):
        _, index = source_index
        code = main(
            [
                "querylog",
                str(index),
                "Name within Proc_header within Proc within Program",
                "--optimize",
                "--rig",
                "figure1",
                "--json",
            ]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)["records"][0]
        assert record["optimized"] is True
        assert record["plan"] == "Name within Proc_header within Program"
        assert record["steps"] == ["RIG chain simplification"]

    def test_querylog_capacity_evicts(self, tagged_index, capsys):
        _, index = tagged_index
        code = main(
            [
                "querylog",
                str(index),
                "speech",
                "scene",
                "play",
                "--capacity",
                "2",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["capacity"] == 2
        assert payload["summary"]["evicted"] == 1
        assert [r["query"] for r in payload["records"]] == ["scene", "play"]

    def test_querylog_human_output(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["querylog", str(index), "speech"]) == 0
        out = capsys.readouterr().out
        assert "[query] 'speech'" in out
        assert "memo hit(s)" in out
        assert "1 record(s) retained" in out


class TestKwic:
    def test_kwic_lines(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text(TAGGED, encoding="utf-8")
        assert main(["kwic", str(doc), "words", "--width", "10"]) == 0
        out = capsys.readouterr().out
        assert "1 occurrence(s)" in out
        assert "words" in out

    def test_kwic_source_format(self, tmp_path, capsys):
        src = tmp_path / "main.prog"
        src.write_text(SOURCE, encoding="utf-8")
        assert main(["kwic", str(src), "var", "--format", "source"]) == 0
        assert "2 occurrence(s)" in capsys.readouterr().out

    def test_kwic_no_matches(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text(TAGGED, encoding="utf-8")
        assert main(["kwic", str(doc), "absent"]) == 0
        assert "0 occurrence(s)" in capsys.readouterr().out


class TestSessionKwic:
    def test_keyword_in_context(self):
        from repro.engine.session import Engine

        engine = Engine.from_tagged_text("<a> alpha beta gamma </a>")
        lines = engine.keyword_in_context("beta", width=6)
        assert len(lines) == 1
        point, snippet = lines[0]
        assert "beta" in snippet
        assert engine.extract(point) == "beta"

    def test_kwic_requires_text(self, small_instance):
        from repro.engine.session import Engine
        from repro.errors import EvaluationError

        engine = Engine(small_instance)
        with pytest.raises(EvaluationError):
            engine.keyword_in_context("x")


class TestModuleEntryPoint:
    def test_python_dash_m(self, tagged_index):
        import subprocess
        import sys

        _, index = tagged_index
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stats", str(index)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "regions:" in proc.stdout
