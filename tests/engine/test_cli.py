"""The command-line interface."""

import json

import pytest

from repro.engine.cli import main

TAGGED = "<play><scene><speech> words here </speech></scene></play>"
SOURCE = "program Main { var x; proc P { var x; } }"


@pytest.fixture
def tagged_index(tmp_path):
    doc = tmp_path / "doc.xml"
    doc.write_text(TAGGED, encoding="utf-8")
    index = tmp_path / "doc.index.json"
    assert main(["index", str(doc), "--format", "tagged", "-o", str(index)]) == 0
    return doc, index


@pytest.fixture
def source_index(tmp_path):
    src = tmp_path / "main.prog"
    src.write_text(SOURCE, encoding="utf-8")
    index = tmp_path / "main.index.json"
    assert main(["index", str(src), "--format", "source", "-o", str(index)]) == 0
    return src, index


class TestIndex:
    def test_index_tagged(self, tagged_index, capsys):
        _, index = tagged_index
        assert index.exists()

    def test_index_missing_file(self, tmp_path, capsys):
        code = main(
            ["index", str(tmp_path / "nope.xml"), "-o", str(tmp_path / "o.json")]
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_index_malformed_source(self, tmp_path, capsys):
        bad = tmp_path / "bad.prog"
        bad.write_text("program {", encoding="utf-8")
        code = main(
            ["index", str(bad), "--format", "source", "-o", str(tmp_path / "o.json")]
        )
        assert code == 1


class TestQuery:
    def test_query_plain(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech within scene"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("1 region(s)")

    def test_query_json(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        left, right = payload[0]
        assert TAGGED[left] == "<"

    def test_query_with_text(self, tagged_index, capsys):
        doc, index = tagged_index
        assert main(["query", str(index), "speech", "--text", str(doc)]) == 0
        assert "words here" in capsys.readouterr().out

    def test_query_parse_error(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech within within"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_query_unknown_name(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "nothere"]) == 1

    def test_query_limit(self, source_index, capsys):
        _, index = source_index
        assert main(["query", str(index), "Var union Proc", "--limit", "1"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].endswith("region(s)")
        assert len(out) == 2  # header plus one region line

    def test_query_limit_json(self, source_index, capsys):
        _, index = source_index
        assert main(
            ["query", str(index), "Var union Proc", "--limit", "1", "--json"]
        ) == 0
        assert len(json.loads(capsys.readouterr().out)) == 1

    def test_query_annotate(self, tagged_index, capsys):
        doc, index = tagged_index
        assert main(
            ["query", str(index), "speech", "--text", str(doc), "--annotate"]
        ) == 0
        out = capsys.readouterr().out
        assert "⟦<speech>" in out and "</speech>⟧" in out

    def test_annotate_requires_text(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech", "--annotate"]) == 1
        assert "requires --text" in capsys.readouterr().err

    def test_query_profile(self, tagged_index, capsys):
        _, index = tagged_index
        assert main(["query", str(index), "speech within scene", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "regions," in out
        assert "total:" in out

    def test_optimized_query_with_rig(self, source_index, capsys):
        _, index = source_index
        code = main(
            [
                "query",
                str(index),
                "Name within Proc_header within Proc within Program",
                "--optimize",
                "--rig",
                "figure1",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.startswith("1 region(s)")


class TestExplainAndStats:
    def test_explain(self, source_index, capsys):
        _, index = source_index
        code = main(
            ["explain", str(index), "Name within Proc_header within Proc within Program"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "plan:" in out
        assert "Name within Proc_header within Program" in out

    def test_stats(self, source_index, capsys):
        _, index = source_index
        assert main(["stats", str(index)]) == 0
        out = capsys.readouterr().out
        assert "regions:" in out
        assert "Proc" in out

    def test_stats_json(self, source_index, capsys):
        _, index = source_index
        assert main(["stats", str(index), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["regions"]["Proc"] == 1


class TestKwic:
    def test_kwic_lines(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text(TAGGED, encoding="utf-8")
        assert main(["kwic", str(doc), "words", "--width", "10"]) == 0
        out = capsys.readouterr().out
        assert "1 occurrence(s)" in out
        assert "words" in out

    def test_kwic_source_format(self, tmp_path, capsys):
        src = tmp_path / "main.prog"
        src.write_text(SOURCE, encoding="utf-8")
        assert main(["kwic", str(src), "var", "--format", "source"]) == 0
        assert "2 occurrence(s)" in capsys.readouterr().out

    def test_kwic_no_matches(self, tmp_path, capsys):
        doc = tmp_path / "doc.xml"
        doc.write_text(TAGGED, encoding="utf-8")
        assert main(["kwic", str(doc), "absent"]) == 0
        assert "0 occurrence(s)" in capsys.readouterr().out


class TestSessionKwic:
    def test_keyword_in_context(self):
        from repro.engine.session import Engine

        engine = Engine.from_tagged_text("<a> alpha beta gamma </a>")
        lines = engine.keyword_in_context("beta", width=6)
        assert len(lines) == 1
        point, snippet = lines[0]
        assert "beta" in snippet
        assert engine.extract(point) == "beta"

    def test_kwic_requires_text(self, small_instance):
        from repro.engine.session import Engine
        from repro.errors import EvaluationError

        engine = Engine(small_instance)
        with pytest.raises(EvaluationError):
            engine.keyword_in_context("x")


class TestModuleEntryPoint:
    def test_python_dash_m(self, tagged_index):
        import subprocess
        import sys

        _, index = tagged_index
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "stats", str(index)],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "regions:" in proc.stdout
