"""The toy source-code indexer and the Figure 1 structure."""

import random

import pytest

from repro.engine.sourcecode import generate_program_source, parse_source
from repro.errors import ParseError
from repro.rig.graph import figure_1_rig

SAMPLE = """program Main {
    var x;
    proc Outer {
        var y;
        proc Inner {
            var x;
        }
    }
    proc Other {
        var z;
    }
}
"""


@pytest.fixture
def doc():
    return parse_source(SAMPLE)


class TestParsing:
    def test_region_counts(self, doc):
        instance = doc.instance
        assert len(instance.region_set("Program")) == 1
        assert len(instance.region_set("Proc")) == 3
        assert len(instance.region_set("Proc_header")) == 3
        assert len(instance.region_set("Name")) == 4  # Main + 3 procs
        assert len(instance.region_set("Var")) == 4

    def test_hierarchy_valid(self, doc):
        doc.instance.validate_hierarchy()

    def test_satisfies_figure_1_rig(self, doc):
        assert figure_1_rig().satisfied_by(doc.instance)

    def test_headers_strictly_include_names(self, doc):
        instance = doc.instance
        headers = instance.region_set("Proc_header")
        names = instance.region_set("Name")
        assert len(headers.including(names)) == len(headers)

    def test_nested_proc_inside_outer_body(self, doc):
        instance = doc.instance
        nested = instance.region_set("Proc").included_in(
            instance.region_set("Proc_body")
        )
        assert len(nested) == 1  # Inner

    def test_extraction(self, doc):
        instance = doc.instance
        names = instance.region_set("Name")
        texts = {doc.extract(r) for r in names}
        assert texts == {"Main", "Outer", "Inner", "Other"}

    def test_word_index_has_keywords_and_identifiers(self, doc):
        instance = doc.instance
        (program,) = instance.region_set("Program")
        assert instance.matches(program, "var")
        assert instance.matches(program, "Inner")
        var_regions = instance.region_set("Var")
        with_x = [r for r in var_regions if instance.matches(r, "x")]
        assert len(with_x) == 2


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "program {",  # missing name
            "program Main",  # missing body
            "program Main { var x }",  # missing semicolon
            "program Main { proc { } }",  # proc without name
            "program Main { oops; }",  # unknown statement
            "program Main { var program; }",  # keyword as identifier
            "",  # empty file parses to nothing? -> error on EOF
        ],
    )
    def test_malformed(self, source):
        if source == "":
            # An empty file is an empty index, not an error.
            instance = parse_source(source).instance
            assert len(instance) == 0
        else:
            with pytest.raises(ParseError):
                parse_source(source)

    def test_unclosed_block(self):
        with pytest.raises(ParseError, match="unclosed|end of source"):
            parse_source("program Main { var x;")


class TestGenerator:
    def test_generated_sources_parse_and_satisfy_rig(self):
        rng = random.Random(9)
        rig = figure_1_rig()
        for _ in range(20):
            source = generate_program_source(
                rng, procedures=rng.randint(0, 10), max_nesting=4
            )
            instance = parse_source(source).instance
            instance.validate_hierarchy()
            assert rig.satisfied_by(instance)

    def test_procedure_budget_respected(self):
        rng = random.Random(10)
        source = generate_program_source(rng, procedures=5)
        instance = parse_source(source).instance
        assert len(instance.region_set("Proc")) <= 5

    def test_nesting_bound_respected(self):
        rng = random.Random(11)
        for _ in range(10):
            source = generate_program_source(rng, procedures=12, max_nesting=2)
            instance = parse_source(source).instance
            proc_depth = instance.region_set("Proc").max_nesting_depth()
            assert proc_depth <= 2
