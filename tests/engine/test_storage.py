"""Index persistence round trips and error handling."""

import json

import pytest

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.engine.storage import (
    SUPPORTED_VERSIONS,
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.engine.tagged import parse_tagged_text
from repro.errors import StorageError


class TestRoundTrips:
    def test_label_index_round_trip(self, small_instance, tmp_path):
        path = tmp_path / "index.json"
        save_instance(small_instance, path)
        loaded = load_instance(path)
        assert loaded == small_instance
        assert loaded.matches(Region(2, 4), "x")

    def test_text_index_round_trip(self, tmp_path):
        doc = parse_tagged_text("<a> alpha beta </a> <b> gamma </b>")
        path = tmp_path / "index.json"
        save_instance(doc.instance, path)
        loaded = load_instance(path)
        assert loaded.names == doc.instance.names
        (a,) = loaded.region_set("a")
        assert loaded.matches(a, "alpha")
        assert not loaded.matches(a, "gamma")

    def test_empty_sets_survive(self, tmp_path):
        instance = Instance({"A": RegionSet.of((0, 1)), "B": RegionSet.empty()})
        path = tmp_path / "index.json"
        save_instance(instance, path)
        loaded = load_instance(path)
        assert loaded.names == ("A", "B")
        assert len(loaded.region_set("B")) == 0

    def test_dict_round_trip_is_json_compatible(self, small_instance):
        data = instance_to_dict(small_instance)
        rebuilt = instance_from_dict(json.loads(json.dumps(data)))
        assert rebuilt == small_instance


class TestAtomicWrites:
    def test_no_temp_file_left_behind(self, small_instance, tmp_path):
        save_instance(small_instance, tmp_path / "index.json")
        assert [p.name for p in tmp_path.iterdir()] == ["index.json"]

    def test_overwrite_replaces_completely(self, small_instance, tmp_path):
        path = tmp_path / "index.json"
        other = Instance({"Z": RegionSet.of((0, 5))})
        save_instance(other, path)
        save_instance(small_instance, path)
        assert load_instance(path) == small_instance

    def test_failed_replace_keeps_old_file_and_cleans_temp(
        self, small_instance, tmp_path, monkeypatch
    ):
        import repro.engine.storage as storage

        path = tmp_path / "index.json"
        old = Instance({"Z": RegionSet.of((0, 5))})
        save_instance(old, path)

        def broken_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(storage.os, "replace", broken_replace)
        with pytest.raises(OSError):
            save_instance(small_instance, path)
        monkeypatch.undo()
        # The prior index is intact and no *.tmp litter remains.
        assert load_instance(path) == old
        assert [p.name for p in tmp_path.iterdir()] == ["index.json"]

    def test_saved_payload_declares_supported_version(
        self, small_instance, tmp_path
    ):
        path = tmp_path / "index.json"
        save_instance(small_instance, path)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["version"] in SUPPORTED_VERSIONS


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(StorageError):
            load_instance(tmp_path / "nope.json")

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(StorageError):
            load_instance(path)

    def test_wrong_version(self, small_instance):
        data = instance_to_dict(small_instance)
        data["version"] = 99
        with pytest.raises(StorageError, match="version") as excinfo:
            instance_from_dict(data)
        # The error tells the operator what this build can read.
        assert "re-index" in str(excinfo.value)
        assert "1" in str(excinfo.value)

    def test_missing_keys(self):
        with pytest.raises(StorageError, match="malformed"):
            instance_from_dict({"version": 1})

    def test_unknown_word_index_kind(self, small_instance):
        data = instance_to_dict(small_instance)
        data["word_index"] = {"kind": "mystery"}
        with pytest.raises(StorageError, match="unknown word index"):
            instance_from_dict(data)

    def test_foreign_word_index_rejected_on_save(self):
        class Weird:
            def matches(self, region, pattern):
                return False

        instance = Instance({"A": RegionSet.of((0, 1))}, Weird())
        with pytest.raises(StorageError, match="cannot serialize"):
            instance_to_dict(instance)


class TestChecksums:
    def test_saved_payload_carries_checksum(self, small_instance):
        data = instance_to_dict(small_instance)
        assert isinstance(data["checksum"], str)
        assert len(data["checksum"]) == 64  # sha256 hex

    def test_checksum_is_canonical(self, small_instance):
        # Key order must not matter: the checksum is over canonical JSON.
        from repro.engine.storage import _checksum

        data = instance_to_dict(small_instance)
        shuffled = dict(reversed(list(data.items())))
        assert _checksum(data) == _checksum(shuffled)

    def test_corrupted_file_raises_corrupt_index_error(
        self, small_instance, tmp_path
    ):
        from repro.errors import CorruptIndexError

        path = tmp_path / "index.json"
        save_instance(small_instance, path)
        data = json.loads(path.read_text())
        data["sets"]["A"] = data["sets"]["A"][:-1]  # silent data loss
        path.write_text(json.dumps(data))
        with pytest.raises(CorruptIndexError, match="checksum"):
            load_instance(path)

    def test_corrupt_index_error_is_a_storage_error(self):
        from repro.errors import CorruptIndexError

        assert issubclass(CorruptIndexError, StorageError)
        assert CorruptIndexError("x").code == "corrupt_index"

    def test_legacy_file_without_checksum_still_loads(
        self, small_instance, tmp_path
    ):
        path = tmp_path / "index.json"
        save_instance(small_instance, path)
        data = json.loads(path.read_text())
        del data["checksum"]
        path.write_text(json.dumps(data))
        assert load_instance(path) == small_instance

    def test_in_memory_dict_is_trusted(self, small_instance):
        # instance_from_dict ignores the checksum: callers holding a
        # dict already trust it (and may have mutated it legitimately).
        data = instance_to_dict(small_instance)
        data["checksum"] = "not-a-real-checksum"
        assert instance_from_dict(data) == small_instance


class TestQuarantine:
    def test_quarantine_moves_file_aside(self, small_instance, tmp_path):
        from repro.engine.storage import quarantine_index

        path = tmp_path / "index.json"
        save_instance(small_instance, path)
        destination = quarantine_index(path)
        assert destination == tmp_path / "index.json.quarantined"
        assert destination.exists()
        assert not path.exists()

    def test_quarantine_numbers_repeats(self, small_instance, tmp_path):
        from repro.engine.storage import quarantine_index

        path = tmp_path / "index.json"
        save_instance(small_instance, path)
        quarantine_index(path)
        save_instance(small_instance, path)
        second = quarantine_index(path)
        assert second == tmp_path / "index.json.quarantined.1"

    def test_quarantine_of_missing_file_returns_none(self, tmp_path):
        from repro.engine.storage import quarantine_index

        assert quarantine_index(tmp_path / "gone.json") is None


class TestFsync:
    def test_save_fsyncs_file_and_directory(
        self, small_instance, tmp_path, monkeypatch
    ):
        import os

        import repro.engine.storage as storage

        synced = []
        real_fsync = os.fsync

        def tracking_fsync(fd):
            synced.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr(storage.os, "fsync", tracking_fsync)
        save_instance(small_instance, tmp_path / "index.json")
        # One fsync for the temp file's contents, one for the directory
        # entry after the rename — both needed for crash safety.
        assert len(synced) == 2
