"""Rewrite rules and the Section 2.2 RIG chain simplification."""

import random

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.optimize.rewrite import (
    simplify,
    simplify_chains,
    simplify_inclusion_chain,
)
from repro.rig.graph import RegionInclusionGraph, figure_1_rig
from repro.workloads.generators import rig_constrained_instance


class TestAlgebraicIdentities:
    def test_idempotence(self):
        assert simplify(parse("A union A")) == A.NameRef("A")
        assert simplify(parse("A isect A")) == A.NameRef("A")

    def test_annihilation(self):
        assert simplify(parse("A except A")) == A.Empty()

    def test_empty_propagation(self):
        assert simplify(parse("A isect empty")) == A.Empty()
        assert simplify(parse("A union empty")) == A.NameRef("A")
        assert simplify(parse("empty union A")) == A.NameRef("A")
        assert simplify(parse("A except empty")) == A.NameRef("A")
        assert simplify(parse("A containing empty")) == A.Empty()
        assert simplify(parse("empty within A")) == A.Empty()
        assert simplify(parse("bi(A, empty, A)")) == A.Empty()

    def test_duplicate_selection(self):
        assert simplify(parse('A @ "p" @ "p"')) == A.Select("p", A.NameRef("A"))
        # Distinct patterns must both stay.
        stacked = parse('A @ "p" @ "q"')
        assert simplify(stacked) == stacked

    def test_cascading(self):
        # (A except A) union B → empty union B → B
        assert simplify(parse("(A except A) union B")) == A.NameRef("B")

    def test_no_change_for_irreducible(self):
        expr = parse("A containing B")
        assert simplify(expr) == expr

    def test_identities_preserve_semantics(self, small_instance):
        for query in (
            "A union A",
            "(D except D) union B",
            "B isect B containing empty",
            'D @ "x" @ "x"',
        ):
            expr = parse(query.replace("R0", "A"))
            assert evaluate(expr, small_instance) == evaluate(
                simplify(expr), small_instance
            )


class TestChainSimplification:
    def test_paper_example_e1_to_e2(self):
        """Section 2.2: the Figure 1 RIG makes the Proc test redundant."""
        rig = figure_1_rig()
        chain = ["Name", "Proc_header", "Proc", "Program"]
        assert simplify_inclusion_chain(chain, rig) == [
            "Name",
            "Proc_header",
            "Program",
        ]

    def test_proc_header_cannot_be_dropped(self):
        """'We cannot further omit the test for inclusion in Proc_header,
        since we need to distinguish names of programs and procedures.'"""
        rig = figure_1_rig()
        chain = ["Name", "Proc_header", "Program"]
        assert simplify_inclusion_chain(chain, rig) == chain

    def test_direct_rig_edge_blocks_dropping(self):
        # With an additional direct edge Program → Name, the header test
        # is genuinely filtering and cannot be dropped.
        rig = RegionInclusionGraph(
            ("Name", "H", "Program"),
            [("Program", "H"), ("H", "Name"), ("Program", "Name")],
        )
        chain = ["Name", "H", "Program"]
        assert simplify_inclusion_chain(chain, rig) == chain

    def test_containing_chains_simplify_symmetrically(self):
        rig = figure_1_rig()
        chain = ["Program", "Proc", "Proc_header", "Name"]
        result = simplify_inclusion_chain(chain, rig, A.Including)
        # Either middle test is individually redundant; one must go.
        assert len(result) == 3
        assert result[0] == "Program" and result[-1] == "Name"

    def test_unknown_names_never_dropped(self):
        rig = figure_1_rig()
        chain = ["Name", "Mystery", "Program"]
        assert simplify_inclusion_chain(chain, rig) == chain

    def test_simplify_chains_rewrites_inside_expressions(self):
        rig = figure_1_rig()
        expr = parse(
            "(Name within Proc_header within Proc within Program) union Var"
        )
        rewritten = simplify_chains(expr, rig)
        assert rewritten == parse(
            "(Name within Proc_header within Program) union Var"
        )

    def test_equivalence_on_rig_instances(self):
        """The dropped test never changes results on instances satisfying
        the RIG (Definition 2.5's notion of equivalence)."""
        rig = figure_1_rig()
        e1 = parse("Name within Proc_header within Proc within Program")
        e2 = A.including_chain(
            simplify_inclusion_chain(
                ["Name", "Proc_header", "Proc", "Program"], rig
            )
        )
        rng = random.Random(21)
        for _ in range(60):
            instance = rig_constrained_instance(
                rng, rig, roots=("Program",), max_nodes=40
            )
            assert evaluate(e1, instance) == evaluate(e2, instance)

    def test_dropping_is_unsound_without_the_rig(self):
        """On unconstrained instances e1 and e2 differ — the RIG premise
        is essential."""
        from repro.workloads.generators import TreeNode, instance_from_trees

        # A Proc_header sitting directly in a Program, no Proc.
        tree = TreeNode(
            "Program", [TreeNode("Proc_header", [TreeNode("Name")])]
        )
        instance = instance_from_trees(
            [tree],
            names=(
                "Name",
                "Proc",
                "Proc_header",
                "Program",
                "Prog_body",
                "Prog_header",
                "Proc_body",
                "Var",
            ),
        )
        e1 = parse("Name within Proc_header within Proc within Program")
        e2 = parse("Name within Proc_header within Program")
        assert evaluate(e1, instance) != evaluate(e2, instance)
