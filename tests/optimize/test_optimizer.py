"""The cost-based optimizer (Section 3's optimization recipe)."""

from repro.algebra import ast as A
from repro.algebra.cost import CostModel, operation_count
from repro.algebra.parser import parse
from repro.optimize.optimizer import optimize
from repro.rig.graph import figure_1_rig


class TestPolynomialPass:
    def test_identities_applied(self):
        result = optimize(parse("A union A"))
        assert result.expression == A.NameRef("A")
        assert result.improved
        assert "algebraic identities" in result.steps

    def test_rig_chain_pass(self):
        result = optimize(
            parse("Name within Proc_header within Proc within Program"),
            rig=figure_1_rig(),
        )
        assert result.expression == parse(
            "Name within Proc_header within Program"
        )
        assert result.original_cost == 3
        assert result.optimized_cost == 2
        assert "RIG chain simplification" in result.steps

    def test_no_rig_no_chain_pass(self):
        expr = parse("Name within Proc_header within Proc within Program")
        result = optimize(expr)
        assert result.expression == expr
        assert not result.improved

    def test_custom_cost_model(self, small_instance):
        model = CostModel.from_instance(small_instance)
        result = optimize(parse("D union D"), cost_model=model)
        assert result.optimized_cost < result.original_cost


class TestExhaustivePass:
    def test_finds_cheaper_equivalent(self):
        # (A ∩ A) ∪ A is equivalent to plain A; the bounded search finds it.
        expr = parse("(A isect A) union A")
        result = optimize(expr, exhaustive=True, max_candidate_ops=0)
        assert result.expression == A.NameRef("A")
        assert result.optimized_cost == 0

    def test_search_respects_budget(self):
        expr = parse("A containing (B containing A)")
        result = optimize(expr, exhaustive=True, max_candidate_ops=0)
        # Nothing of size 0 is equivalent; the expression survives.
        assert operation_count(result.expression) == 2

    def test_exhaustive_never_returns_inequivalent(self):
        from repro.algebra.evaluator import evaluate
        from repro.fmft.satisfiability import enumerate_instances

        expr = parse("A containing B")
        result = optimize(expr, exhaustive=True, max_candidate_ops=1)
        for instance in enumerate_instances(("A", "B"), max_nodes=3):
            assert evaluate(expr, instance) == evaluate(
                result.expression, instance
            )
