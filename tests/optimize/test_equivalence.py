"""Layered equivalence testing (Definition 2.5 / Theorem 3.4)."""

from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.optimize.equivalence import check_equivalence
from repro.rig.graph import RegionInclusionGraph, figure_1_rig


class TestPlainEquivalence:
    def test_identical_expressions(self):
        verdict = check_equivalence(parse("A"), parse("A"))
        assert verdict.equivalent

    def test_trivially_equivalent(self):
        verdict = check_equivalence(parse("A union A"), parse("A"))
        assert verdict.equivalent
        assert verdict.witness is None

    def test_inequivalent_found_with_witness(self):
        verdict = check_equivalence(parse("A containing B"), parse("A"))
        assert not verdict.equivalent
        assert verdict.witness is not None
        assert evaluate("A containing B", verdict.witness) != evaluate(
            "A", verdict.witness
        )

    def test_subtle_inequivalence(self):
        # A ⊃ (B ⊃ C) vs (A ⊃ B) ⊃ C — grouping matters.
        first = parse("A containing (B containing C)")
        second = parse("(A containing B) containing C")
        verdict = check_equivalence(first, second, max_nodes=4)
        assert not verdict.equivalent

    def test_commuted_union_equivalent(self):
        verdict = check_equivalence(parse("A union B"), parse("B union A"))
        assert verdict.equivalent


class TestRigRelativeEquivalence:
    def test_paper_e1_e2_equivalent_under_figure_1(self):
        """The headline example: e1 ≡ e2 w.r.t. the Figure 1 RIG."""
        e1 = parse("Name within Proc_header within Proc within Program")
        e2 = parse("Name within Proc_header within Program")
        verdict = check_equivalence(e1, e2, rig=figure_1_rig(), max_nodes=4)
        assert verdict.equivalent

    def test_paper_e1_e2_not_equivalent_without_rig(self):
        e1 = parse("Name within Proc_header within Proc within Program")
        e2 = parse("Name within Proc_header within Program")
        verdict = check_equivalence(e1, e2, max_nodes=4)
        assert not verdict.equivalent
        assert verdict.witness is not None

    def test_rig_witness_satisfies_rig(self):
        rig = RegionInclusionGraph(("A", "B"), [("A", "B")])
        # Under this RIG, B never includes anything: B ⊃ A ≡ empty.
        verdict = check_equivalence(
            parse("B containing A"), parse("empty"), rig=rig, max_nodes=3
        )
        assert verdict.equivalent
        # Without the RIG they differ.
        free = check_equivalence(parse("B containing A"), parse("empty"))
        assert not free.equivalent
        assert free.witness is not None
