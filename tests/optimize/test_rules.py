"""The extended rewrite-rule library: golden rewrites + soundness sweep."""

import random

from hypothesis import given, settings

from repro.algebra import ast as A
from repro.algebra.enumerate import enumerate_expressions
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.fmft.satisfiability import enumerate_instances
from repro.optimize.rewrite import simplify_deep
from repro.workloads.generators import random_instance
from tests.conftest import hierarchical_instances


class TestGoldenRewrites:
    def test_selection_pushdown_difference(self):
        assert simplify_deep(parse('(A except B) @ "p"')) == parse(
            '(A @ "p") except B'
        )

    def test_selection_pushdown_intersection(self):
        assert simplify_deep(parse('(A isect B) @ "p"')) == parse(
            '(A @ "p") isect B'
        )

    def test_selection_pushdown_semi_join(self):
        assert simplify_deep(parse('(A containing B) @ "p"')) == parse(
            '(A @ "p") containing B'
        )
        assert simplify_deep(parse('(A dwithin B) @ "p"')) == parse(
            '(A @ "p") dwithin B'
        )

    def test_selection_pushdown_bi(self):
        assert simplify_deep(parse('bi(A, B, C) @ "p"')) == parse(
            'bi(A @ "p", B, C)'
        )

    def test_idempotence_beats_pushdown(self):
        # σ_p(A ∩ A) must become σ_p(A), not σ_p(A) ∩ A.
        assert simplify_deep(parse('(A isect A) @ "p"')) == parse('A @ "p"')

    def test_semi_join_idempotence(self):
        assert simplify_deep(parse("(A containing B) containing B")) == parse(
            "A containing B"
        )
        assert simplify_deep(parse("(A before B) before B")) == parse("A before B")

    def test_semi_join_idempotence_needs_same_target(self):
        expr = parse("(A containing B) containing C")
        assert simplify_deep(expr) == expr

    def test_difference_of_difference(self):
        assert simplify_deep(parse("A except (A except B)")) == parse("A isect B")

    def test_boolean_absorption(self):
        assert simplify_deep(parse("A isect (A union B)")) == A.NameRef("A")
        assert simplify_deep(parse("A union (A isect B)")) == A.NameRef("A")
        assert simplify_deep(parse("(B union A) isect A")) == A.NameRef("A")

    def test_rules_cascade(self):
        # σ_p over an absorbable intersection collapses fully.
        assert simplify_deep(parse('(A isect (A union B)) @ "p"')) == parse('A @ "p"')


class TestSoundnessSweep:
    """Every rewrite must be an equivalence on every instance."""

    def test_exhaustive_small_expressions_on_bounded_instances(self):
        probes = list(enumerate_instances(("A", "B"), max_nodes=3))
        for expr in enumerate_expressions(("A", "B"), 2, patterns=("p",)):
            rewritten = simplify_deep(expr)
            if rewritten == expr:
                continue
            for instance in probes:
                assert evaluate(expr, instance) == evaluate(rewritten, instance), (
                    expr,
                    rewritten,
                )

    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=60, deadline=None)
    def test_random_instances(self, instance):
        queries = [
            '(A containing B) @ "p" containing B',
            "A except (A except (B union A))",
            'bi(A union A, B, C) @ "p"',
            "((A containing B) containing B) containing B",
            "(A isect (A union B)) union (B isect (B union A))",
        ]
        renames = {"A": "R0", "B": "R1", "C": "R2"}
        for query in queries:
            for old, new in renames.items():
                query = query.replace(old, new)
            expr = parse(query)
            assert evaluate(expr, instance) == evaluate(
                simplify_deep(expr), instance
            ), query

    def test_rewrites_never_increase_operation_count(self):
        rng = random.Random(5)
        for expr in enumerate_expressions(("A", "B"), 2, patterns=("p",)):
            assert A.size(simplify_deep(expr)) <= A.size(expr)
