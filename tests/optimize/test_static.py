"""The RIG/ROG static analyzer: name bounds and sound pruning."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.optimize.static import infer_name_bounds, prune_with_rig
from repro.rig.derive import rog_from_instances
from repro.rig.graph import RegionInclusionGraph, figure_1_rig
from repro.rig.rog import RegionOrderGraph
from repro.workloads.generators import rig_constrained_instance


@pytest.fixture
def rig():
    return figure_1_rig()


class TestNameBounds:
    def test_name_ref(self, rig):
        assert infer_name_bounds(parse("Proc"), rig).names == {"Proc"}

    def test_union_and_intersection(self, rig):
        assert infer_name_bounds(parse("Proc union Var"), rig).names == {
            "Proc",
            "Var",
        }
        assert infer_name_bounds(parse("Proc isect Var"), rig).is_empty

    def test_including_uses_reachability(self, rig):
        # Program can reach Var through Prog_body; Var reaches nothing.
        assert infer_name_bounds(parse("Program containing Var"), rig).names == {
            "Program"
        }
        assert infer_name_bounds(parse("Var containing Program"), rig).is_empty

    def test_included_in(self, rig):
        assert infer_name_bounds(parse("Name within Proc"), rig).names == {"Name"}
        assert infer_name_bounds(parse("Proc within Name"), rig).is_empty

    def test_direct_needs_an_edge(self, rig):
        # Program ⊃ Name is reachable but never direct.
        assert not infer_name_bounds(parse("Program containing Name"), rig).is_empty
        assert infer_name_bounds(parse("Program dcontaining Name"), rig).is_empty
        assert infer_name_bounds(parse("Proc dcontaining Proc_header"), rig).names == {
            "Proc"
        }

    def test_selection_transparent(self, rig):
        assert infer_name_bounds(parse('Var @ "x" within Proc'), rig).names == {"Var"}

    def test_unknown_names_are_leaves(self, rig):
        assert infer_name_bounds(parse("Mystery"), rig).names == {"Mystery"}
        assert infer_name_bounds(parse("Mystery within Proc"), rig).is_empty

    def test_order_without_rog_is_conservative(self, rig):
        bounds = infer_name_bounds(parse("Proc before Var"), rig)
        assert bounds.names == {"Proc"}

    def test_order_with_rog(self, rig):
        rog = RegionOrderGraph(rig.names, [("Proc_header", "Proc_body")])
        assert infer_name_bounds(
            parse("Proc_header before Proc_body"), rig, rog
        ).names == {"Proc_header"}
        assert infer_name_bounds(
            parse("Proc_body before Proc_header"), rig, rog
        ).is_empty
        # Following is the mirror image.
        assert infer_name_bounds(
            parse("Proc_body after Proc_header"), rig, rog
        ).names == {"Proc_body"}

    def test_both_included(self, rig):
        assert infer_name_bounds(parse("bi(Proc, Var, Var)"), rig).names == {"Proc"}
        assert infer_name_bounds(parse("bi(Var, Proc, Proc)"), rig).is_empty

    def test_both_included_with_rog_order_constraint(self, rig):
        rog = RegionOrderGraph(rig.names, [("Proc_header", "Proc_body")])
        assert infer_name_bounds(
            parse("bi(Proc, Proc_body, Proc_header)"), rig, rog
        ).is_empty
        assert infer_name_bounds(
            parse("bi(Proc, Proc_header, Proc_body)"), rig, rog
        ).names == {"Proc"}


class TestPruning:
    def test_prunes_impossible_inclusion(self, rig):
        expr = parse("(Var containing Proc) union Name")
        assert prune_with_rig(expr, rig) == A.NameRef("Name")

    def test_keeps_possible_queries(self, rig):
        expr = parse('Proc dcontaining Proc_body dcontaining (Var @ "x")')
        assert prune_with_rig(expr, rig) == expr

    def test_prunes_within_nested_expressions(self, rig):
        expr = parse("Proc containing (Name within Var)")
        # Name can never sit inside a Var, so the whole thing is empty.
        assert prune_with_rig(expr, rig) == A.Empty()

    @given(st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_pruning_is_sound_on_conforming_instances(self, seed):
        rig = figure_1_rig()
        rng = random.Random(seed)
        instance = rig_constrained_instance(
            rng, rig, roots=("Program",), max_nodes=40, patterns=("x",)
        )
        rog = rog_from_instances([instance])
        queries = [
            "Proc containing Var",
            "Var containing Proc",
            "(Name within Var) union (Name within Proc_header)",
            'bi(Proc_body, Var @ "x", Proc)',
            "Proc_header before Proc_body",
            "Name dwithin Prog_header",
        ]
        for query in queries:
            expr = parse(query)
            pruned = prune_with_rig(expr, rig)
            assert evaluate(expr, instance) == evaluate(pruned, instance), query
            pruned_rog = prune_with_rig(expr, rig, rog)
            assert evaluate(expr, instance) == evaluate(pruned_rog, instance), query


class TestOptimizerIntegration:
    def test_optimizer_reports_static_pruning(self):
        from repro.optimize.optimizer import optimize

        result = optimize(
            parse("Name union (Var containing Proc)"), rig=figure_1_rig()
        )
        assert result.expression == A.NameRef("Name")
        assert "RIG static pruning" in result.steps
