"""Schema-driven lowering of extended operators (Prop 5.2/5.4 applied)."""

import random

import pytest

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.optimize.lowering import lower_extended_operators
from repro.rig.graph import RegionInclusionGraph, figure_1_rig
from repro.rig.rog import RegionOrderGraph
from repro.workloads.generators import (
    TreeNode,
    instance_from_trees,
    rig_constrained_instance,
)


@pytest.fixture
def acyclic_rig():
    return RegionInclusionGraph(
        ("Doc", "Sec", "Par"),
        [("Doc", "Sec"), ("Sec", "Par"), ("Doc", "Par")],
    )


class TestDirectLowering:
    def test_acyclic_name_lowers_with_bound_one(self, acyclic_rig):
        result = lower_extended_operators(parse("Sec dcontaining Par"), acyclic_rig)
        assert result.is_core
        assert result.lowered == ["dcontaining via Prop 5.2 (bound 1)"]

    def test_cyclic_name_is_skipped(self):
        rig = figure_1_rig()
        result = lower_extended_operators(parse("Proc dcontaining Var"), rig)
        assert not result.is_core
        assert result.skipped
        assert result.expression == parse("Proc dcontaining Var")

    def test_acyclic_rig_lowers_compound_left_sides(self, acyclic_rig):
        result = lower_extended_operators(
            parse("(Sec union Par) dcontaining Par"), acyclic_rig
        )
        assert result.is_core

    def test_dwithin_uses_right_side_bound(self, acyclic_rig):
        result = lower_extended_operators(parse("Par dwithin Sec"), acyclic_rig)
        assert result.is_core
        assert "dwithin" in result.lowered[0]

    def test_non_rig_name_lowers_trivially(self, acyclic_rig):
        # A name outside the RIG is empty on conforming instances.
        result = lower_extended_operators(parse("Ghost dcontaining Par"), acyclic_rig)
        assert result.is_core

    def test_lowered_query_is_equivalent_on_conforming_instances(self, acyclic_rig):
        rng = random.Random(31)
        query = parse("Sec dcontaining Par")
        lowered = lower_extended_operators(query, acyclic_rig).expression
        for _ in range(40):
            instance = rig_constrained_instance(
                rng, acyclic_rig, roots=("Doc",), max_nodes=40
            )
            assert evaluate(query, instance) == evaluate(lowered, instance)

    def test_program_level_lowering_on_figure_1(self):
        """Program never self-nests even though the RIG is cyclic."""
        rig = figure_1_rig()
        rng = random.Random(32)
        query = parse("Program dcontaining Prog_body")
        result = lower_extended_operators(query, rig)
        assert result.is_core
        for _ in range(25):
            instance = rig_constrained_instance(rng, rig, roots=("Program",))
            assert evaluate(query, instance) == evaluate(
                result.expression, instance
            )


class TestBothIncludedLowering:
    def test_without_rog_is_skipped(self, acyclic_rig):
        result = lower_extended_operators(parse("bi(Sec, Par, Par)"), acyclic_rig)
        assert not result.is_core
        assert "no acyclic ROG" in result.skipped[0]

    def test_cyclic_rog_is_skipped(self, acyclic_rig):
        rog = RegionOrderGraph(("Par",), [("Par", "Par")])
        result = lower_extended_operators(
            parse("bi(Sec, Par, Par)"), acyclic_rig, rog
        )
        assert not result.is_core

    def test_acyclic_rog_lowers(self, acyclic_rig):
        rog = RegionOrderGraph(
            ("Sec", "Par"), [("Par", "Par"), ("Sec", "Sec")]
        )
        # cyclic: Par→Par is a self-loop… use a chain instead.
        rog = RegionOrderGraph(
            ("P1", "P2", "P3"), [("P1", "P2"), ("P2", "P3")]
        )
        result = lower_extended_operators(
            parse("bi(Sec, Par, Par)"), acyclic_rig, rog
        )
        assert result.is_core
        assert "width 3" in result.lowered[0]

    def test_lowered_bi_is_equivalent_under_the_width_bound(self, acyclic_rig):
        # Hand-built conforming instances with ≤ 3 non-overlapping regions.
        rog = RegionOrderGraph(("x", "y", "z"), [("x", "y"), ("y", "z")])
        lowered = lower_extended_operators(
            parse("bi(Sec, Par, Par)"), acyclic_rig, rog
        ).expression
        narrow = instance_from_trees(
            [TreeNode("Sec", [TreeNode("Par"), TreeNode("Par")])],
            names=("Doc", "Sec", "Par"),
        )
        assert evaluate(lowered, narrow) == evaluate("bi(Sec, Par, Par)", narrow)

    def test_nested_extended_operators_all_lowered(self, acyclic_rig):
        rog = RegionOrderGraph(("x", "y"), [("x", "y")])
        query = parse("(Sec dcontaining Par) union bi(Doc, Sec, Sec)")
        result = lower_extended_operators(query, acyclic_rig, rog)
        assert result.is_core
        assert len(result.lowered) == 2
