"""Top-level package surface."""

import pytest


class TestPackage:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_lazy_engine_attribute(self):
        import repro

        assert repro.Engine.__name__ == "Engine"

    def test_unknown_attribute(self):
        import repro

        with pytest.raises(AttributeError, match="no attribute"):
            repro.nope

    def test_star_surface(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_core_workflow_from_top_level(self):
        from repro import Engine, evaluate, parse, to_text

        engine = Engine.from_tagged_text("<a><b> hi </b></a>")
        expr = parse("b within a")
        assert to_text(expr) == "b within a"
        assert evaluate(expr, engine.instance) == engine.query("b within a")
