"""Synthetic corpora: generated documents must parse and be well shaped."""

import random

from repro.engine.tagged import parse_tagged_text
from repro.workloads.corpora import generate_play, generate_report


class TestPlayCorpus:
    def test_parses_with_expected_names(self):
        rng = random.Random(0)
        doc = parse_tagged_text(generate_play(rng))
        assert set(doc.instance.names) == {
            "play",
            "act",
            "scene",
            "speech",
            "speaker",
            "line",
        }

    def test_shape_parameters(self):
        rng = random.Random(1)
        text = generate_play(rng, acts=3, scenes_per_act=2, speeches_per_scene=2)
        instance = parse_tagged_text(text).instance
        assert len(instance.region_set("act")) == 3
        assert len(instance.region_set("scene")) == 6
        assert len(instance.region_set("speech")) == 12

    def test_speakers_are_indexed_words(self):
        rng = random.Random(2)
        instance = parse_tagged_text(
            generate_play(rng, speakers=("ROMEO",))
        ).instance
        speakers = instance.region_set("speaker")
        assert all(instance.matches(s, "ROMEO") for s in speakers)

    def test_every_speech_has_speaker_before_lines(self):
        rng = random.Random(3)
        from repro.algebra.evaluator import evaluate

        instance = parse_tagged_text(generate_play(rng)).instance
        speeches = instance.region_set("speech")
        with_pair = evaluate("bi(speech, speaker, line)", instance)
        assert with_pair == speeches


class TestDictionaryCorpus:
    """The OED-flavoured corpus — PAT's original application."""

    def test_parses_with_expected_names(self):
        rng = random.Random(10)
        from repro.workloads.corpora import DICTIONARY_REGION_NAMES, generate_dictionary

        instance = parse_tagged_text(generate_dictionary(rng)).instance
        assert set(instance.names) <= set(DICTIONARY_REGION_NAMES)
        assert len(instance.region_set("entry")) == 10

    def test_every_entry_has_headword_and_sense(self):
        rng = random.Random(11)
        from repro.algebra.evaluator import evaluate
        from repro.workloads.corpora import generate_dictionary

        instance = parse_tagged_text(generate_dictionary(rng)).instance
        entries = instance.region_set("entry")
        assert evaluate("entry dcontaining headword", instance) == entries
        assert evaluate("entry containing sense", instance) == entries

    def test_headwords_alphabetical(self):
        rng = random.Random(12)
        from repro.workloads.corpora import generate_dictionary

        doc = parse_tagged_text(generate_dictionary(rng, entries=6))
        words = [
            doc.extract(r).replace("<headword>", "").replace("</headword>", "").strip()
            for r in sorted(doc.instance.region_set("headword"))
        ]
        assert words == sorted(words)

    def test_sub_senses_nest(self):
        rng = random.Random(13)
        from repro.algebra.evaluator import evaluate
        from repro.workloads.corpora import generate_dictionary

        nested = False
        for _ in range(10):
            instance = parse_tagged_text(generate_dictionary(rng)).instance
            if evaluate("sense within sense", instance):
                nested = True
                break
        assert nested

    def test_quotation_structure(self):
        rng = random.Random(14)
        from repro.algebra.evaluator import evaluate
        from repro.workloads.corpora import generate_dictionary

        instance = parse_tagged_text(generate_dictionary(rng)).instance
        quotations = instance.region_set("quotation")
        if quotations:
            assert evaluate("quotation dcontaining author", instance) == quotations


class TestReportCorpus:
    def test_parses_and_self_nests(self):
        rng = random.Random(4)
        found_nested = False
        for _ in range(10):
            instance = parse_tagged_text(generate_report(rng)).instance
            sections = instance.region_set("section")
            if sections.max_nesting_depth() > 1:
                found_nested = True
                break
        assert found_nested

    def test_every_section_has_title(self):
        rng = random.Random(5)
        from repro.algebra.evaluator import evaluate

        instance = parse_tagged_text(generate_report(rng)).instance
        sections = instance.region_set("section")
        titled = evaluate("section dcontaining title", instance)
        assert titled == sections
