"""Synthetic instance generators: validity and shape guarantees."""

import random

import pytest

from repro.rig.graph import RegionInclusionGraph, figure_1_rig
from repro.workloads.generators import (
    TreeNode,
    balanced_tree,
    figure_2_instance,
    figure_3_instance,
    flat_row,
    instance_from_trees,
    nested_tower,
    random_instance,
    rig_constrained_instance,
)


class TestInstanceFromTrees:
    def test_basic_lowering(self):
        tree = TreeNode("A", [TreeNode("B"), TreeNode("B")])
        instance = instance_from_trees([tree])
        assert len(instance.region_set("A")) == 1
        assert len(instance.region_set("B")) == 2
        (a,) = instance.region_set("A")
        for b in instance.region_set("B"):
            assert a.includes(b)

    def test_sibling_order_preserved(self):
        tree = TreeNode("A", [TreeNode("B"), TreeNode("C")])
        instance = instance_from_trees([tree])
        (b,) = instance.region_set("B")
        (c,) = instance.region_set("C")
        assert b.precedes(c)

    def test_labels_become_word_index(self):
        tree = TreeNode("A", [], frozenset({"p"}))
        instance = instance_from_trees([tree])
        (a,) = instance.region_set("A")
        assert instance.matches(a, "p")

    def test_explicit_name_universe(self):
        instance = instance_from_trees([TreeNode("A")], names=("A", "B"))
        assert instance.names == ("A", "B")
        assert len(instance.region_set("B")) == 0

    def test_always_hierarchical(self):
        rng = random.Random(0)
        for _ in range(30):
            random_instance(rng).validate_hierarchy()


class TestRandomGenerators:
    def test_random_instance_respects_name_universe(self):
        rng = random.Random(1)
        instance = random_instance(rng, names=("X", "Y"))
        assert instance.names == ("X", "Y")

    def test_random_instance_patterns(self):
        rng = random.Random(2)
        found = False
        for _ in range(20):
            instance = random_instance(
                rng, patterns=("p",), pattern_probability=0.9
            )
            found = found or any(
                instance.matches(r, "p") for r in instance.all_regions()
            )
        assert found

    def test_rig_constrained_always_satisfies(self):
        rng = random.Random(3)
        rig = figure_1_rig()
        for _ in range(30):
            instance = rig_constrained_instance(rng, rig, roots=("Program",))
            assert rig.satisfied_by(instance)

    def test_rig_constrained_with_cyclic_rig(self):
        rng = random.Random(4)
        rig = RegionInclusionGraph(("A", "B"), [("A", "B"), ("B", "A")])
        for _ in range(10):
            instance = rig_constrained_instance(rng, rig, roots=("A", "B"))
            assert rig.satisfied_by(instance)


class TestFigureFamilies:
    def test_figure_2_alternation(self):
        tower = figure_2_instance(6)
        forest = tower.forest()
        names = [
            tower.name_of(region) for region in forest.preorder
        ]
        assert names == ["B", "A", "B", "A", "B", "A"]

    def test_figure_2_odd_depth_still_b_outermost(self):
        tower = figure_2_instance(5)
        forest = tower.forest()
        assert tower.name_of(forest.roots()[0]) == "B"

    def test_figure_2_invalid_depth(self):
        with pytest.raises(ValueError):
            figure_2_instance(0)

    def test_figure_3_middle_structure(self):
        family = figure_3_instance(1)
        forest = family.forest()
        c_regions = sorted(family.region_set("C"), key=lambda r: r.left)
        assert len(c_regions) == 5
        middle_children = [
            family.name_of(c) for c in forest.children_of(c_regions[2])
        ]
        assert middle_children == ["A", "B", "A"]
        side_children = [
            family.name_of(c) for c in forest.children_of(c_regions[0])
        ]
        assert side_children == ["A", "B"]

    def test_figure_3_invalid_k(self):
        with pytest.raises(ValueError):
            figure_3_instance(-1)


class TestShapePrimitives:
    def test_nested_tower(self):
        tower = nested_tower(5, ("A", "B"))
        assert tower.nesting_depth() == 5
        assert len(tower.region_set("A")) == 3
        assert len(tower.region_set("B")) == 2

    def test_flat_row(self):
        row = flat_row(7, "R", labels=("p",))
        assert len(row.region_set("R")) == 7
        assert row.nesting_depth() == 1
        assert all(row.matches(r, "p") for r in row.all_regions())

    def test_balanced_tree(self):
        tree = balanced_tree(3, 2, ("A", "B", "C"))
        assert len(tree.region_set("A")) == 1
        assert len(tree.region_set("B")) == 2
        assert len(tree.region_set("C")) == 4
        assert tree.nesting_depth() == 3

    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            nested_tower(0, ("A",))
        with pytest.raises(ValueError):
            balanced_tree(0, 2, ("A",))
