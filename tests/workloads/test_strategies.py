"""The public hypothesis strategies."""

from hypothesis import given

from repro.workloads.strategies import (
    hierarchical_instances,
    region_lists,
    regions,
    tree_nodes,
)


class TestStrategies:
    @given(regions())
    def test_regions_are_valid(self, region):
        assert region.left <= region.right

    @given(region_lists(max_size=10))
    def test_region_lists_bounded(self, items):
        assert len(items) <= 10

    @given(tree_nodes(names=("X",), patterns=("p",)))
    def test_tree_nodes_use_given_universe(self, node):
        stack = [node]
        while stack:
            current = stack.pop()
            assert current.name == "X"
            assert current.labels <= {"p"}
            stack.extend(current.children)

    @given(hierarchical_instances(names=("X", "Y"), patterns=("p",)))
    def test_instances_are_valid_and_scoped(self, instance):
        instance.validate_hierarchy()
        assert instance.names == ("X", "Y")

    @given(hierarchical_instances(max_trees=2, max_depth=2, max_children=2))
    def test_shape_bounds_respected(self, instance):
        assert instance.nesting_depth() <= 3  # max_depth counts from 0
