"""The ingest chaos harness: report mechanics plus one short run."""

from repro.faults.ingestchaos import (
    IngestChaosConfig,
    IngestChaosReport,
    run_ingest_chaos,
)


class TestReport:
    def test_ok_iff_no_violations(self):
        report = IngestChaosReport(seed=1)
        assert report.ok
        report.violations.append("a committed batch vanished")
        assert not report.ok

    def test_summary_and_format(self):
        report = IngestChaosReport(seed=3)
        report.responses["warmup"] = {"200": 40}
        report.writes_acked = 12
        report.writes_failed = 3
        report.wal_fault_fires = 3
        report.replayed_batches = 5
        report.restart_bit_identical = True
        report.final_bit_identical = True
        report.compaction = {"merged_segments": 4, "dropped_tombstones": 1}
        summary = report.summary()
        assert summary["ok"] is True
        assert summary["writes_acked"] == 12
        text = report.format_report()
        assert "PASSED" in text
        assert "12 acked, 3 failed" in text
        assert "merged 4 segment(s)" in text

    def test_format_lists_violations(self):
        report = IngestChaosReport(seed=0)
        report.violations.append("post-restart state diverged from mirror")
        text = report.format_report()
        assert "FAILED" in text
        assert "diverged" in text


class TestRunIngestChaos:
    def test_short_run_passes_all_invariants(self):
        """An abbreviated end-to-end ingest chaos scenario: sustained
        reads and writes, WAL faults failing a slice of the commits, a
        cold restart that must replay to a bit-identical corpus, and a
        final three-way oracle (serving state == acked-batch mirror ==
        rebuilt-from-scratch re-parse)."""
        config = IngestChaosConfig(
            seed=0,
            qps=40.0,
            write_rate=10.0,
            warmup_seconds=0.8,
            fault_seconds=2.4,
            recovery_seconds=1.2,
            wal_fault_rate=0.35,
        )
        report = run_ingest_chaos(config)
        assert report.ok, report.violations
        assert report.corrupted_responses == 0
        assert report.verified_responses > 0
        assert report.writes_acked > 0
        assert report.generations_published > 0
        assert report.restart_bit_identical
        assert report.final_bit_identical

    def test_same_seed_same_outcome(self):
        """Chaos is deterministic by seed: two identical configs observe
        the same write stream and the same fault decisions."""
        config = IngestChaosConfig(
            seed=4,
            qps=20.0,
            write_rate=8.0,
            warmup_seconds=0.5,
            fault_seconds=1.6,
            recovery_seconds=0.8,
            wal_fault_rate=0.5,
        )
        first = run_ingest_chaos(config)
        second = run_ingest_chaos(config)
        assert first.ok, first.violations
        assert second.ok, second.violations
        assert first.writes_acked == second.writes_acked
        assert first.writes_failed == second.writes_failed
        assert first.wal_fault_fires == second.wal_fault_fires
        assert first.documents_final == second.documents_final
