"""The backend-kill chaos harness: report mechanics plus one short run."""

from repro.faults.backendchaos import (
    BackendChaosConfig,
    BackendChaosReport,
    run_backend_chaos,
)


class TestReport:
    def test_ok_iff_no_violations(self):
        report = BackendChaosReport(seed=1)
        assert report.ok
        report.violations.append("something broke")
        assert not report.ok

    def test_summary_and_format(self):
        report = BackendChaosReport(seed=3)
        report.topology = {"nodes": 2, "groups": 2, "replicas": 2}
        report.responses["kill"] = {"200": 50}
        report.killed_node = "b1"
        report.kill_availability = 1.0
        report.final_breakers = {"b0": "closed", "b1": "closed"}
        summary = report.summary()
        assert summary["ok"] is True
        assert summary["killed_node"] == "b1"
        text = report.format_report()
        assert "PASSED" in text
        assert "killed b1 with SIGKILL" in text
        assert "b1: closed" in text

    def test_format_lists_violations(self):
        report = BackendChaosReport(seed=0)
        report.violations.append("the supervisor never respawned b0")
        text = report.format_report()
        assert "FAILED" in text
        assert "never respawned" in text


class TestRunBackendChaos:
    def test_short_run_passes_all_invariants(self):
        """An abbreviated end-to-end backend-kill scenario: one backend
        SIGKILL'd mid-load, failover keeps availability, the supervisor
        respawns it, breakers re-close, and every response matches the
        single-process oracle."""
        report = run_backend_chaos(
            BackendChaosConfig(
                seed=0,
                qps=30.0,
                warmup_seconds=0.5,
                kill_seconds=2.5,
                recovery_seconds=1.5,
                breaker_reset=0.5,
                respawn_delay=0.3,
            )
        )
        assert report.ok, report.violations
        assert report.corrupted_responses == 0
        assert report.verified_responses > 0
        assert report.respawns >= 1
        assert report.kill_availability >= 0.9
        assert all(
            state == "closed" for state in report.final_breakers.values()
        )
        assert report.equivalence_checks == 5
