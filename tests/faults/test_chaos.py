"""The chaos harness: oracle verification units plus one short run."""

import random

import pytest

from repro.engine.session import Engine
from repro.faults.chaos import ChaosConfig, ChaosReport, _Oracles, run_chaos
from repro.workloads.corpora import generate_play
from repro.workloads.queries import PLAY_QUERIES


@pytest.fixture(scope="module")
def play_engine():
    text = generate_play(
        random.Random(0),
        acts=2,
        scenes_per_act=2,
        speeches_per_scene=4,
        lines_per_speech=3,
    )
    return Engine.from_tagged_text(text)


class TestOracles:
    def test_correct_responses_verify_clean(self, play_engine):
        oracles = _Oracles(play_engine, PLAY_QUERIES)
        for text in PLAY_QUERIES.values():
            regions = [
                [r.left, r.right] for r in play_engine.query(text)
            ]
            assert oracles.verify(text, regions) == []

    def test_reduction_oracle_built_for_order_free_queries(self, play_engine):
        oracles = _Oracles(play_engine, PLAY_QUERIES)
        # The play mix is entirely order-free and the generated corpus
        # has isomorphic siblings, so the theorem oracle must exist.
        assert oracles.reduction

    def test_corrupted_response_detected(self, play_engine):
        oracles = _Oracles(play_engine, PLAY_QUERIES)
        text = next(iter(PLAY_QUERIES.values()))
        regions = [[r.left, r.right] for r in play_engine.query(text)]
        assert regions, "need a non-empty result to corrupt"
        mangled = regions[:-1] + [[regions[-1][0] + 1, regions[-1][1] + 1]]
        problems = oracles.verify(text, mangled)
        assert problems
        assert any("baseline" in p for p in problems)

    def test_dropped_region_violates_reduction_theorem(self, play_engine):
        oracles = _Oracles(play_engine, PLAY_QUERIES)
        candidates = [
            text
            for text, expected in oracles.reduction.items()
            if oracles.baseline[text]
        ]
        assert candidates
        text = candidates[0]
        regions = sorted(oracles.baseline[text])
        problems = oracles.verify(text, [list(r) for r in regions[:-1]])
        assert problems

    def test_verdicts_are_cached(self, play_engine):
        oracles = _Oracles(play_engine, PLAY_QUERIES)
        text = next(iter(PLAY_QUERIES.values()))
        regions = [[r.left, r.right] for r in play_engine.query(text)]
        oracles.verify(text, regions)
        checks_after_first = oracles.reduction_checks
        oracles.verify(text, regions)
        assert oracles.reduction_checks == checks_after_first


class TestReport:
    def test_ok_iff_no_violations(self):
        report = ChaosReport()
        assert report.ok
        report.violations.append("something broke")
        assert not report.ok

    def test_summary_and_format(self):
        report = ChaosReport(seed=3)
        report.responses["fault"] = {"200": 10, "500": 1}
        report.health_states_seen = ["healthy", "degraded", "healthy"]
        summary = report.summary()
        assert summary["ok"] is True
        assert summary["seed"] == 3
        text = report.format_report()
        assert "PASSED" in text
        assert "healthy -> degraded -> healthy" in text


class TestRunChaos:
    def test_short_run_passes_all_invariants(self):
        """An end-to-end (but abbreviated) chaos scenario: faults fire,
        the breaker trips and recovers, the index is rebuilt, health
        degrades and heals, and no response is ever corrupted."""
        report = run_chaos(
            ChaosConfig(
                seed=0,
                qps=50.0,
                warmup_seconds=0.6,
                fault_seconds=2.5,
                recovery_seconds=2.0,
                reload_period=0.25,
                breaker_reset=0.5,
            )
        )
        assert report.ok, report.violations
        assert report.corrupted_responses == 0
        assert report.breaker_trips >= 1
        assert report.breaker_final_state == "closed"
        assert report.rebuilds >= 1
        assert report.worker_deaths >= 0
        assert report.health_states_seen[0] == "healthy"
        assert "degraded" in report.health_states_seen
        assert report.final_health == "healthy"
        assert report.fault_fires  # something actually fired
        assert report.verified_responses > 0
