"""The fault-injection registry: specs, determinism, modes, scoping."""

import pytest

from repro.errors import FaultInjected, ReproError, StorageError, WorkerKilled
from repro.faults import (
    FaultRegistry,
    FaultSpec,
    active,
    injected_faults,
)
from repro.faults import registry as registry_module
from repro.obs.metrics import MetricsRegistry


class TestFaultSpec:
    def test_unknown_point_rejected(self):
        with pytest.raises(ReproError, match="unknown fault point"):
            FaultSpec("bogus.point")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ReproError, match="unknown fault mode"):
            FaultSpec("storage.read", "explode")

    def test_probability_bounds(self):
        with pytest.raises(ReproError, match="probability"):
            FaultSpec("storage.read", probability=1.5)
        with pytest.raises(ReproError, match="probability"):
            FaultSpec("storage.read", probability=-0.1)

    def test_negative_latency_rejected(self):
        with pytest.raises(ReproError, match="latency"):
            FaultSpec("storage.read", "latency", latency=-1.0)


class TestFire:
    def test_error_mode_raises_typed_fault(self):
        registry = FaultRegistry(seed=1, metrics=MetricsRegistry())
        registry.arm(FaultSpec("storage.read", "error"))
        with pytest.raises(FaultInjected) as excinfo:
            registry.fire("storage.read")
        assert excinfo.value.code == "fault_injected"
        assert excinfo.value.point == "storage.read"

    def test_custom_error_type(self):
        registry = FaultRegistry(seed=1, metrics=MetricsRegistry())
        registry.arm(FaultSpec("storage.read", "error", error=StorageError))
        with pytest.raises(StorageError):
            registry.fire("storage.read")

    def test_kill_mode_raises_worker_killed(self):
        registry = FaultRegistry(seed=1, metrics=MetricsRegistry())
        registry.arm(FaultSpec("pool.worker", "kill"))
        with pytest.raises(WorkerKilled) as excinfo:
            registry.fire("pool.worker")
        assert excinfo.value.code == "worker_killed"

    def test_corrupt_mode_flips_bytes(self):
        registry = FaultRegistry(seed=1, metrics=MetricsRegistry())
        registry.arm(FaultSpec("storage.read", "corrupt"))
        data = b"x" * 100
        mangled = registry.fire("storage.read", data)
        assert mangled != data
        assert len(mangled) == len(data)

    def test_unarmed_point_passes_data_through(self):
        registry = FaultRegistry(seed=1, metrics=MetricsRegistry())
        registry.arm(FaultSpec("storage.read", "error"))
        assert registry.fire("cache.get", b"payload") == b"payload"

    def test_max_fires_budget(self):
        registry = FaultRegistry(seed=1, metrics=MetricsRegistry())
        registry.arm(FaultSpec("cache.get", "error", max_fires=2))
        for _ in range(2):
            with pytest.raises(FaultInjected):
                registry.fire("cache.get")
        # Budget exhausted: the point goes quiet.
        for _ in range(10):
            registry.fire("cache.get")
        assert registry.fires("cache.get") == 2

    def test_seed_determinism(self):
        def outcomes(seed: int) -> list[bool]:
            registry = FaultRegistry(seed=seed, metrics=MetricsRegistry())
            registry.arm(FaultSpec("evaluator.step", "error", probability=0.3))
            results = []
            for _ in range(200):
                try:
                    registry.fire("evaluator.step")
                    results.append(False)
                except FaultInjected:
                    results.append(True)
            return results

        assert outcomes(7) == outcomes(7)
        assert outcomes(7) != outcomes(8)

    def test_probability_roughly_respected(self):
        registry = FaultRegistry(seed=3, metrics=MetricsRegistry())
        registry.arm(FaultSpec("evaluator.step", "error", probability=0.25))
        hits = 0
        for _ in range(1000):
            try:
                registry.fire("evaluator.step")
            except FaultInjected:
                hits += 1
        assert 150 < hits < 350

    def test_fires_counted_per_point_and_mode(self):
        metrics = MetricsRegistry()
        registry = FaultRegistry(seed=1, metrics=metrics)
        registry.arm(FaultSpec("storage.read", "corrupt"))
        registry.arm(FaultSpec("pool.worker", "kill"))
        registry.fire("storage.read", b"abc")
        with pytest.raises(WorkerKilled):
            registry.fire("pool.worker")
        assert registry.fires() == 2
        assert registry.fires(point="storage.read") == 1
        assert registry.fires(mode="kill") == 1
        counted = metrics.counter("fault_injections_total").snapshot()
        assert sum(counted.values()) == 2

    def test_snapshot_lists_armed_and_fired(self):
        registry = FaultRegistry(seed=5, metrics=MetricsRegistry())
        registry.arm(FaultSpec("cache.get", "error", max_fires=1))
        with pytest.raises(FaultInjected):
            registry.fire("cache.get")
        snapshot = registry.snapshot()
        assert snapshot["seed"] == 5
        assert snapshot["armed"][0]["point"] == "cache.get"
        assert snapshot["armed"][0]["fires"] == 1
        assert snapshot["fires"] == {"cache.get:error": 1}

    def test_disarm_by_point(self):
        registry = FaultRegistry(seed=1, metrics=MetricsRegistry())
        registry.arm(FaultSpec("cache.get", "error"))
        registry.arm(FaultSpec("storage.read", "error"))
        registry.disarm("cache.get")
        registry.fire("cache.get")  # no longer armed
        with pytest.raises(FaultInjected):
            registry.fire("storage.read")


class TestScoping:
    def test_inactive_by_default(self):
        assert active() is None
        assert registry_module.fire("storage.read", b"data") == b"data"

    def test_injected_faults_context_manager(self):
        with injected_faults(
            FaultSpec("storage.read", "error"), metrics=MetricsRegistry()
        ) as registry:
            assert active() is registry
            with pytest.raises(FaultInjected):
                registry_module.fire("storage.read")
        assert active() is None
        registry_module.fire("storage.read")  # quiet again

    def test_context_manager_deactivates_on_error(self):
        with pytest.raises(RuntimeError):
            with injected_faults(metrics=MetricsRegistry()):
                raise RuntimeError("boom")
        assert active() is None
