"""Retry policies and the circuit breaker (clocks faked throughout)."""

import random

import pytest

from repro.errors import StorageError
from repro.faults import CircuitBreaker, RetryPolicy, retry_call


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)

    def test_delays_grow_exponentially_and_cap(self):
        policy = RetryPolicy(
            attempts=6, base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0
        )
        rng = random.Random(0)
        delays = [policy.delay(i, rng) for i in range(5)]
        assert delays == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=1.0, jitter=0.5)
        rng = random.Random(42)
        for _ in range(100):
            delay = policy.delay(0, rng)
            assert 0.05 <= delay <= 0.15


class TestRetryCall:
    def test_succeeds_after_transient_failures(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise StorageError("transient")
            return "ok"

        slept = []
        result = retry_call(
            flaky,
            policy=RetryPolicy(attempts=3, base_delay=0.01, jitter=0.0),
            retry_on=(StorageError,),
            rng=random.Random(0),
            sleep=slept.append,
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert len(slept) == 2

    def test_exhaustion_reraises_last_error(self):
        def doomed():
            raise StorageError("persistent")

        exhausted = []
        with pytest.raises(StorageError, match="persistent"):
            retry_call(
                doomed,
                policy=RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0),
                retry_on=(StorageError,),
                rng=random.Random(0),
                on_exhausted=lambda exc: exhausted.append(exc),
                sleep=lambda _: None,
            )
        assert len(exhausted) == 1

    def test_non_retryable_error_propagates_immediately(self):
        calls = {"n": 0}

        def wrong_kind():
            calls["n"] += 1
            raise ValueError("not retryable")

        with pytest.raises(ValueError):
            retry_call(
                wrong_kind,
                policy=RetryPolicy(attempts=5, base_delay=0.0),
                retry_on=(StorageError,),
                rng=random.Random(0),
                sleep=lambda _: None,
            )
        assert calls["n"] == 1

    def test_on_retry_called_per_attempt(self):
        attempts = []

        def flaky():
            if len(attempts) < 2:
                raise StorageError("again")
            return 1

        retry_call(
            flaky,
            policy=RetryPolicy(attempts=3, base_delay=0.0, jitter=0.0),
            retry_on=(StorageError,),
            op="load",
            rng=random.Random(0),
            on_retry=lambda i, delay, exc: attempts.append(i),
            sleep=lambda _: None,
        )
        assert attempts == [0, 1]

    def test_budget_stops_early(self):
        calls = {"n": 0}

        def doomed():
            calls["n"] += 1
            raise StorageError("slow")

        # A zero budget means no time for retries at all.
        with pytest.raises(StorageError):
            retry_call(
                doomed,
                policy=RetryPolicy(attempts=10, base_delay=0.01, budget=0.0),
                retry_on=(StorageError,),
                rng=random.Random(0),
                sleep=lambda _: None,
            )
        assert calls["n"] == 1


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestCircuitBreaker:
    def make(self, **kwargs):
        clock = _Clock()
        transitions = []
        breaker = CircuitBreaker(
            failure_threshold=kwargs.pop("failure_threshold", 3),
            reset_timeout=kwargs.pop("reset_timeout", 10.0),
            clock=clock,
            on_transition=lambda old, new: transitions.append((old, new)),
        )
        return breaker, clock, transitions

    def trip(self, breaker):
        for _ in range(3):
            breaker.record_failure()

    def test_starts_closed_and_allows(self):
        breaker, _, _ = self.make()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_opens_after_consecutive_failures(self):
        breaker, _, transitions = self.make()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        assert breaker.trips == 1
        assert (CircuitBreaker.CLOSED, CircuitBreaker.OPEN) in transitions

    def test_success_resets_the_failure_streak(self):
        breaker, _, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_half_open_after_reset_timeout_single_probe(self):
        breaker, clock, _ = self.make(reset_timeout=5.0)
        self.trip(breaker)
        clock.now = 4.9
        assert not breaker.allow()
        clock.now = 5.1
        assert breaker.allow()  # the single half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allow()  # second caller is still rejected

    def test_probe_success_closes(self):
        breaker, clock, transitions = self.make(reset_timeout=5.0)
        self.trip(breaker)
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()
        assert (CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED) in transitions

    def test_probe_failure_reopens(self):
        breaker, clock, _ = self.make(reset_timeout=5.0)
        self.trip(breaker)
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        # The reset timer restarted from the failed probe.
        clock.now = 10.0
        assert not breaker.allow()
        clock.now = 11.5
        assert breaker.allow()

    def test_seconds_until_probe(self):
        breaker, clock, _ = self.make(reset_timeout=5.0)
        assert breaker.seconds_until_probe() == 0.0
        self.trip(breaker)
        clock.now = 2.0
        assert breaker.seconds_until_probe() == pytest.approx(3.0)

    def test_snapshot(self):
        breaker, _, _ = self.make()
        self.trip(breaker)
        snapshot = breaker.snapshot()
        assert snapshot["state"] == CircuitBreaker.OPEN
        assert snapshot["trips"] == 1
        assert snapshot["consecutive_failures"] == 3


class TestHalfOpenProbeSemantics:
    """Regressions for the half-open race: exactly one probe in flight,
    concurrent callers fast-fail, and a probe whose caller vanished
    expires instead of wedging the breaker."""

    def make(self, reset_timeout=5.0):
        clock = _Clock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=reset_timeout, clock=clock
        )
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        return breaker, clock

    def test_exactly_one_probe_while_in_flight(self):
        breaker, clock = self.make()
        clock.now = 6.0
        grants = [breaker.allow() for _ in range(5)]
        assert grants == [True, False, False, False, False]
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_concurrent_threads_get_one_probe(self):
        import threading

        breaker, clock = self.make()
        clock.now = 6.0
        grants = []
        lock = threading.Lock()
        barrier = threading.Barrier(8)

        def contend():
            barrier.wait()
            granted = breaker.allow()
            with lock:
                grants.append(granted)

        threads = [threading.Thread(target=contend) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert grants.count(True) == 1

    def test_wedged_probe_expires_and_rearms(self):
        breaker, clock = self.make(reset_timeout=5.0)
        clock.now = 6.0
        assert breaker.allow()  # the probe whose caller will vanish
        assert not breaker.allow()
        # Nobody ever reports on the probe; once reset_timeout passes
        # again, a fresh probe is granted instead of wedging half-open.
        clock.now = 10.5
        assert not breaker.allow()
        clock.now = 11.5
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_probe_state_cleared_on_outcome(self):
        breaker, clock = self.make()
        clock.now = 6.0
        assert breaker.allow()
        breaker.record_failure()  # re-opens, restarting the timer
        assert breaker.state == CircuitBreaker.OPEN
        clock.now = 12.0
        # A fresh half-open cycle hands out a fresh probe immediately —
        # no stale probe bookkeeping from the failed cycle.
        assert breaker.allow()
        assert not breaker.allow()
