"""FMFT formula syntax: free variables and the restricted fragment."""

from repro.fmft.formula import (
    And,
    EqualsAtom,
    Exists,
    ForAll,
    Not,
    Or,
    OrderAtom,
    PredicateAtom,
    PrefixAtom,
    free_variables,
    is_restricted,
    walk_formula,
)


def _q(name, var="x"):
    return PredicateAtom("region", name, var)


class TestFreeVariables:
    def test_atoms(self):
        assert free_variables(_q("A")) == {"x"}
        assert free_variables(PrefixAtom("x", "y")) == {"x", "y"}
        assert free_variables(EqualsAtom("x", "x")) == {"x"}

    def test_quantifier_binds(self):
        formula = Exists("y", And(_q("A"), PrefixAtom("x", "y")))
        assert free_variables(formula) == {"x"}

    def test_forall_binds(self):
        formula = ForAll("x", Or(_q("A"), Not(_q("B"))))
        assert free_variables(formula) == set()

    def test_walk(self):
        formula = And(_q("A"), Not(_q("B")))
        kinds = [type(f).__name__ for f in walk_formula(formula)]
        assert kinds == ["And", "PredicateAtom", "Not", "PredicateAtom"]


class TestRestrictedFragment:
    """The Definition 3.1 grammar."""

    def test_predicate_atoms_are_restricted(self):
        assert is_restricted(_q("A"))
        assert is_restricted(PredicateAtom("pattern", "p", "x"))

    def test_boolean_combinations_same_variable(self):
        assert is_restricted(Or(_q("A"), _q("B")))
        assert is_restricted(And(_q("A"), _q("B")))
        assert is_restricted(And(_q("A"), Not(_q("B"))))

    def test_boolean_combinations_mixed_variables_rejected(self):
        assert not is_restricted(Or(_q("A", "x"), _q("B", "y")))
        assert not is_restricted(And(_q("A", "x"), _q("B", "y")))

    def test_restricted_existential(self):
        formula = Exists(
            "y", And(And(_q("A", "x"), _q("B", "y")), PrefixAtom("x", "y"))
        )
        assert is_restricted(formula)
        # Both atom orientations are allowed (x ∘ y and y ∘ x).
        flipped = Exists(
            "y", And(And(_q("A", "x"), _q("B", "y")), OrderAtom("y", "x"))
        )
        assert is_restricted(flipped)

    def test_existential_must_quantify_witness(self):
        formula = Exists(
            "z", And(And(_q("A", "x"), _q("B", "y")), PrefixAtom("x", "y"))
        )
        assert not is_restricted(formula)

    def test_existential_same_variable_rejected(self):
        formula = Exists(
            "x", And(And(_q("A", "x"), _q("B", "x")), PrefixAtom("x", "x"))
        )
        assert not is_restricted(formula)

    def test_equality_atom_not_restricted(self):
        formula = Exists(
            "y", And(And(_q("A", "x"), _q("B", "y")), EqualsAtom("x", "y"))
        )
        assert not is_restricted(formula)

    def test_bare_negation_not_restricted(self):
        assert not is_restricted(Not(_q("A")))

    def test_universal_not_restricted(self):
        assert not is_restricted(ForAll("x", _q("A")))

    def test_direct_inclusion_formula_is_not_restricted(self):
        """The Section 5.1 point: ⊃_d needs a negated inner existential."""
        from repro.fmft.translate import directly_including_formula

        assert not is_restricted(directly_including_formula("A", "B"))

    def test_both_included_formula_is_not_restricted(self):
        from repro.fmft.translate import both_included_formula

        assert not is_restricted(both_included_formula("C", "B", "A"))
