"""Tree models and the Definition 3.2 representation mapping."""

import pytest
from hypothesis import given, settings

from repro.errors import ReproError
from repro.fmft.model import (
    TreeModel,
    instance_from_model,
    model_from_instance,
    word_precedes,
    word_prefix_includes,
)
from tests.conftest import hierarchical_instances


class TestWordRelations:
    def test_prefix_is_proper(self):
        assert word_prefix_includes("10", "100")
        assert not word_prefix_includes("10", "10")
        assert not word_prefix_includes("10", "11")

    def test_precedes_excludes_prefixes(self):
        assert word_precedes("0", "10")
        assert not word_precedes("0", "00")  # prefix, i.e. nesting
        assert not word_precedes("10", "0")

    def test_exactly_one_relation_for_distinct_words(self):
        words = ["0", "00", "010", "10", "110"]
        for u in words:
            for v in words:
                if u == v:
                    continue
                relations = [
                    word_prefix_includes(u, v),
                    word_prefix_includes(v, u),
                    word_precedes(u, v),
                    word_precedes(v, u),
                ]
                assert sum(relations) == 1, (u, v)


class TestTreeModel:
    def test_words_is_union_of_regions(self):
        model = TreeModel({"A": frozenset({"0"}), "B": frozenset({"10"})})
        assert model.words == {"0", "10"}

    def test_non_binary_words_rejected(self):
        with pytest.raises(ReproError):
            TreeModel({"A": frozenset({"02"})})

    def test_valid_representation(self):
        good = TreeModel(
            {"A": frozenset({"0"}), "B": frozenset({"10"})},
            {"p": frozenset({"0"})},
        )
        assert good.is_valid_representation()

    def test_overlapping_region_predicates_invalid(self):
        bad = TreeModel({"A": frozenset({"0"}), "B": frozenset({"0"})})
        assert not bad.is_valid_representation()

    def test_pattern_word_outside_regions_invalid(self):
        bad = TreeModel({"A": frozenset({"0"})}, {"p": frozenset({"10"})})
        assert not bad.is_valid_representation()

    def test_region_of(self):
        model = TreeModel({"A": frozenset({"0"})})
        assert model.region_of("0") == "A"
        assert model.region_of("1") is None

    def test_equality_ignores_empty_patterns(self):
        a = TreeModel({"A": frozenset({"0"})}, {"p": frozenset()})
        b = TreeModel({"A": frozenset({"0"})})
        assert a == b
        assert hash(a) == hash(b)


class TestEmbedding:
    """Definition 3.2's four conditions on the instance → model mapping."""

    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=100)
    def test_conditions_1_to_4(self, instance):
        model, region_of_word = model_from_instance(instance, patterns=("p",))
        assert model.is_valid_representation()
        forest = instance.forest()
        words = sorted(model.words)
        # Condition (1): direct prefix ⇔ direct inclusion; condition (2):
        # lexicographic precedence ⇔ region precedence (non-prefix pairs).
        for u in words:
            for v in words:
                if u == v:
                    continue
                ru, rv = region_of_word[u], region_of_word[v]
                is_direct_prefix = word_prefix_includes(u, v) and not any(
                    word_prefix_includes(u, w) and word_prefix_includes(w, v)
                    for w in words
                )
                assert is_direct_prefix == (forest.parent_of(rv) == ru)
                if not v.startswith(u) and not u.startswith(v):
                    assert word_precedes(u, v) == ru.precedes(rv)
        # Conditions (3) and (4): predicates match names and W.
        for word in words:
            region = region_of_word[word]
            assert word in model.regions[instance.name_of(region)]
            assert (word in model.patterns["p"]) == instance.matches(region, "p")

    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=60)
    def test_round_trip_model_instance_model(self, instance):
        model, _ = model_from_instance(instance, patterns=("p",))
        rebuilt, word_to_region = instance_from_model(model)
        again, _ = model_from_instance(rebuilt, patterns=("p",))
        assert again == model
        assert set(word_to_region) == set(model.words)

    def test_invalid_model_rejected_by_converse(self):
        bad = TreeModel({"A": frozenset({"0"}), "B": frozenset({"0"})})
        with pytest.raises(ReproError):
            instance_from_model(bad)

    def test_non_prefix_free_models_are_nested_instances(self):
        model = TreeModel({"A": frozenset({"0"}), "B": frozenset({"00", "01"})})
        instance, word_to_region = instance_from_model(model)
        forest = instance.forest()
        assert forest.parent_of(word_to_region["00"]) == word_to_region["0"]
        assert word_to_region["00"].precedes(word_to_region["01"])
