"""Bounded emptiness testing (Theorems 3.4/3.6)."""

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.fmft.model import model_from_instance
from repro.fmft.satisfiability import (
    emptiness_formula,
    enumerate_instances,
    find_inequivalence_witness,
    find_nonempty_witness,
    is_empty_bounded,
    rig_constraint_formula,
)
from repro.fmft.semantics import holds
from repro.rig.graph import RegionInclusionGraph, figure_1_rig


class TestEnumerateInstances:
    def test_counts_for_one_name(self):
        # Forest shapes with n nodes = Catalan(n); one name, no patterns.
        instances = list(enumerate_instances(("R",), max_nodes=3))
        assert len(instances) == 1 + 2 + 5

    def test_all_enumerated_instances_are_hierarchical(self):
        for instance in enumerate_instances(("A", "B"), max_nodes=3):
            instance.validate_hierarchy()

    def test_name_labelings_multiply(self):
        singles = [i for i in enumerate_instances(("A", "B"), max_nodes=1)]
        assert len(singles) == 2

    def test_pattern_labelings(self):
        instances = list(
            enumerate_instances(("A",), patterns=("p",), max_nodes=1)
        )
        assert len(instances) == 2  # labelled or not
        assert any(
            instance.matches(next(iter(instance.all_regions())), "p")
            for instance in instances
        )

    def test_rig_filter(self):
        rig = RegionInclusionGraph(("A", "B"), [("A", "B")])
        for instance in enumerate_instances(("A", "B"), max_nodes=3, rig=rig):
            assert rig.satisfied_by(instance)


class TestEmptinessTesting:
    def test_satisfiable_expression_gets_witness(self):
        witness = find_nonempty_witness(parse("A containing B"), max_nodes=3)
        assert witness is not None
        assert evaluate("A containing B", witness)

    def test_unsatisfiable_expression_is_empty(self):
        # A region cannot both precede and include the same name's regions
        # while being subtracted from itself.
        expr = parse("(A isect B) except (A isect B)")
        assert is_empty_bounded(expr, names=("A", "B"), max_nodes=3)

    def test_self_inclusion_needs_two_regions(self):
        witness = find_nonempty_witness(parse("A containing A"), max_nodes=2)
        assert witness is not None
        assert len(witness.all_regions()) == 2

    def test_rig_refinement_changes_the_answer(self):
        """Theorem 3.6: emptiness w.r.t. a RIG differs from plain emptiness."""
        expr = parse("B containing A")
        # Without constraints B can include A…
        assert find_nonempty_witness(expr, max_nodes=2) is not None
        # …but not under a RIG where only A includes B.
        rig = RegionInclusionGraph(("A", "B"), [("A", "B")])
        assert find_nonempty_witness(expr, max_nodes=3, rig=rig) is None

    def test_inequivalence_witness(self):
        first = parse("A containing B")
        second = parse("A")
        witness = find_inequivalence_witness(first, second, max_nodes=2)
        assert witness is not None
        assert evaluate(first, witness) != evaluate(second, witness)

    def test_equivalent_up_to_bound(self):
        first = parse("A union A")
        second = parse("A")
        assert find_inequivalence_witness(first, second, max_nodes=3) is None


class TestSentenceLevelDecision:
    """Theorem 3.6 end-to-end: deciding RIG-relative emptiness entirely
    at the formula level agrees with instance-level search."""

    def test_formula_level_agrees_with_instance_level(self):
        from repro.fmft.formula import And
        from repro.fmft.satisfiability import find_model_for_sentence

        rig = RegionInclusionGraph(("A", "B"), [("A", "B")])
        cases = {
            "A containing B": False,  # non-empty under the RIG
            "B containing A": True,  # empty under the RIG
            "A within B": True,
            "B within A": False,
        }
        for query, expected_empty in cases.items():
            expr = parse(query)
            sentence = And(
                emptiness_formula(expr, ("A", "B")),
                rig_constraint_formula(rig),
            )
            model_found = find_model_for_sentence(sentence, ("A", "B"), max_nodes=3)
            instance_found = find_nonempty_witness(expr, max_nodes=3, rig=rig)
            assert (model_found is None) == expected_empty, query
            assert (instance_found is None) == expected_empty, query

    def test_witness_instance_actually_witnesses(self):
        from repro.fmft.formula import And
        from repro.fmft.satisfiability import find_model_for_sentence

        rig = RegionInclusionGraph(("A", "B"), [("A", "B")])
        expr = parse("A containing B")
        sentence = And(
            emptiness_formula(expr, ("A", "B")), rig_constraint_formula(rig)
        )
        found = find_model_for_sentence(sentence, ("A", "B"), max_nodes=3)
        assert found is not None
        instance, _ = found
        assert evaluate(expr, instance)
        assert rig.satisfied_by(instance)


class TestTheoremFormulas:
    def test_emptiness_formula_satisfied_on_witness_model(self):
        expr = parse("A containing B")
        witness = find_nonempty_witness(expr, max_nodes=2)
        assert witness is not None
        model, _ = model_from_instance(witness)
        sentence = emptiness_formula(expr, ("A", "B"))
        assert holds(sentence, model, {})

    def test_emptiness_formula_fails_on_non_witness(self):
        expr = parse("A containing B")
        flat = find_nonempty_witness(parse("A before B"), max_nodes=2)
        assert flat is not None
        model, _ = model_from_instance(flat)
        if not evaluate(expr, flat):
            assert not holds(emptiness_formula(expr, ("A", "B")), model, {})

    def test_emptiness_formula_includes_pattern_condition(self):
        expr = parse('A @ "p"')
        sentence = emptiness_formula(expr, ("A",), patterns=("p",))
        witness = find_nonempty_witness(expr, max_nodes=2)
        assert witness is not None
        model, _ = model_from_instance(witness, patterns=("p",))
        assert holds(sentence, model, {})

    def test_rig_constraint_formula(self):
        rig = RegionInclusionGraph(("A", "B"), [("A", "B")])
        constraint = rig_constraint_formula(rig)
        good = find_nonempty_witness(parse("A containing B"), max_nodes=2)
        bad = find_nonempty_witness(parse("B containing A"), max_nodes=2)
        assert good is not None and bad is not None
        good_model, _ = model_from_instance(good)
        bad_model, _ = model_from_instance(bad)
        assert holds(constraint, good_model, {})
        assert not holds(constraint, bad_model, {})

    def test_rig_constraint_formula_no_edges(self):
        rig = RegionInclusionGraph(("A",), [])
        constraint = rig_constraint_formula(rig)
        nested = find_nonempty_witness(parse("A containing A"), max_nodes=2)
        flat = find_nonempty_witness(parse("A"), max_nodes=1)
        assert nested is not None and flat is not None
        nested_model, _ = model_from_instance(nested)
        flat_model, _ = model_from_instance(flat)
        assert not holds(constraint, nested_model, {})
        assert holds(constraint, flat_model, {})

    def test_figure_1_rig_constraint_on_real_source(self):
        import random

        from repro.engine.sourcecode import generate_program_source, parse_source

        source = generate_program_source(random.Random(3), procedures=4)
        instance = parse_source(source).instance
        model, _ = model_from_instance(instance)
        assert holds(rig_constraint_formula(figure_1_rig()), model, {})
