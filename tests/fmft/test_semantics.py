"""Formula evaluation over finite tree models."""

import pytest

from repro.errors import EvaluationError
from repro.fmft.formula import (
    And,
    EqualsAtom,
    Exists,
    ForAll,
    Not,
    Or,
    OrderAtom,
    PredicateAtom,
    PrefixAtom,
)
from repro.fmft.model import TreeModel
from repro.fmft.semantics import holds, satisfying_words


@pytest.fixture
def model():
    #        0 (A)            1 (A)
    #      /   \
    #   00 (B)  01 (C,p)
    return TreeModel(
        {
            "A": frozenset({"0", "1"}),
            "B": frozenset({"00"}),
            "C": frozenset({"01"}),
        },
        {"p": frozenset({"01"})},
    )


def _q(name, var="x", kind="region"):
    return PredicateAtom(kind, name, var)


class TestAtoms:
    def test_region_predicate(self, model):
        assert holds(_q("A"), model, {"x": "0"})
        assert not holds(_q("A"), model, {"x": "00"})

    def test_pattern_predicate(self, model):
        assert holds(_q("p", kind="pattern"), model, {"x": "01"})
        assert not holds(_q("p", kind="pattern"), model, {"x": "00"})

    def test_unknown_predicate_is_false(self, model):
        assert not holds(_q("Z"), model, {"x": "0"})

    def test_prefix_and_order(self, model):
        assert holds(PrefixAtom("x", "y"), model, {"x": "0", "y": "00"})
        assert holds(OrderAtom("x", "y"), model, {"x": "00", "y": "01"})
        assert not holds(OrderAtom("x", "y"), model, {"x": "0", "y": "00"})

    def test_equals(self, model):
        assert holds(EqualsAtom("x", "y"), model, {"x": "0", "y": "0"})
        assert not holds(EqualsAtom("x", "y"), model, {"x": "0", "y": "1"})

    def test_unbound_variable(self, model):
        with pytest.raises(EvaluationError, match="unbound"):
            holds(_q("A"), model, {})


class TestConnectivesAndQuantifiers:
    def test_connectives(self, model):
        env = {"x": "0"}
        assert holds(Or(_q("B"), _q("A")), model, env)
        assert not holds(And(_q("B"), _q("A")), model, env)
        assert holds(Not(_q("B")), model, env)

    def test_exists(self, model):
        # Some B word is included in x.
        formula = Exists("y", And(_q("B", "y"), PrefixAtom("x", "y")))
        assert holds(formula, model, {"x": "0"})
        assert not holds(formula, model, {"x": "1"})

    def test_forall(self, model):
        # Every B word is inside some A word.
        formula = ForAll(
            "y",
            Or(
                Not(_q("B", "y")),
                Exists("z", And(_q("A", "z"), PrefixAtom("z", "y"))),
            ),
        )
        assert holds(formula, model, {"x": "0"})

    def test_quantifier_restores_environment(self, model):
        env = {"x": "0", "y": "1"}
        holds(Exists("y", _q("B", "y")), model, dict(env))
        assert env["y"] == "1"

    def test_quantifiers_range_over_model_words_only(self, model):
        # "11" is not a word in the model, so it is no witness.
        formula = Exists("y", EqualsAtom("y", "y"))
        assert holds(formula, model, {})
        none_outside = Exists(
            "y", And(_q("A", "y"), PrefixAtom("x", "y"))
        )
        assert not holds(none_outside, model, {"x": "1"})


class TestSatisfyingWords:
    def test_result_set(self, model):
        formula = Exists("y", And(_q("C", "y"), PrefixAtom("x", "y")))
        assert satisfying_words(formula, model) == {"0"}

    def test_requires_single_free_variable(self, model):
        with pytest.raises(EvaluationError):
            satisfying_words(PrefixAtom("x", "y"), model)
        with pytest.raises(EvaluationError):
            satisfying_words(ForAll("x", _q("A")), model)
