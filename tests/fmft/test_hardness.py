"""Theorem 3.5: the 3-CNF → emptiness reduction, validated against SAT."""

import random

import pytest

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.errors import ReproError
from repro.fmft.hardness import (
    CNF,
    Literal,
    assignment_to_instance,
    brute_force_satisfiable,
    cnf_to_expression,
    reduction_index_names,
)
from repro.workloads.generators import random_instance


def _random_cnf(rng, max_vars=4, max_clauses=6):
    variables = rng.randint(1, max_vars)
    clauses = tuple(
        tuple(
            Literal(rng.randint(1, variables), rng.random() < 0.5)
            for _ in range(rng.randint(1, 3))
        )
        for _ in range(rng.randint(1, max_clauses))
    )
    return CNF(variables, clauses)


class TestCNFBasics:
    def test_validation(self):
        with pytest.raises(ReproError):
            CNF(1, ((),))
        with pytest.raises(ReproError):
            CNF(1, ((Literal(2, True),),))

    def test_brute_force_sat(self):
        sat = CNF(2, ((Literal(1, True), Literal(2, True)),))
        assert brute_force_satisfiable(sat) is not None
        unsat = CNF(1, ((Literal(1, True),), (Literal(1, False),)))
        assert brute_force_satisfiable(unsat) is None

    def test_index_names(self):
        cnf = CNF(2, ((Literal(1, True),),))
        assert reduction_index_names(cnf) == ("Doc", "X1", "X2", "T", "F")


class TestReduction:
    def test_expression_is_core_and_polynomial(self):
        rng = random.Random(0)
        for _ in range(10):
            cnf = _random_cnf(rng)
            expr = cnf_to_expression(cnf)
            assert A.is_core(expr)
            literals = sum(len(c) for c in cnf.clauses)
            assert A.size(expr) <= 6 * literals + 8 * cnf.variable_count + 4

    def test_satisfying_assignment_gives_witness(self):
        rng = random.Random(1)
        for _ in range(30):
            cnf = _random_cnf(rng)
            assignment = brute_force_satisfiable(cnf)
            if assignment is None:
                continue
            instance = assignment_to_instance(cnf, assignment)
            assert evaluate(cnf_to_expression(cnf), instance)

    def test_falsifying_assignment_gives_no_witness(self):
        cnf = CNF(1, ((Literal(1, True),),))
        instance = assignment_to_instance(cnf, [False])
        assert not evaluate(cnf_to_expression(cnf), instance)

    def test_unsat_formula_empty_on_random_instances(self):
        """The Co-NP direction, randomly probed: unsat φ ⇒ e(φ) empty."""
        rng = random.Random(2)
        unsat_checked = 0
        while unsat_checked < 8:
            cnf = _random_cnf(rng, max_vars=3)
            if brute_force_satisfiable(cnf) is not None:
                continue
            unsat_checked += 1
            expr = cnf_to_expression(cnf)
            names = sorted(A.region_names(expr))
            for _ in range(60):
                instance = random_instance(rng, names=names, max_nodes=18)
                assert not evaluate(expr, instance)

    def test_cheating_instances_are_subtracted(self):
        """A Doc whose X1 holds both T and F must not satisfy anything."""
        from repro.workloads.generators import TreeNode, instance_from_trees

        cnf = CNF(1, ((Literal(1, True),), (Literal(1, False),)))  # unsat
        doc = TreeNode(
            "Doc",
            [
                TreeNode("X1", [TreeNode("T")]),
                TreeNode("X1", [TreeNode("F")]),
            ],
        )
        instance = instance_from_trees([doc], names=reduction_index_names(cnf))
        assert not evaluate(cnf_to_expression(cnf), instance)

    def test_assignment_length_checked(self):
        cnf = CNF(2, ((Literal(1, True),),))
        with pytest.raises(ReproError):
            assignment_to_instance(cnf, [True])

    def test_emptiness_decides_sat_on_small_formulas(self):
        """End to end: emptiness testing answers satisfiability."""
        sat = CNF(2, ((Literal(1, True), Literal(2, False)),))
        unsat = CNF(1, ((Literal(1, True),), (Literal(1, False),)))
        sat_expr = cnf_to_expression(sat)
        # Satisfiable: the canonical witness shows non-emptiness.
        assignment = brute_force_satisfiable(sat)
        assert assignment is not None
        assert evaluate(sat_expr, assignment_to_instance(sat, assignment))
        # Unsatisfiable: no witness among all canonical assignments.
        assert all(
            not evaluate(
                cnf_to_expression(unsat), assignment_to_instance(unsat, [value])
            )
            for value in (True, False)
        )
