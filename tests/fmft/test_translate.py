"""Proposition 3.3: the algebra ⇄ restricted-formula translations."""

import pytest
from hypothesis import given, settings

from repro.algebra import ast as A
from repro.algebra.enumerate import enumerate_expressions
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.errors import ReproError
from repro.fmft.formula import is_restricted
from repro.fmft.model import model_from_instance
from repro.fmft.semantics import satisfying_words
from repro.fmft.translate import (
    algebra_to_formula,
    both_included_formula,
    directly_including_formula,
    formula_to_algebra,
)
from tests.conftest import hierarchical_instances

QUERIES = [
    "R0",
    "R0 union R1",
    "R0 isect R1",
    "R0 except R1",
    "R0 containing R1",
    "R0 within R1",
    "R0 before R1",
    "R0 after R1",
    'R0 @ "p"',
    'R0 containing (R1 @ "p") before R2',
    "(R0 except R1) within (R1 union R2)",
]


class TestTranslationShape:
    def test_every_core_query_translates_to_restricted(self):
        for query in QUERIES:
            assert is_restricted(algebra_to_formula(parse(query)))

    def test_exhaustive_small_expressions_round_trip(self):
        for expr in enumerate_expressions(("A", "B"), 2, patterns=("p",)):
            formula = algebra_to_formula(expr)
            assert is_restricted(formula)
            assert formula_to_algebra(formula) == expr

    def test_extended_operators_rejected(self):
        with pytest.raises(ReproError):
            algebra_to_formula(A.DirectlyIncluding(A.NameRef("A"), A.NameRef("B")))

    def test_bare_pattern_atom_rejected_by_converse(self):
        from repro.fmft.formula import PredicateAtom

        with pytest.raises(ReproError):
            formula_to_algebra(PredicateAtom("pattern", "p", "x"))


class TestSemanticAgreement:
    """region_I(w) ∈ e(I)  iff  w ∈ φ(t) — the statement of Prop 3.3."""

    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=80, deadline=None)
    def test_agreement_on_random_instances(self, instance):
        model, region_of_word = model_from_instance(instance, patterns=("p",))
        for query in QUERIES:
            expr = parse(query)
            expected = evaluate(expr, instance)
            words = satisfying_words(algebra_to_formula(expr), model)
            assert {region_of_word[w] for w in words} == set(expected), query

    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=40, deadline=None)
    def test_converse_agreement(self, instance):
        """Evaluating the translated-back expression agrees too."""
        model, region_of_word = model_from_instance(instance, patterns=("p",))
        for query in QUERIES[:6]:
            formula = algebra_to_formula(parse(query))
            expr = formula_to_algebra(formula)
            expected = {region_of_word[w] for w in satisfying_words(formula, model)}
            assert set(evaluate(expr, instance)) == expected


class TestExhaustiveSweep:
    """Prop 3.3 checked on *every* expression of ≤ 2 ops against a fixed
    panel of instances — the exhaustive counterpart of the random tests."""

    def test_all_small_expressions_agree_on_panel(self):
        from repro.algebra.enumerate import enumerate_expressions
        from repro.fmft.satisfiability import enumerate_instances

        panel = [
            instance
            for i, instance in enumerate(
                enumerate_instances(("A", "B"), patterns=("p",), max_nodes=3)
            )
            if i % 17 == 0  # a spread-out sample of the bounded space
        ]
        assert len(panel) >= 20
        prepared = [
            (instance, *model_from_instance(instance, patterns=("p",)))
            for instance in panel
        ]
        for expr in enumerate_expressions(("A", "B"), 2, patterns=("p",)):
            formula = algebra_to_formula(expr)
            for instance, model, region_of_word in prepared:
                words = satisfying_words(formula, model)
                assert {region_of_word[w] for w in words} == set(
                    evaluate(expr, instance)
                ), expr


class TestExtendedOperatorFormulas:
    """⊃_d and BI as general FMFT formulas (Theorem 3.6's remark)."""

    @given(hierarchical_instances(names=("A", "B")))
    @settings(max_examples=60, deadline=None)
    def test_direct_inclusion_formula_matches_native(self, instance):
        model, region_of_word = model_from_instance(instance)
        words = satisfying_words(directly_including_formula("A", "B"), model)
        expected = evaluate("A dcontaining B", instance)
        assert {region_of_word[w] for w in words} == set(expected)

    @given(hierarchical_instances(names=("A", "B", "C")))
    @settings(max_examples=60, deadline=None)
    def test_both_included_formula_matches_native(self, instance):
        model, region_of_word = model_from_instance(instance)
        words = satisfying_words(both_included_formula("C", "B", "A"), model)
        expected = evaluate("bi(C, B, A)", instance)
        assert {region_of_word[w] for w in words} == set(expected)
