"""The FMFT formula printer."""

import pytest

from repro.algebra.enumerate import enumerate_expressions
from repro.algebra.parser import parse
from repro.fmft.formula import (
    And,
    EqualsAtom,
    Exists,
    ForAll,
    Not,
    Or,
    OrderAtom,
    PredicateAtom,
    PrefixAtom,
)
from repro.fmft.printer import formula_to_text
from repro.fmft.translate import (
    algebra_to_formula,
    directly_including_formula,
)


class TestAtoms:
    def test_region_and_pattern_atoms(self):
        assert formula_to_text(PredicateAtom("region", "A", "x")) == "Q_A(x)"
        assert formula_to_text(PredicateAtom("pattern", "p", "x")) == "W_p(x)"

    def test_relations(self):
        assert formula_to_text(PrefixAtom("x", "y")) == "x ⊃ y"
        assert formula_to_text(OrderAtom("x", "y")) == "x < y"
        assert formula_to_text(EqualsAtom("x", "y")) == "x = y"


class TestConnectives:
    def test_negation(self):
        assert formula_to_text(Not(PredicateAtom("region", "A", "x"))) == "¬Q_A(x)"

    def test_precedence_parentheses(self):
        q = lambda n: PredicateAtom("region", n, "x")
        text = formula_to_text(And(Or(q("A"), q("B")), q("C")))
        assert text == "(Q_A(x) ∨ Q_B(x)) ∧ Q_C(x)"
        flat = formula_to_text(Or(q("A"), And(q("B"), q("C"))))
        assert flat == "Q_A(x) ∨ Q_B(x) ∧ Q_C(x)"

    def test_quantifiers(self):
        q = PredicateAtom("region", "A", "y")
        assert formula_to_text(Exists("y", q)) == "(∃y) Q_A(y)"
        assert formula_to_text(ForAll("y", q)) == "(∀y) Q_A(y)"

    def test_negated_quantifier_parenthesized(self):
        inner = Exists("z", PrefixAtom("x", "z"))
        assert formula_to_text(Not(inner)) == "¬((∃z) x ⊃ z)"


class TestTranslatedFormulas:
    def test_translated_query_renders(self):
        text = formula_to_text(algebra_to_formula(parse("R0 containing R1")))
        assert text == "(∃y0) Q_R0(x) ∧ Q_R1(y0) ∧ x ⊃ y0"

    def test_direct_inclusion_formula_renders(self):
        text = formula_to_text(directly_including_formula("A", "B"))
        assert "¬(" in text and "⊃" in text

    def test_every_small_translation_renders(self):
        for expr in enumerate_expressions(("A", "B"), 2, patterns=("p",)):
            text = formula_to_text(algebra_to_formula(expr))
            assert text  # no crashes, never empty
