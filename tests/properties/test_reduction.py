"""Section 4.2: isomorphism, reduce, and Theorem 4.4 / Proposition 4.5."""

import pytest
from hypothesis import given, settings

from repro.algebra import ast as A
from repro.algebra.enumerate import enumerate_expressions
from repro.algebra.parser import parse
from repro.core.region import Region
from repro.errors import ReproError
from repro.properties.reduction import (
    check_reduction_theorem,
    isomorphic,
    isomorphic_sibling_pairs,
    reduce_regions,
    subtree_signature,
)
from repro.workloads.generators import (
    TreeNode,
    figure_3_instance,
    instance_from_trees,
)
from tests.conftest import hierarchical_instances


@pytest.fixture
def twin_instance():
    """A root with two isomorphic subtrees and one odd one out."""
    twin = lambda: TreeNode("S", [TreeNode("T", [], frozenset({"p"}))])
    root = TreeNode("R", [twin(), twin(), TreeNode("S", [TreeNode("U")])])
    return instance_from_trees([root], names=("R", "S", "T", "U"))


class TestIsomorphism:
    def test_twins_are_isomorphic(self, twin_instance):
        s_regions = sorted(twin_instance.region_set("S"), key=lambda r: r.left)
        assert isomorphic(twin_instance, s_regions[0], s_regions[1], ("p",))

    def test_different_subtrees_not_isomorphic(self, twin_instance):
        s_regions = sorted(twin_instance.region_set("S"), key=lambda r: r.left)
        assert not isomorphic(twin_instance, s_regions[0], s_regions[2], ("p",))

    def test_pattern_truths_matter(self):
        root = TreeNode(
            "R",
            [
                TreeNode("S", [], frozenset({"p"})),
                TreeNode("S", [], frozenset()),
            ],
        )
        instance = instance_from_trees([root], names=("R", "S"))
        s_regions = sorted(instance.region_set("S"), key=lambda r: r.left)
        assert not isomorphic(instance, s_regions[0], s_regions[1], ("p",))
        # …but they are isomorphic w.r.t. a pattern set not containing p.
        assert isomorphic(instance, s_regions[0], s_regions[1], ())

    def test_different_ancestors_not_isomorphic(self):
        trees = [
            TreeNode("R", [TreeNode("S")]),
            TreeNode("Q", [TreeNode("S")]),
        ]
        instance = instance_from_trees(trees, names=("Q", "R", "S"))
        s_regions = sorted(instance.region_set("S"), key=lambda r: r.left)
        assert not isomorphic(instance, s_regions[0], s_regions[1])

    def test_region_not_isomorphic_to_itself(self, twin_instance):
        region = next(iter(twin_instance.region_set("R")))
        assert not isomorphic(twin_instance, region, region)

    def test_signature_distinguishes_order(self):
        a = TreeNode("R", [TreeNode("S"), TreeNode("T")])
        b = TreeNode("R", [TreeNode("T"), TreeNode("S")])
        instance = instance_from_trees([a, b], names=("R", "S", "T"))
        roots = instance.forest().roots()
        assert subtree_signature(instance, roots[0], ()) != subtree_signature(
            instance, roots[1], ()
        )


class TestReduce:
    def test_reduce_deletes_second_subtree(self, twin_instance):
        s_regions = sorted(twin_instance.region_set("S"), key=lambda r: r.left)
        reduced, mapping = reduce_regions(
            twin_instance, s_regions[0], s_regions[1], ("p",)
        )
        assert s_regions[1] not in reduced
        assert s_regions[0] in reduced
        assert len(reduced) == len(twin_instance) - 2  # S and its T child

    def test_mapping_is_identity_on_survivors(self, twin_instance):
        s_regions = sorted(twin_instance.region_set("S"), key=lambda r: r.left)
        reduced, mapping = reduce_regions(
            twin_instance, s_regions[0], s_regions[1], ("p",)
        )
        for region in reduced.all_regions():
            assert mapping[region] == region

    def test_mapping_sends_deleted_onto_kept(self, twin_instance):
        s_regions = sorted(twin_instance.region_set("S"), key=lambda r: r.left)
        forest = twin_instance.forest()
        reduced, mapping = reduce_regions(
            twin_instance, s_regions[0], s_regions[1], ("p",)
        )
        assert mapping[s_regions[1]] == s_regions[0]
        removed_child = forest.children_of(s_regions[1])[0]
        kept_child = forest.children_of(s_regions[0])[0]
        assert mapping[removed_child] == kept_child

    def test_non_isomorphic_rejected(self, twin_instance):
        s_regions = sorted(twin_instance.region_set("S"), key=lambda r: r.left)
        with pytest.raises(ReproError, match="not isomorphic"):
            reduce_regions(twin_instance, s_regions[0], s_regions[2], ("p",))

    def test_isomorphic_sibling_pairs(self, twin_instance):
        pairs = isomorphic_sibling_pairs(twin_instance, ("p",))
        s_regions = sorted(twin_instance.region_set("S"), key=lambda r: r.left)
        assert (s_regions[0], s_regions[1]) in pairs
        t_pairs = [
            p for p in pairs if twin_instance.name_of(p[0]) == "T"
        ]
        assert not t_pairs  # the T twins have different parents


class TestPropositionFourFive:
    """r ∈ e(I) iff h(r) ∈ e(I') for order-free expressions (k = 0)."""

    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=40, deadline=None)
    def test_zero_reductions_preserve_membership(self, instance):
        pairs = isomorphic_sibling_pairs(instance, ("p",))
        if not pairs:
            return
        keep, remove = pairs[0]
        for query in (
            "R0 containing R1",
            "R0 within (R1 union R2)",
            'R0 @ "p"',
            "R0 except (R0 containing R0)",
        ):
            assert check_reduction_theorem(parse(query), instance, keep, remove)

    def test_exhaustive_small_order_free_expressions(self):
        instance = figure_3_instance(1)
        first_a, second_a = _middle_as(instance, 1)
        for expr in enumerate_expressions(("A", "B", "C"), 2):
            if A.order_op_count(expr) == 0:
                assert check_reduction_theorem(expr, instance, first_a, second_a)

    def test_order_expressions_can_distinguish(self):
        """With k ≥ 1 order ops, a 0-justified reduce CAN change results —
        the reason Definition 4.3 grades reductions by k."""
        tree = TreeNode("C", [TreeNode("A"), TreeNode("A")])
        instance = instance_from_trees([tree], names=("A", "B", "C"))
        a_regions = sorted(instance.region_set("A"), key=lambda r: r.left)
        violated = not check_reduction_theorem(
            parse("A before A"), instance, a_regions[0], a_regions[1]
        )
        assert violated


class TestKReduced:
    """The recursive Definition 4.3 checker on the Theorem 5.3 proof path."""

    def test_zero_reduced_always(self):
        instance = figure_3_instance(1)
        first_a, second_a = _middle_as(instance, 1)
        reduced, mapping = reduce_regions(instance, first_a, second_a)
        from repro.properties.reduction import is_k_reduced

        assert is_k_reduced(instance, reduced, mapping, 0)

    def test_figure_3_merge_is_k_reduced(self):
        """The proof's claim: reduce(I, r'_{2k+1}, r''_{2k+1}) is a
        k-reduced version of I (witnessed by merging the middle C with
        its neighbour, exactly as the paper argues)."""
        from repro.properties.reduction import is_k_reduced

        for k in (1, 2):
            instance = figure_3_instance(k)
            first_a, second_a = _middle_as(instance, k)
            reduced, mapping = reduce_regions(instance, first_a, second_a)
            assert is_k_reduced(instance, reduced, mapping, k)

    def test_identity_is_k_reduced(self):
        from repro.properties.reduction import is_k_reduced

        instance = figure_3_instance(1)
        identity = {r: r for r in instance.all_regions()}
        assert is_k_reduced(instance, instance, identity, 3)

    def test_order_destroying_merge_is_not_1_reduced(self):
        """Merging the only two (order-distinguishable) siblings loses
        order information an expression with one < can see."""
        from repro.properties.reduction import is_k_reduced

        tree = TreeNode("C", [TreeNode("A"), TreeNode("A")])
        instance = instance_from_trees([tree], names=("A", "B", "C"))
        a_regions = sorted(instance.region_set("A"), key=lambda r: r.left)
        reduced, mapping = reduce_regions(instance, a_regions[0], a_regions[1])
        assert is_k_reduced(instance, reduced, mapping, 0)
        assert not is_k_reduced(instance, reduced, mapping, 1)

    def test_theorem_4_4_on_certified_reductions(self):
        """Theorem 4.4 end to end: once the reduction is certified
        k-reduced, every expression with ≤ k order operations is
        preserved through h."""
        from repro.properties.reduction import is_k_reduced

        k = 1
        instance = figure_3_instance(k)
        first_a, second_a = _middle_as(instance, k)
        reduced, mapping = reduce_regions(instance, first_a, second_a)
        assert is_k_reduced(instance, reduced, mapping, k)
        from repro.algebra.evaluator import Evaluator

        evaluator = Evaluator("indexed")
        for expr in enumerate_expressions(("A", "B", "C"), 2):
            if A.order_op_count(expr) > k:
                continue
            before = evaluator.evaluate(expr, instance)
            after = evaluator.evaluate(expr, reduced)
            assert all(
                (r in before) == (mapping[r] in after)
                for r in instance.all_regions()
            ), expr


def _middle_as(instance, k):
    forest = instance.forest()
    c_regions = sorted(instance.region_set("C"), key=lambda r: r.left)
    middle = c_regions[2 * k]
    a_children = [
        c for c in forest.children_of(middle) if instance.name_of(c) == "A"
    ]
    assert len(a_children) == 2
    return a_children[0], a_children[1]
