"""Theorem 4.1: the deletion theorem, property-tested."""

import random

import pytest
from hypothesis import given, settings

from repro.algebra import ast as A
from repro.algebra.enumerate import enumerate_expressions
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.core.regionset import RegionSet
from repro.errors import EvaluationError
from repro.properties.deletion import (
    check_deletion_theorem,
    s_deleted_versions,
    witness_set,
)
from repro.workloads.generators import figure_2_instance, nested_tower
from tests.conftest import hierarchical_instances

EXPRESSIONS = [
    parse(q)
    for q in (
        "R0 containing R1",
        "R0 within R1",
        "R0 before R1",
        "R0 after R1",
        "R0 except (R0 containing R1)",
        "(R0 union R1) containing (R0 isect R1)",
        'R0 @ "p" within R1',
        "bi(R0, R1, R1)",
        "R0 containing R1 containing R0",
    )
]


class TestWitnessSet:
    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=60, deadline=None)
    def test_nesting_bound(self, instance):
        """The paper's bound: S has region nesting at most 2|e| for core
        expressions; BI witness pairs relax it to 2|e| + 2·#BI (see
        repro.properties.deletion)."""
        for expr in EXPRESSIONS:
            witness = witness_set(expr, instance)
            bi_count = sum(1 for n in A.walk(expr) if isinstance(n, A.BothIncluded))
            bound = 2 * max(A.size(expr), 1) + 2 * bi_count
            assert RegionSet(witness).max_nesting_depth() <= bound

    def test_witnesses_lie_in_the_instance(self, small_instance):
        for expr in EXPRESSIONS[:4]:
            renamed = _rename(expr, {"R0": "A", "R1": "D"})
            for region in witness_set(renamed, small_instance):
                assert region in small_instance

    def test_empty_result_keeps_no_representative(self, small_instance):
        witness = witness_set(parse("A within D"), small_instance)
        assert witness == frozenset()

    def test_nonempty_result_keeps_a_representative(self, small_instance):
        witness = witness_set(parse("A"), small_instance)
        assert len(witness) == 1
        assert next(iter(witness)) in small_instance.region_set("A")

    def test_direct_operators_rejected(self, small_instance):
        """Theorem 4.1 *fails* for ⊃_d — the construction must refuse."""
        with pytest.raises(EvaluationError, match="Theorem 5.1"):
            witness_set(parse("A dcontaining D"), small_instance)


class TestDeletionTheorem:
    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=40, deadline=None)
    def test_holds_for_core_and_bi_expressions(self, instance):
        rng = random.Random(42)
        for expr in EXPRESSIONS:
            assert check_deletion_theorem(expr, instance, rng, samples=4)

    def test_exhaustive_small_expressions_on_towers(self):
        rng = random.Random(7)
        instance = nested_tower(8, ("R0", "R1"))
        for expr in enumerate_expressions(("R0", "R1"), 2):
            assert check_deletion_theorem(expr, instance, rng, samples=3)

    def test_s_deleted_versions_keep_witnesses(self, small_instance):
        rng = random.Random(0)
        expr = parse("A containing D")
        witness = witness_set(expr, small_instance)
        for version in s_deleted_versions(small_instance, witness, rng, samples=6):
            for region in witness:
                assert region in version

    def test_direct_inclusion_violates_deletion_invariance(self):
        """The engine of Theorem 5.1: deleting a non-witness region CAN
        change ⊃_d facts — no witness set makes ⊃_d deletion-stable."""
        tower = figure_2_instance(9)
        target = parse("B dcontaining A")
        before = evaluate(target, tower)
        changed = False
        for region in tower.all_regions():
            variant = tower.without_regions([region])
            after = evaluate(target, variant)
            if any((r in before) != (r in after) for r in variant.all_regions()):
                changed = True
                break
        assert changed


def _rename(expr: A.Expr, mapping: dict[str, str]) -> A.Expr:
    if isinstance(expr, A.NameRef):
        return A.NameRef(mapping.get(expr.name, expr.name))
    out = expr
    for i, child in enumerate(A.children(expr)):
        out = A.replace_child(out, i, _rename(child, mapping))
    return out
