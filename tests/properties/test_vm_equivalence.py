"""ISSUE 10 property: VM ≡ interpreter ≡ sharded execution.

Random expressions over random instances, three executors, one answer.
``random_expression`` is shared with the shard equivalence suite so the
VM sees the same operator mix (including ``<``/``>``-heavy trees and
the extended direct-nesting operators) that already exercises the
scatter-gather machinery.
"""

import random

from repro.algebra.evaluator import Evaluator
from repro.shard import ShardExecutor
from repro.workloads.generators import random_instance
from tests.shard.test_equivalence import NAMES, PATTERNS, random_expression

SHARD_COUNTS = (1, 2, 4)


def assert_three_way(instance, expr, case):
    interpreter = Evaluator("indexed", vm=False).evaluate(expr, instance)
    compiled = Evaluator("indexed").evaluate(expr, instance)
    assert list(compiled) == list(interpreter), f"case={case} expr={expr}"
    for shards in SHARD_COUNTS:
        executor = ShardExecutor(instance, shards, pool="serial")
        try:
            sharded = executor.run(expr)
        finally:
            executor.close()
        assert list(sharded) == list(interpreter), (
            f"case={case} shards={shards} expr={expr}"
        )


class TestThreeWayEquivalence:
    def test_mixed_expressions(self):
        rng = random.Random(190_1995)
        for case in range(30):
            instance = random_instance(
                rng, NAMES, max_nodes=35, patterns=PATTERNS
            )
            expr = random_expression(rng, order_bias=0.2)
            assert_three_way(instance, expr, case)

    def test_order_heavy_expressions(self):
        # < and > fold to scalar order bounds in the VM; stress them.
        rng = random.Random(271_828)
        for case in range(20):
            instance = random_instance(
                rng, NAMES, max_nodes=35, patterns=PATTERNS
            )
            expr = random_expression(rng, max_depth=5, order_bias=0.9)
            assert_three_way(instance, expr, case)

    def test_deep_narrow_instances(self):
        # Towers maximize nesting: the containment kernels' worst case.
        rng = random.Random(424_242)
        for case in range(15):
            instance = random_instance(
                rng,
                NAMES,
                max_nodes=40,
                max_depth=12,
                max_children=2,
                patterns=PATTERNS,
            )
            expr = random_expression(rng, order_bias=0.3)
            assert_three_way(instance, expr, case)

    def test_vm_shard_workers_match_interpreter_shards(self):
        # Both executors run with their defaults (VM on) elsewhere in
        # the suite; here the sharded VM answer is pinned against a
        # sharded run with the VM explicitly off.
        rng = random.Random(77)
        for case in range(10):
            instance = random_instance(
                rng, NAMES, max_nodes=45, patterns=PATTERNS
            )
            expr = random_expression(rng, order_bias=0.4)
            for shards in SHARD_COUNTS:
                on = ShardExecutor(instance, shards, pool="serial")
                off = ShardExecutor(instance, shards, pool="serial", vm=False)
                try:
                    assert list(on.run(expr)) == list(off.run(expr)), (
                        f"case={case} shards={shards} expr={expr}"
                    )
                finally:
                    on.close()
                    off.close()
