"""Theorems 5.1, 5.3 and Proposition 5.5, verified by enumeration."""

import pytest

from repro.properties.inexpressibility import (
    verify_proposition_5_5,
    verify_theorem_5_1,
    verify_theorem_5_3,
)


class TestTheoremFiveOne:
    def test_no_small_expression_computes_direct_inclusion(self):
        report = verify_theorem_5_1(max_ops=2)
        assert report.holds
        assert report.candidates > 500
        assert report.refuted == report.candidates

    def test_report_metadata(self):
        report = verify_theorem_5_1(max_ops=1)
        assert report.target == "B dcontaining A"
        assert not report.survivors


class TestTheoremFiveThree:
    def test_no_small_expression_computes_both_included(self):
        report = verify_theorem_5_3(max_ops=1)
        assert report.holds
        assert report.candidates > 50

    @pytest.mark.slow
    def test_size_two_sweep(self):
        report = verify_theorem_5_3(max_ops=2)
        assert report.holds


class TestParity:
    """The introduction's [Ehr61] aside, brute-forced."""

    def test_no_small_expression_computes_parity(self):
        from repro.properties.inexpressibility import verify_parity_inexpressible

        report = verify_parity_inexpressible(max_ops=3)
        assert report.holds
        assert report.candidates > 1000

    def test_flat_rows_distinguish_every_candidate(self):
        from repro.properties.inexpressibility import verify_parity_inexpressible

        report = verify_parity_inexpressible(max_ops=1, max_row=6)
        assert report.refuted == report.candidates


class TestPropositionFiveFive:
    def test_mutual_independence(self):
        with_direct, with_bi = verify_proposition_5_5(max_ops=1)
        # Adding ⊃_d/⊂_d still cannot express BI…
        assert with_direct.holds
        # …and adding BI still cannot express ⊃_d.
        assert with_bi.holds

    def test_direct_augmented_space_is_larger(self):
        with_direct, _ = verify_proposition_5_5(max_ops=1)
        plain = verify_theorem_5_3(max_ops=1)
        assert with_direct.candidates > plain.candidates
