"""The Figure 2/3 refuters on the paper's own wrong-query examples."""

from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.core.regionset import RegionSet
from repro.properties.counterexamples import (
    both_included_target,
    direct_inclusion_target,
    refute_both_included,
    refute_direct_inclusion,
)
from repro.workloads.generators import figure_2_instance, figure_3_instance


class TestFigureTwoFamily:
    def test_tower_shape(self):
        tower = figure_2_instance(8)
        assert tower.nesting_depth() == 8
        assert len(tower.region_set("A")) == 4
        assert len(tower.region_set("B")) == 4
        # Outermost region is a B; names alternate all the way down.
        forest = tower.forest()
        assert tower.name_of(forest.roots()[0]) == "B"

    def test_direct_inclusion_on_tower(self):
        tower = figure_2_instance(8)
        # Every B directly includes the A below it.
        result = evaluate(direct_inclusion_target(), tower)
        assert result == tower.region_set("B")

    def test_deleting_one_a_flips_direct_facts(self):
        tower = figure_2_instance(8)
        some_a = sorted(tower.region_set("A"), key=lambda r: r.left)[1]
        variant = tower.without_regions([some_a])
        before = evaluate(direct_inclusion_target(), tower)
        after = evaluate(direct_inclusion_target(), variant)
        assert before != after


class TestFigureThreeFamily:
    def test_family_shape(self):
        family = figure_3_instance(2)
        assert len(family.region_set("C")) == 9  # 4k+1
        assert len(family.region_set("B")) == 9
        assert len(family.region_set("A")) == 10  # one doubled

    def test_only_middle_c_is_selected(self):
        family = figure_3_instance(2)
        result = evaluate(both_included_target(), family)
        middle = sorted(family.region_set("C"), key=lambda r: r.left)[4]
        assert result == RegionSet([middle])

    def test_k_zero_family(self):
        family = figure_3_instance(0)
        assert len(family.region_set("C")) == 1
        assert evaluate(both_included_target(), family)


class TestRefuters:
    def test_paper_wrong_query_for_direct_inclusion(self):
        """Section 5.1's strawman ``B ⊃ A`` picks non-direct pairs."""
        witness = refute_direct_inclusion(parse("B containing A"))
        assert witness is not None
        assert evaluate("B containing A", witness) != evaluate(
            direct_inclusion_target(), witness
        )

    def test_paper_wrong_query_for_both_included(self):
        """Section 5.2's strawman ``C ⊃ (B < A)`` leaks across siblings."""
        witness = refute_both_included(parse("C containing (B before A)"))
        assert witness is not None
        assert evaluate("C containing (B before A)", witness) != evaluate(
            both_included_target(), witness
        )

    def test_refuters_accept_the_true_operators(self):
        """Sanity: the native operators themselves survive both refuters."""
        assert refute_direct_inclusion(direct_inclusion_target()) is None
        assert refute_both_included(both_included_target()) is None

    def test_intersection_candidates_refuted(self):
        witness = refute_direct_inclusion(parse("B isect (B containing A)"))
        assert witness is not None

    def test_empty_candidate_refuted(self):
        witness = refute_direct_inclusion(parse("empty"))
        assert witness is not None
