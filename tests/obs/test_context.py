"""The ambient trace context: propagation, serialization, detail gate."""

import contextvars

import pytest

from repro.obs import context as trace_context
from repro.obs.context import TraceContext, new_trace_id


class TestTraceContext:
    def test_new_trace_ids_are_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)  # hex or ValueError

    def test_child_keeps_trace_id_and_sampling(self):
        ctx = TraceContext(trace_id="abc123", span_id=7, sampled=False)
        child = ctx.child(9)
        assert child.trace_id == "abc123"
        assert child.span_id == 9
        assert child.sampled is False

    def test_dict_round_trip(self):
        ctx = TraceContext(trace_id="deadbeef", span_id=3, sampled=False)
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_from_dict_defaults(self):
        ctx = TraceContext.from_dict({"trace_id": "x"})
        assert ctx.span_id is None
        assert ctx.sampled is True


class TestActivation:
    def test_activate_restore(self):
        assert trace_context.current() is None
        ctx = TraceContext(trace_id="t1")
        token = trace_context.activate(ctx)
        try:
            assert trace_context.current() is ctx
            assert trace_context.current_trace_id() == "t1"
        finally:
            trace_context.restore(token)
        assert trace_context.current() is None
        assert trace_context.current_trace_id() is None

    def test_active_context_manager(self):
        with trace_context.active(TraceContext(trace_id="t2")):
            assert trace_context.current_trace_id() == "t2"
        assert trace_context.current() is None

    def test_copy_context_carries_activation(self):
        # What WorkerPool.submit does: snapshot here, run elsewhere.
        with trace_context.active(TraceContext(trace_id="t3")):
            snapshot = contextvars.copy_context()
        assert trace_context.current() is None
        assert snapshot.run(trace_context.current_trace_id) == "t3"


class TestDetailGate:
    def test_enabled_outside_any_request(self):
        assert trace_context.detail_enabled() is True

    @pytest.mark.parametrize("sampled", [True, False])
    def test_follows_sampling_decision(self, sampled):
        with trace_context.active(
            TraceContext(trace_id="t", sampled=sampled)
        ):
            assert trace_context.detail_enabled() is sampled
