"""Counters, gauges, histograms, and the registry."""

import json
import math

import pytest

from repro.obs.metrics import (
    CARDINALITY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value() == 0.0

    def test_inc(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5

    def test_labels_are_independent(self):
        counter = Counter("c")
        counter.inc(op="Union")
        counter.inc(3, op="Select")
        assert counter.value(op="Union") == 1.0
        assert counter.value(op="Select") == 3.0
        assert counter.value() == 0.0
        assert counter.total() == 4.0

    def test_label_order_irrelevant(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(2, op="Union")
        assert counter.snapshot() == {"op=Union": 2.0}


class TestGauge:
    def test_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value() == 3.0

    def test_labels(self):
        gauge = Gauge("g")
        gauge.set(1, shard="a")
        gauge.set(2, shard="b")
        assert gauge.snapshot() == {"shard=a": 1.0, "shard=b": 2.0}


class TestHistogramBuckets:
    def test_value_on_edge_lands_in_that_bucket(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(1.0)  # exactly on the first bound
        snap = hist.snapshot()[""]
        assert snap["buckets"]["1.0"] == 1
        assert snap["buckets"]["10.0"] == 0

    def test_value_above_all_bounds_is_inf(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(11.0)
        assert hist.snapshot()[""]["buckets"]["+inf"] == 1

    def test_value_between_bounds(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(5.0)
        snap = hist.snapshot()[""]
        assert snap["buckets"] == {"1.0": 0, "10.0": 1, "+inf": 0}

    def test_sum_and_count(self):
        hist = Histogram("h", buckets=(1.0,))
        for v in (0.5, 2.0, 3.0):
            hist.observe(v)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(5.5)
        assert hist.mean() == pytest.approx(5.5 / 3)

    def test_mean_of_empty_is_nan(self):
        assert math.isnan(Histogram("h").mean())

    def test_labeled_series_are_independent(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(0.5, op="Union")
        hist.observe(2.0, op="Select")
        assert hist.count(op="Union") == 1
        assert hist.count(op="Select") == 1
        assert hist.count() == 0
        assert hist.total_count() == 2
        assert hist.total_sum() == pytest.approx(2.5)

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=())

    def test_cardinality_buckets_cover_zero(self):
        hist = Histogram("h", buckets=CARDINALITY_BUCKETS)
        hist.observe(0)
        assert hist.snapshot()[""]["buckets"]["0.0"] == 1


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="different kind"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="different kind"):
            registry.histogram("x")

    def test_bucket_drift_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="different buckets"):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_snapshot_is_json_ready(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(op="Union")
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        json.dumps(snap)  # must not raise
        assert snap["counters"]["c"] == {"op=Union": 1.0}
        assert snap["histograms"]["h"][""]["count"] == 1

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.reset()
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_global_registry_is_a_singleton(self):
        assert global_registry() is global_registry()


class TestLabelEscaping:
    def test_plain_labels_unchanged(self):
        from repro.obs.metrics import parse_label_text

        counter = Counter("c")
        counter.inc(endpoint="query", status="200")
        text = next(iter(counter.snapshot()))
        assert text == "endpoint=query,status=200"
        assert parse_label_text(text) == [
            ("endpoint", "query"),
            ("status", "200"),
        ]

    @pytest.mark.parametrize(
        "value",
        [
            "a,b",
            "k=v",
            "back\\slash",
            "two\nlines",
            "all,of=it\\together\n",
        ],
    )
    def test_awkward_values_round_trip(self, value):
        from repro.obs.metrics import parse_label_text

        counter = Counter("c")
        counter.inc(q=value)
        text = next(iter(counter.snapshot()))
        assert parse_label_text(text) == [("q", value)]

    def test_distinct_values_stay_distinct(self):
        # Without escaping, {"a": "x,b=y"} and {"a": "x", "b": "y"}
        # would collide into one series.
        counter = Counter("c")
        counter.inc(a="x,b=y")
        counter.inc(a="x", b="y")
        assert len(counter.snapshot()) == 2


class TestExemplars:
    def test_exemplar_lands_in_its_bucket(self):
        histogram = Histogram("h", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5, exemplar="abc123")
        snap = histogram.snapshot()[""]
        assert "0.1" not in snap.get("exemplars", {})
        exemplar = snap["exemplars"]["1.0"]
        assert exemplar["trace_id"] == "abc123"
        assert exemplar["value"] == 0.5
        assert exemplar["timestamp"] > 0

    def test_latest_exemplar_wins(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.2, exemplar="old")
        histogram.observe(0.3, exemplar="new")
        assert histogram.snapshot()[""]["exemplars"]["1.0"]["trace_id"] == "new"

    def test_no_exemplars_key_when_none_given(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(0.2)
        assert "exemplars" not in histogram.snapshot()[""]


class TestConcurrentSnapshots:
    def test_histogram_snapshot_never_tears(self):
        import threading

        histogram = Histogram("h", buckets=(0.5,))
        stop = threading.Event()

        def writer():
            while not stop.is_set():
                histogram.observe(0.1)
                histogram.observe(0.9)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(300):
                snap = histogram.snapshot().get("")
                if snap is None:
                    continue
                # A torn read would show bucket counts that do not sum
                # to the series count.
                assert sum(snap["buckets"].values()) == snap["count"]
        finally:
            stop.set()
            for thread in threads:
                thread.join()

    def test_counter_snapshot_consistent_under_writers(self):
        import threading

        counter = Counter("c")
        rounds = 200

        def writer(tag):
            for _ in range(rounds):
                counter.inc(worker=tag)

        threads = [
            threading.Thread(target=writer, args=(str(i),)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        while any(thread.is_alive() for thread in threads):
            snapshot = counter.snapshot()
            assert all(value <= rounds for value in snapshot.values())
        for thread in threads:
            thread.join()
        assert sum(counter.snapshot().values()) == 4 * rounds
