"""The instrumented hot paths: evaluator, optimizer, engine telemetry."""

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.algebra.profile import profile
from repro.engine.session import Engine
from repro.obs import Telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.optimize.optimizer import optimize
from repro.rig.graph import figure_1_rig

SOURCE = """program Main {
    var x;
    proc Alpha {
        var y;
        proc Beta { var x; }
    }
}
"""

# A query with a repeated sub-expression: one memo hit when memoizing.
SHARED = "(Var within Proc) union (Var within Proc)"


@pytest.fixture
def engine():
    return Engine.from_source(SOURCE)


class TestEvaluatorObserved:
    def test_plain_evaluator_records_nothing(self, engine):
        evaluator = Evaluator("indexed")
        evaluator.evaluate(SHARED, engine.instance)
        assert evaluator.last_stats is None

    def test_observed_matches_plain_result(self, engine):
        tracer = Tracer()
        observed = Evaluator("indexed", tracer=tracer)
        plain = Evaluator("indexed")
        expr = parse(SHARED)
        assert observed.evaluate(expr, engine.instance) == plain.evaluate(
            expr, engine.instance
        )

    def test_memo_hits_counted(self, engine):
        metrics = MetricsRegistry()
        evaluator = Evaluator("indexed", metrics=metrics)
        evaluator.evaluate(SHARED, engine.instance)
        assert evaluator.last_stats.memo_hits == 1
        # Union, IncludedIn, Var, Proc evaluated; second IncludedIn cached.
        assert evaluator.last_stats.nodes_evaluated == 5
        assert metrics.counter("memo_hits_total").total() == 1
        assert metrics.counter("eval_nodes_total").total() == 5

    def test_no_memo_hits_without_memoization(self, engine):
        metrics = MetricsRegistry()
        evaluator = Evaluator("indexed", memoize=False, metrics=metrics)
        evaluator.evaluate(SHARED, engine.instance)
        assert evaluator.last_stats.memo_hits == 0
        assert evaluator.last_stats.nodes_evaluated == 7

    def test_node_histogram_labeled_by_op(self, engine):
        metrics = MetricsRegistry()
        evaluator = Evaluator("indexed", metrics=metrics)
        evaluator.evaluate(SHARED, engine.instance)
        hist = metrics.histogram("eval_node_seconds")
        assert hist.count(op="Union") == 1
        assert hist.count(op="IncludedIn") == 1  # second one was cached
        assert hist.count(op="NameRef") == 2

    def test_span_tree_mirrors_expression(self, engine):
        tracer = Tracer()
        Evaluator("indexed", tracer=tracer).evaluate(SHARED, engine.instance)
        root = tracer.last_root
        assert root.name == "eval.Union"
        kids = [c.name for c in root.children]
        assert kids == ["eval.IncludedIn", "eval.IncludedIn"]
        assert root.children[1].attributes["cached"] is True
        assert root.children[1].children == []  # cached: subtree not re-run

    def test_span_times_sum_consistently(self, engine):
        tracer = Tracer()
        Evaluator("indexed", tracer=tracer).evaluate(SHARED, engine.instance)
        for span in tracer.last_root.walk():
            assert sum(c.duration for c in span.children) <= span.duration

    def test_stats_reset_per_evaluate(self, engine):
        evaluator = Evaluator("indexed", metrics=MetricsRegistry())
        evaluator.evaluate(SHARED, engine.instance)
        evaluator.evaluate("Var", engine.instance)
        assert evaluator.last_stats.memo_hits == 0
        assert evaluator.last_stats.nodes_evaluated == 1


class TestOptimizerObserved:
    QUERY = "Name within Proc_header within Proc within Program"

    def test_rule_spans_emitted(self):
        tracer = Tracer()
        optimize(parse(self.QUERY), rig=figure_1_rig(), tracer=tracer)
        root = tracer.last_root
        assert root.name == "optimize"
        names = [c.name for c in root.children]
        assert names == ["rule.identities", "rule.chains", "rule.prune"]
        assert root.attributes["rewrites"] == 1

    def test_rule_fires_counted(self):
        metrics = MetricsRegistry()
        result = optimize(parse(self.QUERY), rig=figure_1_rig(), metrics=metrics)
        assert "RIG chain simplification" in result.steps
        fires = metrics.counter("optimizer_rule_fires_total")
        assert fires.value(rule="RIG chain simplification") == 1
        assert metrics.histogram("optimize_seconds").total_count() == 1

    def test_uninstrumented_call_unchanged(self):
        plain = optimize(parse(self.QUERY), rig=figure_1_rig())
        traced = optimize(
            parse(self.QUERY),
            rig=figure_1_rig(),
            tracer=Tracer(),
            metrics=MetricsRegistry(),
        )
        assert plain.expression == traced.expression
        assert plain.steps == traced.steps


class TestEngineTelemetry:
    def test_query_counts(self, engine):
        engine.query("Var within Proc")
        engine.explain("Var within Proc")
        snapshot = engine.telemetry()
        counters = snapshot["metrics"]["counters"]
        assert counters["queries_total"] == {"kind=query": 1.0, "kind=explain": 1.0}

    def test_memo_hits_surface_in_telemetry(self, engine):
        engine.query(SHARED)
        snapshot = engine.telemetry()
        assert snapshot["metrics"]["counters"]["memo_hits_total"][""] == 1.0
        assert snapshot["query_log"]["memo_hits"] == 1

    def test_optimized_query_records_cardinality_error(self, engine):
        engine.query(
            "Name within Proc_header within Proc within Program",
            optimize_query=True,
        )
        record = engine.query_log.last()
        assert record.optimized
        assert record.steps == ("RIG chain simplification",)
        assert record.estimated_cardinality is not None
        assert record.cardinality_error is not None
        assert engine.telemetry()["query_log"]["mean_cardinality_error"] is not None

    def test_executed_plan_matches_explained_plan(self, engine):
        query = "Name within Proc_header within Proc within Program"
        explained = engine.explain(query)
        engine.query(query, optimize_query=True)
        executed = engine.query_log.last()
        from repro.algebra.printer import to_text

        assert executed.plan == to_text(explained.optimized)
        assert executed.steps == explained.steps

    def test_plan_api_agrees_with_explain(self, engine):
        query = "Name within Proc_header within Proc"
        assert engine.plan(query) == engine.explain(query)

    def test_index_build_timed(self, engine):
        hist = engine.telemetry()["metrics"]["histograms"]["index_build_seconds"]
        assert hist["kind=source"]["count"] == 1

    def test_tracing_off_by_default(self, engine):
        engine.query("Var")
        assert engine.telemetry()["tracing_enabled"] is False
        assert engine.tracer.roots == ()

    def test_tracing_produces_query_span(self, engine):
        engine.enable_tracing()
        engine.query("Var within Proc", optimize_query=True)
        root = engine.tracer.last_root
        assert root.name == "query"
        names = [c.name for c in root.children]
        assert names[0] == "parse"
        assert "optimize" in names
        assert any(n.startswith("eval.") for n in names)
        for span in root.walk():
            assert sum(c.duration for c in span.children) <= span.duration

    def test_query_log_ring_eviction_through_engine(self):
        engine = Engine.from_source(SOURCE)
        small = Engine(
            engine.instance, telemetry=Telemetry(query_log_capacity=2)
        )
        for _ in range(3):
            small.query("Var")
        assert len(small.query_log) == 2
        assert small.query_log.evicted == 1

    def test_snapshot_is_json_ready(self, engine):
        import json

        engine.query(SHARED, optimize_query=True)
        json.dumps(engine.telemetry())  # must not raise


class TestProfileRebase:
    def test_profile_reports_cache_hits(self, engine):
        report = profile(SHARED, engine.instance)
        assert report.cache_hits == 1
        cached = [n for n in report.nodes if n.cache_hit]
        assert len(cached) == 1
        assert cached[0].text == "Var within Proc"

    def test_profile_memoizes_by_default(self, engine):
        report = profile(SHARED, engine.instance)
        # Cached node's subtree is not re-evaluated: 5 rows, not 7.
        assert len(report.nodes) == 5

    def test_profile_without_memoization_matches_seed_shape(self, engine):
        report = profile(SHARED, engine.instance, memoize=False)
        assert len(report.nodes) == 7
        assert report.cache_hits == 0
