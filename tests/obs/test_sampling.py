"""Head sampling and the two-ring tail-keep trace store."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.sampling import (
    KEEP_ERROR,
    KEEP_FAULT,
    KEEP_SAMPLED,
    KEEP_SLOW,
    HeadSampler,
    TraceStore,
)
from repro.obs.trace import Span


def finished_span(name="request", seconds=0.01, fault_children=0, **attrs):
    span = Span(name, **attrs)
    for i in range(fault_children):
        child = Span("shard.task", parent_id=span.span_id, fault=True)
        child._end = child._start
        span.children.append(child)
    span._end = span._start + seconds
    return span


class TestHeadSampler:
    def test_rate_bounds(self):
        assert HeadSampler(0.0).sample("ffffffff00000000") is False
        assert HeadSampler(1.0).sample("anything") is True
        with pytest.raises(ValueError):
            HeadSampler(1.5)

    def test_deterministic_per_trace_id(self):
        sampler = HeadSampler(0.5)
        trace_id = "80000000deadbeef"
        assert all(
            sampler.sample(trace_id) == sampler.sample(trace_id)
            for _ in range(10)
        )

    def test_draw_uses_leading_hex(self):
        # 0x00000000 / 2^32 = 0 < 0.5; 0xffffffff / 2^32 ~ 1 >= 0.5.
        sampler = HeadSampler(0.5)
        assert sampler.sample("00000000aaaaaaaa") is True
        assert sampler.sample("ffffffffaaaaaaaa") is False

    def test_rate_is_roughly_honored(self):
        import random

        rng = random.Random(7)
        sampler = HeadSampler(0.25)
        hits = sum(
            sampler.sample(f"{rng.getrandbits(64):016x}") for _ in range(2000)
        )
        assert 0.18 < hits / 2000 < 0.32


class TestKeepReasons:
    def test_unsampled_fast_clean_trace_is_dropped(self):
        store = TraceStore(slow_threshold=1.0)
        reasons = store.offer("t1", finished_span(), sampled=False)
        assert reasons == ()
        assert store.get("t1") is None
        assert store.stats()["dropped"] == 1

    def test_sampled_trace_is_kept(self):
        store = TraceStore(slow_threshold=1.0)
        assert store.offer("t1", finished_span(), sampled=True) == (
            KEEP_SAMPLED,
        )
        assert store.get("t1") is not None

    def test_error_and_slow_and_fault_reasons(self):
        store = TraceStore(slow_threshold=0.5)
        span = finished_span(seconds=0.9, fault_children=2)
        reasons = store.offer(
            "t1", span, sampled=True, status="500", error=True
        )
        assert reasons == (KEEP_ERROR, KEEP_SLOW, KEEP_FAULT, KEEP_SAMPLED)
        kept = store.get("t1")
        assert kept.fault_spans == 2
        assert kept.status == "500"

    def test_cause_kept_traces_survive_sampled_churn(self):
        store = TraceStore(capacity=4, tail_capacity=4, slow_threshold=1.0)
        store.offer("bad", finished_span(), sampled=False, error=True)
        for i in range(50):
            store.offer(f"ok{i}", finished_span(), sampled=True)
        assert store.get("bad") is not None  # tail ring untouched
        assert store.stats()["sampled_ring"] == 4
        assert store.stats()["evicted"] == 46

    def test_tail_ring_evicts_oldest_cause_kept(self):
        store = TraceStore(tail_capacity=2, slow_threshold=1.0)
        for i in range(3):
            store.offer(f"e{i}", finished_span(), sampled=False, error=True)
        assert store.get("e0") is None
        assert store.get("e1") is not None
        assert store.get("e2") is not None


class TestListing:
    def test_slowest_orders_by_duration(self):
        store = TraceStore(slow_threshold=10.0)
        for i, seconds in enumerate([0.03, 0.01, 0.02]):
            store.offer(f"t{i}", finished_span(seconds=seconds), sampled=True)
        assert [t.trace_id for t in store.slowest(2)] == ["t0", "t2"]
        rows = store.summaries(limit=2, sort="slowest")
        assert [row["trace_id"] for row in rows] == ["t0", "t2"]

    def test_fault_marked_listing(self):
        store = TraceStore(slow_threshold=10.0)
        store.offer("clean", finished_span(), sampled=True)
        store.offer(
            "faulty", finished_span(fault_children=1), sampled=False
        )
        assert [t.trace_id for t in store.fault_marked()] == ["faulty"]

    def test_summary_counts_spans(self):
        store = TraceStore(slow_threshold=10.0)
        store.offer(
            "t", finished_span(fault_children=3), sampled=True
        )
        summary = store.get("t").to_summary()
        assert summary["spans"] == 4
        full = store.get("t").to_dict()
        assert full["root"]["name"] == "request"
        assert len(full["root"]["children"]) == 3


class TestMetrics:
    def test_kept_and_dropped_counters(self):
        registry = MetricsRegistry()
        store = TraceStore(slow_threshold=1.0, metrics=registry)
        store.offer("a", finished_span(), sampled=True)
        store.offer("b", finished_span(), sampled=False, error=True)
        store.offer("c", finished_span(), sampled=False)
        kept = registry.counter("traces_kept_total")
        assert kept.value(reason=KEEP_SAMPLED) == 1
        assert kept.value(reason=KEEP_ERROR) == 1
        assert registry.counter("traces_dropped_total").value() == 1
