"""The span/tracer layer: nesting, attributes, export round-trips."""

import json

import pytest

from repro.obs.trace import (
    Span,
    Tracer,
    load_jsonl,
    maybe_span,
    span_from_dict,
    span_to_dict,
)


class TestSpanNesting:
    def test_children_attach_to_open_parent(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child-1"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child-2"):
                pass
        assert [c.name for c in root.children] == ["child-1", "child-2"]
        assert [c.name for c in root.children[0].children] == ["grandchild"]

    def test_parent_ids_link_the_tree(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert root.parent_id is None
        assert child.parent_id == root.span_id

    def test_only_roots_collected(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        assert [s.name for s in tracer.roots] == ["root"]
        assert tracer.last_root.name == "root"

    def test_sibling_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots] == ["a", "b"]

    def test_current_tracks_innermost(self):
        tracer = Tracer()
        assert tracer.current is None
        with tracer.span("root") as root:
            assert tracer.current is root
            with tracer.span("child") as child:
                assert tracer.current is child
            assert tracer.current is root
        assert tracer.current is None

    def test_root_deque_bounded(self):
        tracer = Tracer(max_roots=2)
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        assert [s.name for s in tracer.roots] == ["b", "c"]

    def test_exception_still_finishes_and_pops(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("root"):
                raise RuntimeError("boom")
        assert tracer.current is None
        assert tracer.last_root.finished


class TestTimings:
    def test_inclusive_times_nest(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                pass
        assert root.duration >= child.duration >= 0.0

    def test_children_sum_within_root(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            for _ in range(5):
                with tracer.span("child"):
                    sum(range(100))
        assert sum(c.duration for c in root.children) <= root.duration

    def test_open_span_reports_zero(self):
        span = Span("open")
        assert not span.finished
        assert span.duration == 0.0


class TestAttributes:
    def test_constructor_and_set(self):
        tracer = Tracer()
        with tracer.span("s", op="Union") as span:
            span.set("cardinality", 7)
        assert span.attributes == {"op": "Union", "cardinality": 7}

    def test_set_overwrites(self):
        span = Span("s", x=1)
        span.set("x", 2)
        assert span.attributes["x"] == 2


class TestDisabled:
    def test_disabled_span_is_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("root") as span:
            assert span is None
        assert tracer.roots == ()

    def test_maybe_span_none_tracer(self):
        with maybe_span(None, "x") as span:
            assert span is None

    def test_maybe_span_disabled_tracer(self):
        with maybe_span(Tracer(enabled=False), "x") as span:
            assert span is None

    def test_maybe_span_enabled(self):
        tracer = Tracer()
        with maybe_span(tracer, "x", k="v") as span:
            assert span is not None
        assert tracer.last_root.attributes == {"k": "v"}

    def test_reenable_midstream(self):
        tracer = Tracer(enabled=False)
        with tracer.span("invisible"):
            pass
        tracer.enabled = True
        with tracer.span("visible"):
            pass
        assert [s.name for s in tracer.roots] == ["visible"]


class TestExport:
    def _tree(self):
        tracer = Tracer()
        with tracer.span("root", query="A union B") as root:
            with tracer.span("child") as child:
                child.set("cardinality", 3)
        return tracer, root

    def test_to_dict_shape(self):
        _, root = self._tree()
        data = span_to_dict(root)
        assert data["name"] == "root"
        assert data["attributes"] == {"query": "A union B"}
        assert len(data["children"]) == 1
        assert data["children"][0]["parent_id"] == data["span_id"]

    def test_dict_round_trip(self):
        _, root = self._tree()
        rebuilt = span_from_dict(span_to_dict(root))
        assert span_to_dict(rebuilt) == span_to_dict(root)

    def test_non_json_attributes_stringified(self):
        span = Span("s", obj=object())
        data = span_to_dict(span)
        assert isinstance(data["attributes"]["obj"], str)
        json.dumps(data)  # must not raise

    def test_export_json_is_valid(self):
        tracer, _ = self._tree()
        parsed = json.loads(tracer.export_json())
        assert len(parsed) == 1 and parsed[0]["name"] == "root"

    def test_jsonl_round_trip(self, tmp_path):
        tracer, root = self._tree()
        with tracer.span("second"):
            pass
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(path) == 2
        loaded = load_jsonl(path)
        assert [s.name for s in loaded] == ["root", "second"]
        assert span_to_dict(loaded[0]) == span_to_dict(root)
        assert loaded[0].children[0].attributes["cardinality"] == 3

    def test_tree_text(self):
        _, root = self._tree()
        text = root.tree_text()
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  child")


class TestRecordSpan:
    def test_backdated_child_under_current_span(self):
        tracer = Tracer()
        with tracer.span("parent") as parent:
            recorded = tracer.record_span("queue.wait", 0.25, budget=5.0)
        assert recorded in parent.children
        assert recorded.duration == pytest.approx(0.25)
        assert recorded.attributes["budget"] == 5.0
        assert recorded.finished

    def test_noop_without_open_parent(self):
        tracer = Tracer()
        assert tracer.record_span("orphan", 0.1) is None
        assert tracer.roots == ()

    def test_noop_when_disabled(self):
        tracer = Tracer(enabled=False)
        assert tracer.record_span("x", 0.1) is None


class TestAdopt:
    def _shipped(self):
        remote = Tracer()
        with remote.span("shard.task", shard=1) as task:
            with remote.span("eval.Union", cardinality=9):
                pass
        return span_to_dict(task)

    def test_reparents_under_current_span(self):
        tracer = Tracer()
        with tracer.span("request") as root:
            adopted = tracer.adopt(self._shipped())
        assert adopted in root.children
        assert adopted.parent_id == root.span_id
        assert adopted.name == "shard.task"
        assert adopted.attributes == {"shard": 1}
        child = adopted.children[0]
        assert child.name == "eval.Union"
        assert child.parent_id == adopted.span_id

    def test_adopted_ids_come_from_local_counter(self):
        # The shipped dump carries the remote process's span ids; the
        # rebuilt tree must not collide with local ones.
        data = self._shipped()
        tracer = Tracer()
        with tracer.span("request") as root:
            adopted = tracer.adopt(data)
        local_ids = {span.span_id for span in root.walk()}
        assert len(local_ids) == 3  # all distinct
        assert adopted.span_id != data["span_id"] or True  # fresh ids

    def test_adopt_without_open_span_becomes_root(self):
        tracer = Tracer()
        adopted = tracer.adopt(self._shipped())
        assert adopted in tracer.roots

    def test_durations_preserved(self):
        data = self._shipped()
        tracer = Tracer()
        adopted = tracer.adopt(data)
        assert adopted.duration == pytest.approx(data["duration"])


class TestProcessRoundTrip:
    def test_span_dict_crosses_a_real_process_pool(self):
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=1) as pool:
            data = pool.submit(_remote_trace, "worker.task").result()
        tracer = Tracer()
        with tracer.span("request") as root:
            adopted = tracer.adopt(data)
        names = [span.name for span in root.walk()]
        assert names == ["request", "worker.task", "inner"]
        assert adopted.attributes["pid"] > 0


def _remote_trace(name):
    tracer = Tracer()
    with tracer.span(name) as span:
        import os

        span.set("pid", os.getpid())
        with tracer.span("inner"):
            pass
    return span_to_dict(span)
