"""Objectives, burn-rate math, and the multi-window alert rule."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import BurnRateMonitor, SLObjective, SLOObservatory


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def monitor(
    objective=0.9,
    fast=10.0,
    slow=30.0,
    threshold=2.0,
    min_samples=4,
    on_change=None,
):
    clock = FakeClock()
    return (
        BurnRateMonitor(
            SLObjective(name="avail", sli="availability", objective=objective),
            fast_window=fast,
            slow_window=slow,
            burn_threshold=threshold,
            min_samples=min_samples,
            clock=clock,
            on_change=on_change,
        ),
        clock,
    )


class TestSLObjective:
    def test_budget_is_complement(self):
        obj = SLObjective(name="a", sli="availability", objective=0.99)
        assert obj.budget == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            SLObjective(name="a", sli="weird", objective=0.9)
        with pytest.raises(ValueError):
            SLObjective(name="a", sli="availability", objective=1.0)
        with pytest.raises(ValueError):
            SLObjective(name="a", sli="latency", objective=0.9)  # no threshold


class TestBurnMath:
    def test_burn_is_bad_rate_over_budget(self):
        mon, clock = monitor(objective=0.9)  # budget 0.1
        for bad in [True, False, False, False]:  # bad rate 0.25
            mon.record(bad)
        fast, slow = mon.burn_rates()
        assert fast == pytest.approx(2.5)
        assert slow == pytest.approx(2.5)

    def test_windows_decay(self):
        mon, clock = monitor(fast=10.0, slow=30.0)
        mon.record(True)
        clock.advance(15.0)  # out of the fast window, inside the slow
        mon.record(False)
        fast, slow = mon.burn_rates()
        assert fast == 0.0
        assert slow == pytest.approx(5.0)  # 1 bad / 2 events / 0.1 budget


class TestFastBurnRule:
    def test_needs_min_samples_in_both_windows(self):
        mon, clock = monitor(min_samples=4)
        for _ in range(3):
            mon.record(True)  # burn is huge, but samples are short
        assert mon.fast_burn_active is False
        mon.record(True)
        assert mon.fast_burn_active is True
        assert mon.activations == 1

    def test_needs_both_windows_over_threshold(self):
        # Errors old enough to leave the fast window keep the slow
        # window burning, but the rule stays quiet (blip suppression
        # in reverse: recovery is prompt once the fast window clears).
        mon, clock = monitor(fast=10.0, slow=100.0, min_samples=2)
        for _ in range(4):
            mon.record(True)
        assert mon.fast_burn_active is True
        clock.advance(20.0)
        for _ in range(8):
            mon.record(False)
        assert mon.fast_burn_active is False

    def test_poll_clears_without_new_events(self):
        fired = []
        mon, clock = monitor(min_samples=2, on_change=fired.append)
        for _ in range(4):
            mon.record(True)
        assert fired == [True]
        clock.advance(1000.0)  # both windows empty out
        mon.poll()
        assert fired == [True, False]
        assert mon.fast_burn_active is False
        assert mon.activations == 1  # survives deactivation

    def test_reactivation_counts(self):
        mon, clock = monitor(min_samples=2)
        for _ in range(4):
            mon.record(True)
        clock.advance(1000.0)
        mon.poll()
        for _ in range(4):
            mon.record(True)
        assert mon.activations == 2


class TestObservatory:
    def make(self, **kwargs):
        clock = FakeClock()
        observatory = SLOObservatory(
            (
                SLObjective(
                    name="availability", sli="availability", objective=0.9
                ),
                SLObjective(
                    name="latency",
                    sli="latency",
                    objective=0.9,
                    latency_threshold=0.5,
                ),
            ),
            fast_window=10.0,
            slow_window=30.0,
            burn_threshold=2.0,
            min_samples=2,
            clock=clock,
            **kwargs,
        )
        return observatory, clock

    def test_availability_counts_only_server_outcomes(self):
        observatory, _ = self.make()
        observatory.record("query", "200", 0.01)
        observatory.record("query", "500", 0.01)
        observatory.record("query", "429", 0.01)  # admission: not counted
        observatory.record("query", "503", 0.01)  # shed: not counted
        observatory.record("query", "404", 0.01)  # client error: not counted
        snap = observatory.snapshot()["availability"]
        assert snap["events"] == 2
        assert snap["bad_events"] == 1

    def test_latency_sli_only_sees_successes(self):
        observatory, _ = self.make()
        observatory.record("query", "200", 0.9)  # slow -> bad
        observatory.record("query", "200", 0.1)  # fast -> good
        observatory.record("query", "500", 9.9)  # failure: says nothing
        snap = observatory.snapshot()["latency"]
        assert snap["events"] == 2
        assert snap["bad_events"] == 1

    def test_burn_callback_names_the_objective(self):
        changes = []
        observatory, _ = self.make(
            on_burn_change=lambda name, active: changes.append((name, active))
        )
        for _ in range(4):
            observatory.record("query", "500", 0.01)
        assert changes == [("availability", True)]

    def test_snapshot_refreshes_gauges(self):
        registry = MetricsRegistry()
        clock = FakeClock()
        observatory = SLOObservatory(
            (
                SLObjective(
                    name="availability", sli="availability", objective=0.9
                ),
            ),
            burn_threshold=2.0,
            min_samples=2,
            metrics=registry,
            clock=clock,
        )
        for _ in range(4):
            observatory.record("query", "500", 0.01)
        observatory.snapshot()
        burn = registry.gauge("slo_burn_rate")
        assert burn.value(slo="availability", window="fast") == pytest.approx(
            10.0
        )
        active = registry.gauge("slo_fast_burn_active")
        assert active.value(slo="availability") == 1.0
        assert registry.counter("slo_events_total").value(
            slo="availability"
        ) == 4

    def test_from_config_builds_both_objectives(self):
        from repro.server.config import ServerConfig

        observatory = SLOObservatory.from_config(
            ServerConfig(
                slo_availability_objective=0.999,
                slo_latency_threshold=0.2,
            )
        )
        assert set(observatory.monitors) == {"availability", "latency"}
        avail = observatory.monitors["availability"].objective
        assert avail.budget == pytest.approx(0.001)
        latency = observatory.monitors["latency"].objective
        assert latency.latency_threshold == 0.2
