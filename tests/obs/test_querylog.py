"""The ring-buffer query log: eviction, summaries, JSONL round-trip."""

import pytest

from repro.obs.querylog import QueryLog, QueryRecord


def make_record(i: int, **overrides) -> QueryRecord:
    defaults = dict(
        kind="query",
        query=f"Q{i}",
        plan=f"P{i}",
        optimized=True,
        seconds=0.001 * (i + 1),
        cardinality=i,
        memo_hits=i % 2,
        nodes_evaluated=3,
        estimated_cost=10.0,
        estimated_cardinality=float(i + 1),
        cardinality_error=1.0 / (i + 1),
        steps=("algebraic identities",),
        timestamp=1_700_000_000.0 + i,
    )
    defaults.update(overrides)
    return QueryRecord(**defaults)


class TestRingBuffer:
    def test_append_and_order(self):
        log = QueryLog(capacity=4)
        for i in range(3):
            log.append(make_record(i))
        assert [r.query for r in log.records()] == ["Q0", "Q1", "Q2"]
        assert log.last().query == "Q2"
        assert len(log) == 3

    def test_eviction_drops_oldest(self):
        log = QueryLog(capacity=3)
        for i in range(5):
            log.append(make_record(i))
        assert [r.query for r in log.records()] == ["Q2", "Q3", "Q4"]
        assert len(log) == 3
        assert log.total_appended == 5
        assert log.evicted == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            QueryLog(capacity=0)

    def test_clear_keeps_append_count(self):
        log = QueryLog(capacity=2)
        log.append(make_record(0))
        log.clear()
        assert len(log) == 0
        assert log.total_appended == 1

    def test_empty_log(self):
        log = QueryLog()
        assert log.last() is None
        assert log.records() == ()


class TestSummary:
    def test_summary_aggregates(self):
        log = QueryLog(capacity=10)
        log.append(make_record(0, memo_hits=2, cardinality_error=0.5))
        log.append(make_record(1, memo_hits=1, cardinality_error=1.5))
        log.append(
            make_record(
                2,
                kind="explain",
                cardinality=None,
                cardinality_error=None,
                memo_hits=0,
            )
        )
        summary = log.summary()
        assert summary["retained"] == 3
        assert summary["queries"] == 2
        assert summary["memo_hits"] == 3
        assert summary["mean_cardinality_error"] == pytest.approx(1.0)

    def test_summary_without_errors(self):
        log = QueryLog()
        log.append(make_record(0, cardinality_error=None))
        assert log.summary()["mean_cardinality_error"] is None


class TestSerialization:
    def test_record_dict_round_trip(self):
        record = make_record(3)
        rebuilt = QueryRecord.from_dict(record.to_dict())
        assert rebuilt == record
        assert isinstance(rebuilt.steps, tuple)

    def test_from_dict_ignores_unknown_keys(self):
        data = make_record(0).to_dict()
        data["surprise"] = "extra"
        assert QueryRecord.from_dict(data) == make_record(0)

    def test_jsonl_round_trip(self, tmp_path):
        log = QueryLog(capacity=8)
        for i in range(4):
            log.append(make_record(i))
        path = tmp_path / "log.jsonl"
        assert log.to_jsonl(path) == 4
        loaded = QueryLog.from_jsonl(path)
        assert loaded.records() == log.records()

    def test_jsonl_round_trip_empty(self, tmp_path):
        path = tmp_path / "log.jsonl"
        QueryLog().to_jsonl(path)
        assert QueryLog.from_jsonl(path).records() == ()
