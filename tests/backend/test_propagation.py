"""Deadline and trace propagation across the HTTP backend hop.

A real ``QueryHTTPServer`` plays the backend; an
:class:`~repro.backend.httpclient.HTTPBackend` calls its
``POST /shard/query``.  The deadline must expire *remotely* (the
backend's cooperative evaluator abort, surfaced as 504 → QueryTimeout),
and the backend's span subtree must come back for adoption."""

import http.client
import json
from time import monotonic

import pytest

from repro.backend.httpclient import HTTPBackend
from repro.errors import BackendError, QueryTimeout
from repro.server import CorpusSpec, QueryService, ServerConfig
from repro.server.http import create_server

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=2)

QUERY = 'scene containing (line @ "love")'


@pytest.fixture(scope="module")
def served():
    service = QueryService(
        ServerConfig(
            workers=2,
            queue_depth=8,
            cache_enabled=False,
            corpora=(PLAY,),
            tracing=True,
            trace_sample_rate=1.0,
        )
    )
    server = create_server(service, port=0)
    server.serve_in_background()
    backend = HTTPBackend("bx", "127.0.0.1", server.bound_port)
    yield service, server, backend
    backend.close()
    server.stop()
    service.close()


class TestDeadlinePropagation:
    def test_generous_deadline_succeeds(self, served):
        service, _, backend = served
        engine = service._handle("play").engine
        expected = [[r.left, r.right] for r in engine.query(QUERY)]
        result = backend.shard_query(
            "play", 0, 1, [QUERY], "sets", {}, deadline=10.0
        )
        assert result.payload[0] == expected
        assert result.generation == 1

    def test_expired_deadline_times_out_remotely(self, served):
        _, _, backend = served
        started = monotonic()
        with pytest.raises(QueryTimeout):
            backend.shard_query(
                "play", 0, 1, [QUERY], "sets", {}, deadline=0.0000001
            )
        # The remote abort answers promptly — nothing waits out the
        # socket timeout.
        assert monotonic() - started < 2.0

    def test_malformed_deadline_header_is_ignored(self, served):
        _, server, _ = served
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.bound_port, timeout=10.0
        )
        try:
            connection.request(
                "POST",
                "/shard/query",
                body=json.dumps(
                    {
                        "corpus": "play",
                        "group": 0,
                        "groups": 1,
                        "queries": [QUERY],
                        "want": "sets",
                        "bounds": {},
                    }
                ),
                headers={
                    "Content-Type": "application/json",
                    "X-Repro-Deadline": "bogus",
                    "X-Repro-Trace": "{not json",
                },
            )
            response = connection.getresponse()
            body = json.loads(response.read())
        finally:
            connection.close()
        assert response.status == 200
        assert body["payload"]


class TestTracePropagation:
    def test_span_subtree_comes_back(self, served):
        _, _, backend = served
        trace = {"trace_id": "deadbeefdeadbeef", "span_id": 7, "sampled": True}
        result = backend.shard_query(
            "play", 0, 2, [QUERY], "sets", {}, trace=trace
        )
        span = result.span
        assert span is not None
        assert span["name"] == "backend.query"
        assert span["attributes"]["group"] == 0
        assert span["attributes"]["groups"] == 2
        assert span["duration"] >= 0.0

    def test_span_adoptable_by_a_frontier_tracer(self, served):
        from repro.obs.trace import span_from_dict

        _, _, backend = served
        trace = {"trace_id": "deadbeefdeadbeef", "span_id": 7, "sampled": True}
        result = backend.shard_query(
            "play", 0, 1, [QUERY], "sets", {}, trace=trace
        )
        rebuilt = span_from_dict(result.span)
        assert rebuilt.name == "backend.query"

    def test_no_trace_still_answers(self, served):
        service, _, backend = served
        engine = service._handle("play").engine
        expected = [[r.left, r.right] for r in engine.query(QUERY)]
        result = backend.shard_query("play", 0, 1, [QUERY], "sets", {})
        assert result.payload[0] == expected


class TestTransportErrors:
    def test_dead_port_raises_backend_error(self):
        backend = HTTPBackend("bx", "127.0.0.1", 1)  # nothing listens here
        with pytest.raises(BackendError):
            backend.shard_query("play", 0, 1, [QUERY], "sets", {})
