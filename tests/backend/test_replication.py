"""ReplicationCoordinator: shipping, catch-up, anti-entropy, and lag."""

from types import SimpleNamespace

from repro.backend.replication import ReplicationCoordinator
from repro.errors import BackendError
from repro.faults.registry import (
    FaultRegistry,
    FaultSpec,
    activate,
    deactivate,
)
from repro.ingest.wal import wal_checksum
from repro.obs.metrics import MetricsRegistry


class _FakeBackend:
    """A scriptable replica: records every call, answers per the knobs."""

    def __init__(self):
        self.applies: list[dict] = []
        self.snapshots: list[tuple[str, dict, int]] = []
        self.applied_generation = 0
        self.apply_status = "applied"
        self.checksums: dict[int, str] = {}
        self.down = False

    def replicate_apply(self, corpus, seq, ops, generation, checksum):
        if self.down:
            raise BackendError("connection refused")
        record = {
            "corpus": corpus,
            "seq": int(seq),
            "generation": int(generation),
            "ops": [dict(op) for op in ops],
        }
        if wal_checksum(record) != checksum:
            return {
                "status": "checksum_mismatch",
                "applied": self.applied_generation,
            }
        self.applies.append(record)
        if self.apply_status == "applied":
            self.applied_generation = int(generation)
        return {"status": self.apply_status, "applied": self.applied_generation}

    def replicate_snapshot(self, corpus, state, generation):
        if self.down:
            raise BackendError("connection refused")
        self.snapshots.append((corpus, dict(state), int(generation)))
        self.applied_generation = int(generation)
        return {"status": "applied", "applied": self.applied_generation}

    def replicate_status(self, corpus, groups):
        if self.down:
            raise BackendError("connection refused")
        return {
            "corpus": corpus,
            "applied": self.applied_generation,
            "checksums": {
                str(g): self.checksums.get(g, f"sum-{g}")
                for g in range(groups)
            },
        }


def _rig(nodes=2, groups=2, truth_generation=1, truth_sums=None):
    """A coordinator over fake nodes; returns (coordinator, backends)."""
    backends = [_FakeBackend() for _ in range(nodes)]
    ring_nodes = [
        SimpleNamespace(id=f"b{i}", backend=backend)
        for i, backend in enumerate(backends)
    ]
    frontier = SimpleNamespace(
        nodes=ring_nodes,
        groups=groups,
        replicas=nodes,
        replicas_for=lambda corpus, group: ring_nodes,
    )
    truth = {"generation": truth_generation}
    sums = truth_sums if truth_sums is not None else {
        g: f"sum-{g}" for g in range(groups)
    }
    coordinator = ReplicationCoordinator(
        frontier,
        corpora=lambda: ("play",),
        state_provider=lambda corpus: (
            {"through_batch": 0, "docs": []},
            truth["generation"],
        ),
        checksum_provider=lambda corpus: (truth["generation"], dict(sums)),
        metrics=MetricsRegistry(),
        generation_provider=lambda corpus: truth["generation"],
    )
    coordinator._truth = truth  # test handle to move the frontier forward
    return coordinator, backends


OPS = [{"op": "append", "id": "d1", "text": "<speech>x</speech>"}]


class TestShip:
    def test_ships_to_every_node_serving_the_corpus(self):
        coordinator, backends = _rig()
        coordinator._truth["generation"] = 2
        shipped = coordinator.ship("play", seq=1, ops=OPS, generation=2)
        assert shipped == {"nodes": 2, "applied": 2, "failed": 0}
        for backend in backends:
            assert backend.applies[0]["generation"] == 2
            assert backend.applies[0]["ops"] == OPS
        ledgers = coordinator.snapshot()["nodes"]
        assert ledgers["b0"]["applied"] == {"play": 2}
        assert ledgers["b1"]["applied"] == {"play": 2}

    def test_one_dead_node_never_fails_the_ship(self):
        coordinator, backends = _rig()
        backends[1].down = True
        shipped = coordinator.ship("play", seq=1, ops=OPS, generation=2)
        assert shipped == {"nodes": 2, "applied": 1, "failed": 1}
        ledger = coordinator.snapshot()["nodes"]["b1"]
        assert ledger["reachable"] is False
        assert "refused" in ledger["last_error"]

    def test_out_of_order_answer_counts_as_failed(self):
        coordinator, backends = _rig()
        backends[0].apply_status = "out_of_order"
        shipped = coordinator.ship("play", seq=3, ops=OPS, generation=4)
        assert shipped["failed"] == 1
        assert shipped["applied"] == 1

    def test_stale_answer_counts_as_applied(self):
        # A replica that already has the batch (e.g. a re-ship after a
        # partial failure) is fine, not a failure.
        coordinator, backends = _rig()
        backends[0].apply_status = "stale"
        shipped = coordinator.ship("play", seq=1, ops=OPS, generation=2)
        assert shipped == {"nodes": 2, "applied": 2, "failed": 0}

    def test_ship_fault_point_hits_one_copy_not_the_commit(self):
        coordinator, backends = _rig()
        registry = FaultRegistry(seed=3)
        registry.arm(
            FaultSpec("replication.ship", "error", probability=1.0, max_fires=1)
        )
        activate(registry)
        try:
            shipped = coordinator.ship("play", seq=1, ops=OPS, generation=2)
        finally:
            deactivate()
        # The first node's copy was dropped; the second applied.
        assert shipped == {"nodes": 2, "applied": 1, "failed": 1}
        assert len(backends[0].applies) + len(backends[1].applies) == 1

    def test_corrupted_wire_copy_is_rejected_by_checksum(self):
        coordinator, backends = _rig()
        registry = FaultRegistry(seed=3)
        registry.arm(
            FaultSpec(
                "replication.ship", "corrupt", probability=1.0, max_fires=1
            )
        )
        activate(registry)
        try:
            shipped = coordinator.ship("play", seq=1, ops=OPS, generation=2)
        finally:
            deactivate()
        assert shipped["failed"] == 1
        # Whatever survived parsing was checksum-rejected, never applied.
        applied = backends[0].applies + backends[1].applies
        assert all(record["ops"] == OPS for record in applied)


class TestCatchUp:
    def test_lagging_node_walks_forward_through_history(self):
        coordinator, backends = _rig()
        coordinator._truth["generation"] = 2
        coordinator.ship("play", seq=1, ops=OPS, generation=2)
        backends[1].down = True  # misses generations 3 and 4
        for generation in (3, 4):
            coordinator._truth["generation"] = generation
            coordinator.ship(
                "play", seq=generation - 1, ops=OPS, generation=generation
            )
        backends[1].down = False
        backends[1].checksums = {0: "sum-0", 1: "sum-1"}
        sweep = coordinator.sweep()
        assert sweep["corpora"]["play"]["b1"] == "caught_up"
        assert [r["generation"] for r in backends[1].applies] == [2, 3, 4]
        assert backends[1].snapshots == []

    def test_gap_older_than_history_gets_a_snapshot(self):
        coordinator, backends = _rig()
        coordinator._history_limit = 2  # tiny window
        backends[1].down = True
        for generation in (2, 3, 4, 5):
            coordinator._truth["generation"] = generation
            coordinator.ship(
                "play", seq=generation - 1, ops=OPS, generation=generation
            )
        backends[1].down = False
        sweep = coordinator.sweep()
        assert sweep["corpora"]["play"]["b1"] == "repaired"
        assert len(backends[1].snapshots) == 1
        assert backends[1].snapshots[0][2] == 5
        assert coordinator.snapshot()["nodes"]["b1"]["applied"] == {"play": 5}

    def test_blank_node_with_no_history_gets_a_snapshot(self):
        coordinator, backends = _rig(truth_generation=7)
        sweep = coordinator.sweep()
        assert sweep["corpora"]["play"]["b0"] == "repaired"
        assert len(backends[0].snapshots) == 1

    def test_replica_ahead_of_the_frontier_is_reset(self):
        # The frontier restarted and its generation counter rewound: a
        # replica remembering a higher number must be snapshot-reset,
        # never trusted.
        coordinator, backends = _rig(truth_generation=2)
        backends[0].applied_generation = 9
        backends[1].applied_generation = 2
        backends[1].checksums = {0: "sum-0", 1: "sum-1"}
        sweep = coordinator.sweep()
        assert sweep["corpora"]["play"]["b0"] == "repaired"
        assert backends[0].snapshots[0][2] == 2

    def test_unreachable_node_is_reported_not_repaired(self):
        coordinator, backends = _rig()
        backends[0].down = True
        sweep = coordinator.sweep()
        assert sweep["corpora"]["play"]["b0"] == "unreachable"


class TestAntiEntropy:
    def test_current_matching_replica_is_left_alone(self):
        coordinator, backends = _rig(truth_generation=1)
        for backend in backends:
            backend.applied_generation = 1
            backend.checksums = {0: "sum-0", 1: "sum-1"}
        sweep = coordinator.sweep()
        assert sweep["corpora"]["play"] == {"b0": "current", "b1": "current"}
        assert sweep["repaired"] == 0
        assert backends[0].snapshots == backends[1].snapshots == []

    def test_divergence_at_the_right_generation_is_repaired(self):
        coordinator, backends = _rig(truth_generation=1)
        for backend in backends:
            backend.applied_generation = 1
            backend.checksums = {0: "sum-0", 1: "sum-1"}
        backends[1].checksums[1] = "garbage"
        sweep = coordinator.sweep()
        assert sweep["corpora"]["play"]["b0"] == "current"
        assert sweep["corpora"]["play"]["b1"] == "repaired"
        assert len(backends[1].snapshots) == 1
        assert "divergence" not in (
            coordinator.snapshot()["nodes"]["b0"]["last_error"] or ""
        )


class TestLag:
    def test_lag_is_truth_minus_applied(self):
        coordinator, _ = _rig(truth_generation=5)
        coordinator._ledger("b0").applied["play"] = 3
        assert coordinator.lag("b0", "play") == 2
        assert coordinator.lag("b1", "play") == 5

    def test_history_beats_the_generation_provider(self):
        coordinator, _ = _rig(truth_generation=1)
        coordinator.ship("play", seq=1, ops=OPS, generation=4)
        assert coordinator.lag("unknown-node", "play") == 4

    def test_unknown_node_lags_by_the_full_truth(self):
        coordinator, _ = _rig(truth_generation=3)
        assert coordinator.lag("never-seen", "play") == 3


class TestLifecycle:
    def test_background_thread_sweeps_and_closes(self):
        import time

        coordinator, backends = _rig(truth_generation=2)
        coordinator.interval = 0.01
        coordinator.start()
        coordinator.start()  # idempotent
        try:
            deadline = time.monotonic() + 2.0
            while not backends[0].snapshots and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            coordinator.close()
        assert backends[0].snapshots  # the sweep repaired the blank node

    def test_snapshot_shape(self):
        coordinator, _ = _rig()
        coordinator.ship("play", seq=1, ops=OPS, generation=2)
        snapshot = coordinator.snapshot()
        assert snapshot["history"] == {"play": 1}
        assert set(snapshot["nodes"]) == {"b0", "b1"}
        assert snapshot["lag_limit"] == coordinator.lag_limit
