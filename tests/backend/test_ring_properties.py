"""Property-based HashRing stability.

Two properties the replication layer leans on:

* **Bounded relocation** — adding or removing one node may only move
  keys adjacent to that node's vnodes.  Primary ownership of a key
  either stays put or involves the changed node; across the whole key
  population the moved share stays near 1/N (we allow generous slack
  because md5 placement is uneven at small N).
* **Insertion-order independence** — placement is a pure function of
  the node-id *set*: frontier restarts enumerate nodes in whatever
  order config iteration yields, and replicas must not move because
  of it.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend.ring import HashRing

_node_sets = st.lists(
    st.sampled_from([f"b{i}" for i in range(12)]),
    min_size=2,
    max_size=8,
    unique=True,
)

_keys = [f"corpus-{c}|{g}" for c in range(40) for g in range(4)]


class TestRelocationBounds:
    @given(nodes=_node_sets, newcomer=st.integers(min_value=12, max_value=20))
    @settings(max_examples=60, deadline=None)
    def test_adding_one_node_relocates_at_most_its_share(
        self, nodes, newcomer
    ):
        before = HashRing(nodes)
        after = HashRing(nodes + [f"b{newcomer}"])
        moved = 0
        for key in _keys:
            old = before.nodes_for(key)[0]
            new = after.nodes_for(key)[0]
            if new != old:
                # A key may only move TO the newcomer; any other
                # reshuffle means placement is not consistent hashing.
                assert new == f"b{newcomer}"
                moved += 1
        # Expected share is |keys|/(N+1); allow 3x slack for the
        # unevenness of 64 vnodes at small N.
        assert moved <= 3 * len(_keys) / (len(nodes) + 1)

    @given(nodes=_node_sets)
    @settings(max_examples=60, deadline=None)
    def test_removing_one_node_strands_only_its_keys(self, nodes):
        full = HashRing(nodes)
        departed = nodes[0]
        survivors = nodes[1:]
        if not survivors:
            return
        reduced = HashRing(survivors)
        for key in _keys:
            old = full.nodes_for(key)[0]
            if old != departed:
                # Keys the departed node never owned must not move.
                assert reduced.nodes_for(key)[0] == old

    @given(nodes=_node_sets)
    @settings(max_examples=60, deadline=None)
    def test_replica_sets_shrink_gracefully(self, nodes):
        # Losing one node keeps every surviving member of a key's
        # replica set in place (order may compact, membership may not
        # drop a survivor).
        full = HashRing(nodes)
        reduced = HashRing(nodes[1:]) if len(nodes) > 2 else None
        if reduced is None:
            return
        for key in _keys[:40]:
            before = set(full.nodes_for(key, 2))
            after = set(reduced.nodes_for(key, 2))
            survivors = before - {nodes[0]}
            assert survivors <= after


class TestOrderIndependence:
    @given(nodes=_node_sets, seed=st.integers(min_value=0, max_value=999))
    @settings(max_examples=60, deadline=None)
    def test_placement_ignores_insertion_order(self, nodes, seed):
        import random

        shuffled = list(nodes)
        random.Random(seed).shuffle(shuffled)
        a = HashRing(nodes)
        b = HashRing(shuffled)
        for key in _keys[:60]:
            assert a.nodes_for(key, 2) == b.nodes_for(key, 2)

    @given(nodes=_node_sets)
    @settings(max_examples=30, deadline=None)
    def test_vnode_count_does_not_change_determinism(self, nodes):
        a = HashRing(nodes, vnodes=32)
        b = HashRing(nodes, vnodes=32)
        for key in _keys[:40]:
            assert a.nodes_for(key, 2) == b.nodes_for(key, 2)
