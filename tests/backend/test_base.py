"""Slice building and evaluation: the backend side of the text protocol.

Every test checks the same invariant the frontier relies on: the union
of per-group slice evaluations equals single-process evaluation, for
any group count — including more groups than the corpus has top-level
trees (surplus groups own nothing and answer with empty sets).
"""

import random

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.backend.base import SliceProvider, evaluate_slice
from repro.engine.corpus import Corpus
from repro.errors import BackendUnsupportedError
from repro.shard.merge import merge_region_sets, summarize_result
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.workloads.corpora import generate_play

ORDER_FREE_QUERIES = [
    'speech containing (speaker @ "ROMEO")',
    'scene containing (line @ "love")',
    'line @ "night" within act',
    "speech dwithin scene",
    "(act containing scene) + (speech within scene)",
]


@pytest.fixture(scope="module")
def instance():
    rng = random.Random(42)
    corpus = Corpus()
    for _ in range(4):
        corpus.add(
            generate_play(
                rng,
                acts=2,
                scenes_per_act=2,
                speeches_per_scene=3,
                lines_per_speech=2,
            )
        )
    return corpus.engine().instance


@pytest.fixture
def provider(instance):
    return SliceProvider(lambda name: (instance, 1))


def _union_of_slices(provider, query, groups):
    payloads = []
    for group in range(groups):
        slice_ = provider.slice_for("play", group, groups)
        payload, seconds = evaluate_slice(slice_, [query], "sets", {})
        assert seconds >= 0.0
        payloads.append(
            RegionSet(Region(int(l), int(r)) for l, r in payload[0])
        )
    return merge_region_sets(payloads)


class TestSliceEvaluation:
    @pytest.mark.parametrize("groups", [1, 2, 3])
    @pytest.mark.parametrize("query", ORDER_FREE_QUERIES)
    def test_union_of_slices_equals_single_process(
        self, provider, instance, query, groups
    ):
        expected = Evaluator("indexed").evaluate(parse(query), instance)
        assert list(_union_of_slices(provider, query, groups)) == list(expected)

    def test_surplus_groups_answer_empty(self, provider, instance):
        # 4 top-level trees, 8 groups: groups 4..7 own nothing.
        query = ORDER_FREE_QUERIES[0]
        for group in range(4, 8):
            slice_ = provider.slice_for("play", group, 8)
            payload, _ = evaluate_slice(slice_, [query], "sets", {})
            assert payload == [[]]
        expected = Evaluator("indexed").evaluate(parse(query), instance)
        assert list(_union_of_slices(provider, query, 8)) == list(expected)

    def test_exchange_scalars_fold_to_global_summary(self, provider, instance):
        query = "speech dwithin scene"
        global_summary = summarize_result(
            Evaluator("indexed").evaluate(parse(query), instance)
        )
        max_left = None
        min_right = None
        for group in range(3):
            slice_ = provider.slice_for("play", group, 3)
            payload, _ = evaluate_slice(slice_, [query], "exchange", {})
            ml, mr = payload[0]
            if ml is not None and (max_left is None or ml > max_left):
                max_left = ml
            if mr is not None and (min_right is None or mr < min_right):
                min_right = mr
        assert (max_left, min_right) == global_summary

    def test_multiple_queries_share_one_call(self, provider, instance):
        slice_ = provider.slice_for("play", 0, 2)
        payload, _ = evaluate_slice(slice_, ORDER_FREE_QUERIES[:3], "sets", {})
        assert len(payload) == 3

    def test_unknown_want_rejected(self, provider):
        slice_ = provider.slice_for("play", 0, 2)
        with pytest.raises(BackendUnsupportedError):
            evaluate_slice(slice_, ["speech"], "everything", {})

    def test_bad_coordinates_rejected(self, provider):
        with pytest.raises(BackendUnsupportedError):
            provider.slice_for("play", 2, 2)
        with pytest.raises(BackendUnsupportedError):
            provider.slice_for("play", -1, 2)
        with pytest.raises(BackendUnsupportedError):
            provider.slice_for("play", 0, 0)


class TestSliceProviderCache:
    def test_new_generation_invalidates(self, instance):
        generation = {"value": 1}
        provider = SliceProvider(lambda name: (instance, generation["value"]))
        first = provider.slice_for("play", 0, 2)
        again = provider.slice_for("play", 0, 2)
        assert again.segment is first.segment
        generation["value"] = 2
        rebuilt = provider.slice_for("play", 0, 2)
        assert rebuilt.generation == 2

    def test_surplus_segment_is_cached(self, instance):
        provider = SliceProvider(lambda name: (instance, 1))
        a = provider.slice_for("play", 6, 8)
        b = provider.slice_for("play", 7, 8)
        assert a.segment is b.segment
