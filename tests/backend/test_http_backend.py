"""The subprocess topology end to end: supervisor spawn, kill, failover,
respawn, breaker recovery.  One flow test — subprocess spawns are the
expensive part, so the assertions share a single service."""

from time import monotonic, sleep

import pytest

from repro.faults.retry import CircuitBreaker
from repro.server import CorpusSpec, QueryService, ServerConfig

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=1)

QUERY = "speech dwithin scene"


@pytest.fixture(scope="module")
def service():
    svc = QueryService(
        ServerConfig(
            workers=2,
            queue_depth=8,
            cache_enabled=False,
            corpora=(PLAY,),
            backend_nodes=2,
            backend_groups=2,
            backend_replicas=2,
            backend_mode="http",
            breaker_threshold=2,
            breaker_reset=0.5,
            backend_respawn_delay=0.3,
        )
    )
    yield svc
    svc.close()


def _expected(service):
    engine = service._handle("play").engine
    return [[r.left, r.right] for r in engine.query(QUERY)]


def test_kill_failover_respawn_recovery(service):
    expected = _expected(service)

    # Healthy topology answers off the distributed path.
    response = service.execute(QUERY, use_cache=False)
    assert response["regions"] == expected
    assert response["backend"]["mode"] == "http"
    assert response["backend"]["degraded"] is False

    # SIGKILL the primary replica of group 0.  Every query must still
    # be correct — the surviving replica absorbs the load.
    victim = service.frontier.replicas_for("play", 0)[0].id
    survivor = next(
        node.id for node in service.frontier.nodes if node.id != victim
    )
    service.supervisor.kill(victim)
    saw_failover = False
    for _ in range(6):
        response = service.execute(QUERY, use_cache=False)
        assert response["regions"] == expected
        backend = response["backend"]
        if backend.get("failovers", 0) or backend.get("fallback"):
            saw_failover = True
    assert saw_failover

    # The supervisor respawns the victim on its old port.
    deadline = monotonic() + 15.0
    while service.supervisor.respawns(victim) < 1 and monotonic() < deadline:
        sleep(0.1)
    assert service.supervisor.respawns(victim) >= 1
    processes = {p["node"]: p for p in service.supervisor.describe()}
    assert processes[victim]["alive"] is True

    # Probe traffic walks the victim's breaker back to closed, and the
    # topology serves whole again — including the respawned node.
    victim_node = next(
        node for node in service.frontier.nodes if node.id == victim
    )
    deadline = monotonic() + 15.0
    while (
        victim_node.breaker.state != CircuitBreaker.CLOSED
        and monotonic() < deadline
    ):
        service.execute(QUERY, use_cache=False)
        sleep(0.1)
    assert victim_node.breaker.state == CircuitBreaker.CLOSED
    response = service.execute(QUERY, use_cache=False)
    assert response["regions"] == expected
    assert response["backend"]["degraded"] is False
    assert survivor in {node.id for node in service.frontier.nodes}


def test_backends_info_reports_processes(service):
    info = service.backends_info()
    assert info["enabled"] is True
    assert info["mode"] == "http"
    assert len(info["processes"]) == 2
    for process in info["processes"]:
        assert process["alive"] is True
        assert process["pid"]
