"""The frontier over in-process backends: equivalence, failover,
breakers, and hedging.  All the machinery the subprocess topology uses,
none of the subprocesses."""

import random
from time import sleep

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.backend.base import SliceProvider
from repro.backend.frontier import BackendNode, FrontierExecutor
from repro.backend.inprocess import InProcessBackend
from repro.engine.corpus import Corpus
from repro.errors import BackendUnavailableError
from repro.faults.retry import CircuitBreaker
from repro.workloads.corpora import generate_play
from repro.workloads.queries import PLAY_QUERIES


@pytest.fixture(scope="module")
def instance():
    rng = random.Random(42)
    corpus = Corpus()
    for _ in range(4):
        corpus.add(
            generate_play(
                rng,
                acts=2,
                scenes_per_act=2,
                speeches_per_scene=3,
                lines_per_speech=2,
            )
        )
    return corpus.engine().instance


def make_frontier(
    instance,
    count=3,
    groups=2,
    replicas=2,
    hedge_budget=0.0,
    hedge_min_seconds=0.05,
    breaker_threshold=2,
    breaker_reset=0.2,
):
    provider = SliceProvider(lambda name: (instance, 1))
    backends = [InProcessBackend(f"b{i}", provider) for i in range(count)]
    nodes = [
        BackendNode(
            backend,
            CircuitBreaker(
                failure_threshold=breaker_threshold,
                reset_timeout=breaker_reset,
            ),
        )
        for backend in backends
    ]
    frontier = FrontierExecutor(
        nodes,
        groups=groups,
        replicas=replicas,
        hedge_budget=hedge_budget,
        hedge_min_seconds=hedge_min_seconds,
    )
    return frontier, {node.id: node for node in nodes}


class TestEquivalence:
    @pytest.mark.parametrize("query", sorted(PLAY_QUERIES.values()))
    def test_frontier_matches_single_process(self, instance, query):
        frontier, _ = make_frontier(instance)
        try:
            expr = parse(query)
            expected = Evaluator("indexed").evaluate(expr, instance)
            result, stats = frontier.run("play", expr)
            assert list(result) == list(expected)
            assert stats.groups == 2
            assert stats.nodes_used
        finally:
            frontier.close()

    def test_single_group_topology(self, instance):
        frontier, _ = make_frontier(instance, count=1, groups=1, replicas=1)
        try:
            expr = parse("speech dwithin scene")
            expected = Evaluator("indexed").evaluate(expr, instance)
            result, _ = frontier.run("play", expr)
            assert list(result) == list(expected)
        finally:
            frontier.close()


class TestFailover:
    def test_one_dead_replica_is_absorbed(self, instance):
        frontier, nodes = make_frontier(instance)
        try:
            expr = parse("speech dwithin scene")
            expected = Evaluator("indexed").evaluate(expr, instance)
            victim = frontier.replicas_for("play", 0)[0]
            # The same node may be primary for several groups; make every
            # call to it in this run fail.
            victim.backend.fail_requests = 10
            result, stats = frontier.run("play", expr)
            assert list(result) == list(expected)
            assert stats.failovers >= 1
            assert victim.id not in stats.nodes_used
        finally:
            frontier.close()

    def test_all_replicas_dead_raises_unavailable(self, instance):
        frontier, nodes = make_frontier(instance)
        try:
            for node in frontier.replicas_for("play", 0):
                node.backend.fail_requests = 10
            with pytest.raises(BackendUnavailableError) as info:
                frontier.run("play", parse("speech dwithin scene"))
            assert info.value.corpus == "play"
        finally:
            frontier.close()

    def test_breaker_opens_and_recovers(self, instance):
        frontier, nodes = make_frontier(
            instance, breaker_threshold=2, breaker_reset=0.1
        )
        try:
            expr = parse("speech dwithin scene")
            victim = frontier.replicas_for("play", 0)[0]
            victim.backend.fail_requests = 2
            frontier.run("play", expr)
            frontier.run("play", expr)
            assert victim.breaker.state == CircuitBreaker.OPEN
            # While open, the victim is skipped without being called.
            _, stats = frontier.run("play", expr)
            assert victim.id not in stats.nodes_used
            assert stats.breaker_skips >= 1
            # After the reset timeout a probe goes through (the backend
            # is healthy again) and the breaker closes.
            sleep(0.15)
            frontier.run("play", expr)
            sleep(0.15)
            frontier.run("play", expr)
            assert victim.breaker.state == CircuitBreaker.CLOSED
        finally:
            frontier.close()


class TestHedging:
    def test_slow_primary_is_hedged(self, instance):
        frontier, nodes = make_frontier(
            instance, hedge_budget=1.0, hedge_min_seconds=0.02
        )
        try:
            expr = parse("speech dwithin scene")
            expected = Evaluator("indexed").evaluate(expr, instance)
            primary = frontier.replicas_for("play", 0)[0]
            primary.backend.inject_latency = 0.3
            result, stats = frontier.run("play", expr)
            assert list(result) == list(expected)
            assert stats.hedges >= 1
            assert stats.hedge_wins >= 1
        finally:
            frontier.close()

    def test_budget_zero_never_hedges(self, instance):
        frontier, nodes = make_frontier(
            instance, hedge_budget=0.0, hedge_min_seconds=0.02
        )
        try:
            expr = parse("speech dwithin scene")
            primary = frontier.replicas_for("play", 0)[0]
            primary.backend.inject_latency = 0.1
            _, stats = frontier.run("play", expr)
            assert stats.hedges == 0
        finally:
            frontier.close()


class TestIntrospection:
    def test_placement_covers_every_group(self, instance):
        frontier, _ = make_frontier(instance)
        try:
            placement = frontier.placement(["play"])
            assert set(placement["play"]) == {"0", "1"}
            for replicas in placement["play"].values():
                assert len(replicas) == 2
                assert len(set(replicas)) == 2
        finally:
            frontier.close()

    def test_snapshot_shape(self, instance):
        frontier, _ = make_frontier(instance)
        try:
            frontier.run("play", parse("speech dwithin scene"))
            snapshot = frontier.snapshot()
            assert snapshot["groups"] == 2
            assert snapshot["replicas"] == 2
            assert len(snapshot["nodes"]) == 3
            assert all("breaker" in node for node in snapshot["nodes"])
            assert snapshot["hedge"]["primaries"] >= 1
        finally:
            frontier.close()
