"""Consistent-hash placement: deterministic, distinct, and balanced."""

import pytest

from repro.backend.ring import HashRing


class TestHashRing:
    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing([])
        with pytest.raises(ValueError):
            HashRing(["a"], vnodes=0)

    def test_placement_is_deterministic_across_instances(self):
        a = HashRing(["b0", "b1", "b2"])
        b = HashRing(["b0", "b1", "b2"])
        for i in range(50):
            key = f"corpus|{i}"
            assert a.nodes_for(key, 2) == b.nodes_for(key, 2)

    def test_replica_sets_are_distinct_nodes(self):
        ring = HashRing(["b0", "b1", "b2", "b3"])
        for i in range(50):
            nodes = ring.nodes_for(f"k{i}", 3)
            assert len(nodes) == 3
            assert len(set(nodes)) == 3

    def test_n_capped_at_node_count(self):
        ring = HashRing(["b0", "b1"])
        assert sorted(ring.nodes_for("key", 10)) == ["b0", "b1"]
        assert len(ring.nodes_for("key", 0)) == 1  # floor of 1

    def test_every_node_owns_some_keys(self):
        ring = HashRing([f"b{i}" for i in range(4)])
        owners = {ring.nodes_for(f"corpus|{i}")[0] for i in range(200)}
        assert owners == {"b0", "b1", "b2", "b3"}

    def test_removing_a_node_only_moves_its_keys(self):
        full = HashRing(["b0", "b1", "b2"])
        reduced = HashRing(["b0", "b1"])
        keys = [f"k{i}" for i in range(100)]
        for key in keys:
            before = full.nodes_for(key)[0]
            after = reduced.nodes_for(key)[0]
            if before != "b2":
                assert after == before

    def test_duplicate_ids_collapse(self):
        ring = HashRing(["b0", "b0", "b1"])
        assert len(ring) == 2
