"""Replicated ingestion over a real subprocess topology, end to end:
read-your-writes through shipped WAL batches, the generation floor,
lagging-replica failover, snapshot catch-up after a kill, and the
``ingest_unreplicated`` guard.  One module-scoped service — subprocess
spawns are the expensive part."""

from time import monotonic, sleep

import pytest

from repro.errors import IngestUnreplicatedError, ReplicaLaggingError
from repro.faults.retry import CircuitBreaker
from repro.server import CorpusSpec, QueryService, ServerConfig

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=1)

QUERY = "speech"


def _append(doc_id: str, word: str) -> dict:
    return {
        "op": "append",
        "id": doc_id,
        "text": f"<speech><speaker>Repl</speaker>"
        f"<line>{word} at midnight</line></speech>",
    }


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    svc = QueryService(
        ServerConfig(
            workers=2,
            queue_depth=8,
            cache_enabled=False,
            corpora=(PLAY,),
            backend_nodes=2,
            backend_groups=2,
            backend_replicas=2,
            backend_mode="http",
            breaker_threshold=2,
            breaker_reset=0.5,
            backend_respawn_delay=0.3,
            ingest_enabled=True,
            ingest_dir=str(tmp_path_factory.mktemp("wal")),
            ingest_fsync=False,
            compaction_enabled=False,
            replication_enabled=True,
            replication_interval=0.5,
        )
    )
    yield svc
    svc.close()


def _await_current(service, seconds=15.0):
    deadline = monotonic() + seconds
    outcomes = {}
    while monotonic() < deadline:
        outcomes = service.replication.sweep()["corpora"].get("play", {})
        if outcomes and all(o == "current" for o in outcomes.values()):
            return outcomes
        sleep(0.2)
    return outcomes


def test_read_your_writes_through_replicas(service):
    before = service.execute(QUERY, use_cache=False)
    assert before["backend"]["mode"] == "http"

    response = service.ingest("play", [_append("ryw-1", "prophecy")])
    shipped = response["replication"]
    assert shipped["nodes"] == 2
    assert shipped["applied"] == 2
    assert shipped["failed"] == 0

    # The very next read must see the write — at the new generation,
    # off the distributed path, with no replica allowed to answer
    # below the floor.
    after = service.execute(QUERY, use_cache=False)
    assert after["generation"] == response["generation"]
    assert after["cardinality"] == before["cardinality"] + 1
    assert after["backend"]["degraded"] is False


def test_backends_info_reports_replication(service):
    info = service.backends_info()
    replication = info["replication"]
    assert replication["enabled"] is True
    truth = service._handle("play").generation
    for node_state in replication["nodes"].values():
        assert node_state["applied"].get("play") == truth
        assert node_state["reachable"] is True


def test_floor_rejects_a_lagging_replica(service):
    # Ask one backend directly for a generation it cannot have yet:
    # the typed replica_lagging refusal — decoded from the 503 — is
    # what the frontier's failover machinery is built from.
    node = service.frontier.replicas_for("play", 0)[0]
    current = service._handle("play").generation
    with pytest.raises(ReplicaLaggingError) as excinfo:
        node.backend.shard_query(
            corpus="play",
            group=0,
            groups=service.frontier.groups,
            queries=[QUERY],
            want=QUERY,
            bounds={},
            floor=current + 10,
        )
    assert excinfo.value.applied <= current
    assert excinfo.value.floor == current + 10


def test_killed_replica_catches_up_by_snapshot(service):
    victim = service.frontier.replicas_for("play", 0)[0].id
    victim_node = next(
        node for node in service.frontier.nodes if node.id == victim
    )
    respawns_before = service.supervisor.respawns(victim)
    service.supervisor.kill(victim)

    # Writes keep committing while the victim is down — the ship to it
    # fails, the ingest still acks.
    response = service.ingest("play", [_append("kill-1", "daggers")])
    assert response["replication"]["failed"] >= 1
    readback = service.execute(QUERY, use_cache=False)
    assert readback["generation"] == response["generation"]

    deadline = monotonic() + 15.0
    while (
        service.supervisor.respawns(victim) <= respawns_before
        and monotonic() < deadline
    ):
        sleep(0.1)
    assert service.supervisor.respawns(victim) > respawns_before

    # Probe the breaker closed again, then let the sweep repair the
    # blank respawn (it remembers nothing — snapshot catch-up).
    deadline = monotonic() + 15.0
    while (
        victim_node.breaker.state != CircuitBreaker.CLOSED
        and monotonic() < deadline
    ):
        service.execute(QUERY, use_cache=False)
        sleep(0.1)
    assert victim_node.breaker.state == CircuitBreaker.CLOSED

    outcomes = _await_current(service)
    assert outcomes and all(o == "current" for o in outcomes.values())
    truth = service._handle("play").generation
    applied = service.replication.snapshot()["nodes"][victim]["applied"]
    assert applied.get("play") == truth

    # And the caught-up topology serves the write everywhere.
    final = service.execute(QUERY, use_cache=False)
    assert final["generation"] == truth
    assert final["backend"]["degraded"] is False


def test_unreplicated_remote_topology_rejects_ingest(tmp_path):
    svc = QueryService(
        ServerConfig(
            workers=2,
            queue_depth=8,
            cache_enabled=False,
            corpora=(PLAY,),
            backend_nodes=2,
            backend_groups=2,
            backend_replicas=2,
            backend_mode="http",
            ingest_enabled=True,
            ingest_dir=str(tmp_path / "wal"),
            ingest_fsync=False,
            compaction_enabled=False,
            replication_enabled=False,
        )
    )
    try:
        with pytest.raises(IngestUnreplicatedError):
            svc.ingest("play", [_append("nope", "unshipped")])
        # Nothing was committed: reads still serve the base corpus.
        assert svc._handle("play").generation == 1
    finally:
        svc.close()
