"""QueryService with an in-process backend topology: the distributed
path must answer exactly like local evaluation, annotate responses, and
degrade — not fail — when every replica of a group is gone."""

import pytest

from repro.server import CorpusSpec, QueryService, ServerConfig

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=2)


@pytest.fixture(scope="module")
def service():
    svc = QueryService(
        ServerConfig(
            workers=2,
            queue_depth=8,
            cache_enabled=False,
            corpora=(PLAY,),
            backend_nodes=3,
            backend_groups=2,
            backend_replicas=2,
            backend_mode="inprocess",
        )
    )
    yield svc
    svc.close()


class TestBackendQueryPath:
    def test_matches_local_engine(self, service):
        engine = service._handle("play").engine
        for query in (
            "speech dwithin scene",
            'speech containing (speaker @ "ROMEO")',
            'bi(scene, speaker @ "ROMEO", speaker @ "JULIET")',
        ):
            expected = [[r.left, r.right] for r in engine.query(query)]
            response = service.execute(query, use_cache=False)
            assert response["regions"] == expected

    def test_response_carries_backend_info(self, service):
        response = service.execute("speech dwithin scene", use_cache=False)
        backend = response["backend"]
        assert backend["mode"] == "inprocess"
        assert backend["groups"] == 2
        assert backend["replicas"] == 2
        assert backend["degraded"] is False
        assert backend["nodes"]

    def test_backends_info_endpoint_shape(self, service):
        info = service.backends_info()
        assert info["enabled"] is True
        assert info["mode"] == "inprocess"
        assert len(info["nodes"]) == 3
        placement = info["placement"]["play"]
        assert set(placement) == {"0", "1"}

    def test_failover_is_invisible_to_the_client(self, service):
        engine = service._handle("play").engine
        victim = service.frontier.replicas_for("play", 0)[0]
        victim.backend.fail_requests = 10
        try:
            response = service.execute("speech dwithin scene", use_cache=False)
        finally:
            victim.backend.fail_requests = 0
        expected = [
            [r.left, r.right] for r in engine.query("speech dwithin scene")
        ]
        assert response["regions"] == expected
        assert response["backend"]["degraded"] is False
        assert response["backend"]["failovers"] >= 1


class TestDegradedFallback:
    def test_total_backend_loss_degrades_but_stays_correct(self):
        svc = QueryService(
            ServerConfig(
                workers=2,
                queue_depth=8,
                cache_enabled=False,
                corpora=(PLAY,),
                backend_nodes=2,
                backend_groups=2,
                backend_replicas=2,
                backend_mode="inprocess",
                breaker_threshold=100,  # keep failing, never skip
            )
        )
        try:
            engine = svc._handle("play").engine
            for node in svc.frontier.nodes:
                node.backend.fail_requests = 1000
            response = svc.execute("speech dwithin scene", use_cache=False)
            expected = [
                [r.left, r.right] for r in engine.query("speech dwithin scene")
            ]
            assert response["regions"] == expected
            backend = response["backend"]
            assert backend["fallback"] == "unavailable"
            assert backend["degraded"] is True
        finally:
            svc.close()

    def test_fallback_metric_incremented(self):
        from repro.obs.metrics import FRONTIER_FALLBACK_TOTAL

        svc = QueryService(
            ServerConfig(
                workers=2,
                queue_depth=8,
                cache_enabled=False,
                corpora=(PLAY,),
                backend_nodes=2,
                backend_groups=2,
                backend_replicas=2,
                backend_mode="inprocess",
            )
        )
        try:
            for node in svc.frontier.nodes:
                node.backend.fail_requests = 1000
            svc.execute("speech dwithin scene", use_cache=False)
            fallback = svc.telemetry.metrics.counter(FRONTIER_FALLBACK_TOTAL)
            assert fallback.value(reason="unavailable") == 1
        finally:
            svc.close()
