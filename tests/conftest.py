"""Shared fixtures for the test suite.

The hypothesis strategies live in the public module
:mod:`repro.workloads.strategies`; they are re-exported here so test
modules can keep importing them from ``tests.conftest``.
"""

from __future__ import annotations

import random

import pytest

from repro.core.region import Region
from repro.workloads.strategies import (  # noqa: F401  (re-exports)
    hierarchical_instances,
    region_lists,
    regions,
    tree_nodes,
)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def small_instance():
    """A hand-built instance used in golden tests.

    Layout (positions)::

        A[0,19]
          B[1,8]   C[10,18]
            D[2,4]    B[11,13]  D[15,17]
        A[25,30]
          D[26,28]
    """
    from repro.core.instance import Instance
    from repro.core.regionset import RegionSet
    from repro.core.wordindex import LabelWordIndex

    return Instance(
        {
            "A": RegionSet.of((0, 19), (25, 30)),
            "B": RegionSet.of((1, 8), (11, 13)),
            "C": RegionSet.of((10, 18)),
            "D": RegionSet.of((2, 4), (15, 17), (26, 28)),
        },
        LabelWordIndex(
            {
                Region(2, 4): {"x"},
                Region(15, 17): {"y"},
                Region(26, 28): {"x", "y"},
            }
        ),
    )
