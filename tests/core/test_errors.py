"""The exception hierarchy: one base, informative messages."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in (
            "InvalidRegionError",
            "HierarchyError",
            "UnknownRegionNameError",
            "ParseError",
            "EvaluationError",
            "PatternError",
            "GrammarError",
            "OptimizationError",
            "StorageError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_one_except_clause_catches_everything(self):
        from repro.algebra.parser import parse
        from repro.core.region import Region

        caught = 0
        for thunk in (lambda: parse("((("), lambda: Region(5, 1)):
            try:
                thunk()
            except errors.ReproError:
                caught += 1
        assert caught == 2


class TestMessages:
    def test_unknown_region_name_lists_known(self):
        error = errors.UnknownRegionNameError("X", ("A", "B"))
        assert "X" in str(error)
        assert "A, B" in str(error)
        assert error.name == "X"

    def test_unknown_region_name_without_known(self):
        assert "known names" not in str(errors.UnknownRegionNameError("X"))

    def test_parse_error_position(self):
        error = errors.ParseError("bad token", position=7)
        assert "position 7" in str(error)
        assert error.position == 7

    def test_parse_error_without_position(self):
        error = errors.ParseError("bad token")
        assert error.position is None
        assert str(error) == "bad token"
