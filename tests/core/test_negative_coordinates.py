"""The algebra is position-agnostic: negative coordinates work throughout."""

from repro.algebra.evaluator import evaluate
from repro.core.instance import Instance
from repro.core.region import Region, bounding_region
from repro.core.regionset import RegionSet


class TestNegativeCoordinates:
    def test_regions_accept_negative_endpoints(self):
        region = Region(-10, -2)
        assert region.length == 9
        assert region.includes(Region(-8, -4))

    def test_bounding_region_can_go_negative(self):
        bound = bounding_region([Region(0, 5)])
        assert bound == Region(-1, 6)

    def test_instance_with_negative_positions(self):
        instance = Instance(
            {
                "A": RegionSet.of((-20, -1), (5, 9)),
                "B": RegionSet.of((-15, -10)),
            }
        )
        assert [r.as_tuple() for r in evaluate("A containing B", instance)] == [
            (-20, -1)
        ]
        assert [r.as_tuple() for r in evaluate("B before A", instance)] == [
            (-15, -10)
        ]

    def test_shift_across_zero(self):
        from repro.core.wordindex import LabelWordIndex

        instance = Instance(
            {"A": RegionSet.of((0, 9)), "B": RegionSet.of((2, 5))},
            LabelWordIndex({Region(2, 5): {"p"}}),
        )
        shifted = instance.shifted(-100)
        assert evaluate('B @ "p"', shifted) == RegionSet.of((-98, -95))
        assert evaluate("A dcontaining B", shifted) == RegionSet.of((-100, -91))

    def test_forest_with_negative_positions(self):
        instance = Instance(
            {"A": RegionSet.of((-9, 9)), "B": RegionSet.of((-5, 0), (2, 4))}
        )
        forest = instance.forest()
        assert forest.parent_of(Region(-5, 0)) == Region(-9, 9)
        assert forest.children_of(Region(-9, 9)) == [
            Region(-5, 0),
            Region(2, 4),
        ]
