"""Word indexes: tokenization and the W(r, p) predicate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import LabelWordIndex, TextWordIndex, tokenize


class TestTokenize:
    def test_simple(self):
        assert tokenize("ab cd") == [("ab", 0, 1), ("cd", 3, 4)]

    def test_leading_trailing_whitespace(self):
        assert tokenize("  x  ") == [("x", 2, 2)]

    def test_empty_and_blank(self):
        assert tokenize("") == []
        assert tokenize("   \n\t ") == []

    def test_final_token_at_end(self):
        assert tokenize("a bc") == [("a", 0, 0), ("bc", 2, 3)]

    @given(st.text(alphabet="ab \n", max_size=40))
    def test_tokens_cover_exact_spans(self, text):
        for token, left, right in tokenize(text):
            assert text[left : right + 1] == token
            assert not any(ch.isspace() for ch in token)


class TestTextWordIndex:
    @pytest.fixture
    def index(self):
        return TextWordIndex.from_text("the cat sat on the mat catalog")

    def test_vocabulary(self, index):
        assert index.vocabulary == ["cat", "catalog", "mat", "on", "sat", "the"]

    def test_literal_match(self, index):
        assert index.matches(Region(0, 30), "cat")
        assert index.matches(Region(4, 6), "cat")
        assert not index.matches(Region(0, 3), "cat")

    def test_match_requires_full_containment(self, index):
        # "cat" occupies [4,6]; a region covering only part of it fails.
        assert not index.matches(Region(4, 5), "cat")

    def test_prefix_pattern(self, index):
        points = index.match_points("cat*")
        assert len(points) == 2  # cat + catalog
        assert index.matches(Region(20, 30), "cat*")  # catalog only region

    def test_glob_pattern(self, index):
        assert index.matches(Region(0, 30), "?at")  # cat, sat, mat
        assert not index.matches(Region(0, 30), "z?t")

    def test_unknown_word(self, index):
        assert not index.matches(Region(0, 30), "dog")
        assert index.match_points("dog") == RegionSet.empty()

    def test_match_points_are_token_spans(self, index):
        points = index.match_points("the")
        assert points == RegionSet.of((0, 2), (15, 17))

    def test_occurrence_probe_is_positional(self):
        index = TextWordIndex.from_text("x y x")
        assert index.matches(Region(0, 0), "x")
        assert index.matches(Region(4, 4), "x")
        assert not index.matches(Region(1, 3), "x")


class TestLabelWordIndex:
    def test_basic_matching(self):
        idx = LabelWordIndex({Region(0, 3): {"p", "q"}})
        assert idx.matches(Region(0, 3), "p")
        assert not idx.matches(Region(0, 3), "r")
        assert not idx.matches(Region(1, 2), "p")

    def test_labels_of(self):
        idx = LabelWordIndex({Region(0, 3): {"p"}})
        assert idx.labels_of(Region(0, 3)) == frozenset({"p"})
        assert idx.labels_of(Region(9, 9)) == frozenset()

    def test_with_label_is_persistent(self):
        idx = LabelWordIndex()
        idx2 = idx.with_label(Region(0, 3), "p")
        assert not idx.matches(Region(0, 3), "p")
        assert idx2.matches(Region(0, 3), "p")

    def test_restricted_to(self):
        idx = LabelWordIndex({Region(0, 3): {"p"}, Region(5, 8): {"q"}})
        restricted = idx.restricted_to([Region(0, 3)])
        assert restricted.matches(Region(0, 3), "p")
        assert not restricted.matches(Region(5, 8), "q")

    def test_renamed(self):
        idx = LabelWordIndex({Region(0, 3): {"p"}})
        renamed = idx.renamed({Region(0, 3): Region(10, 13)})
        assert renamed.matches(Region(10, 13), "p")
        assert not renamed.matches(Region(0, 3), "p")

    def test_equality_ignores_empty_label_sets(self):
        a = LabelWordIndex({Region(0, 3): {"p"}, Region(5, 8): set()})
        b = LabelWordIndex({Region(0, 3): {"p"}})
        assert a == b
        assert hash(a) == hash(b)
