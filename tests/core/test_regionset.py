"""RegionSet: set operations and indexed structural semi-joins."""

from hypothesis import given, settings

from repro.core.region import Region
from repro.core.regionset import RegionSet
from tests.conftest import hierarchical_instances, region_lists


class TestContainerBasics:
    def test_dedup_and_order(self):
        rs = RegionSet.of((5, 9), (1, 3), (5, 9), (1, 8))
        assert [r.as_tuple() for r in rs] == [(1, 3), (1, 8), (5, 9)]

    def test_contains(self):
        rs = RegionSet.of((1, 3), (5, 9))
        assert Region(1, 3) in rs
        assert Region(1, 4) not in rs
        assert "not a region" not in rs

    def test_empty_singleton_behaviour(self):
        assert not RegionSet.empty()
        assert len(RegionSet.empty()) == 0
        assert RegionSet.empty() == RegionSet()

    def test_hashable(self):
        assert hash(RegionSet.of((1, 2))) == hash(RegionSet.of((1, 2)))

    def test_repr_truncates(self):
        rs = RegionSet.of(*[(i, i) for i in range(0, 20, 2)])
        assert "total" in repr(rs)


class TestSetOperations:
    def test_union(self):
        a = RegionSet.of((1, 2), (4, 6))
        b = RegionSet.of((4, 6), (8, 9))
        assert a.union(b) == RegionSet.of((1, 2), (4, 6), (8, 9))

    def test_union_with_empty_returns_operand(self):
        a = RegionSet.of((1, 2))
        assert a.union(RegionSet.empty()) is a
        assert RegionSet.empty().union(a) is a

    def test_intersection(self):
        a = RegionSet.of((1, 2), (4, 6))
        b = RegionSet.of((4, 6), (8, 9))
        assert a.intersection(b) == RegionSet.of((4, 6))

    def test_difference(self):
        a = RegionSet.of((1, 2), (4, 6))
        b = RegionSet.of((4, 6))
        assert a.difference(b) == RegionSet.of((1, 2))

    def test_operator_aliases(self):
        a = RegionSet.of((1, 2), (4, 6))
        b = RegionSet.of((4, 6))
        assert (a | b) == a.union(b)
        assert (a & b) == a.intersection(b)
        assert (a - b) == a.difference(b)

    @given(region_lists(), region_lists())
    def test_set_laws(self, xs, ys):
        a, b = RegionSet(xs), RegionSet(ys)
        assert a.union(b) == b.union(a)
        assert a.intersection(b) == b.intersection(a)
        assert a.difference(b).intersection(b) == RegionSet.empty()
        assert a.union(b).difference(b) == a.difference(b)


class TestStructuralJoins:
    """The indexed semi-joins must match the Definition 2.3 oracles."""

    def test_including_golden(self):
        outer = RegionSet.of((0, 10), (20, 25), (4, 6))
        inner = RegionSet.of((4, 6), (22, 25))
        assert outer.including(inner) == RegionSet.of((0, 10), (20, 25))

    def test_included_in_golden(self):
        outer = RegionSet.of((0, 10), (20, 30))
        inner = RegionSet.of((4, 6), (0, 10), (31, 40))
        assert inner.included_in(outer) == RegionSet.of((4, 6))

    def test_preceding_golden(self):
        a = RegionSet.of((0, 3), (10, 12), (40, 45))
        b = RegionSet.of((15, 20))
        assert a.preceding(b) == RegionSet.of((0, 3), (10, 12))

    def test_following_golden(self):
        a = RegionSet.of((0, 3), (10, 12), (40, 45))
        b = RegionSet.of((15, 20))
        assert a.following(b) == RegionSet.of((40, 45))

    def test_empty_operands(self):
        a = RegionSet.of((0, 3))
        empty = RegionSet.empty()
        for op in ("including", "included_in", "preceding", "following"):
            assert getattr(a, op)(empty) == empty
            assert getattr(empty, op)(a) == empty

    def test_shared_endpoint_inclusion(self):
        # [0,10] ⊃ [0,8] and [2,10], but not [0,10] itself.
        outer = RegionSet.of((0, 10))
        assert outer.including(RegionSet.of((0, 8))) == outer
        assert outer.including(RegionSet.of((2, 10))) == outer
        assert outer.including(RegionSet.of((0, 10))) == RegionSet.empty()

    @given(region_lists(), region_lists())
    @settings(max_examples=300)
    def test_including_matches_oracle(self, xs, ys):
        a, b = RegionSet(xs), RegionSet(ys)
        assert a.including(b) == a.including_naive(b)

    @given(region_lists(), region_lists())
    @settings(max_examples=300)
    def test_included_in_matches_oracle(self, xs, ys):
        a, b = RegionSet(xs), RegionSet(ys)
        assert a.included_in(b) == a.included_in_naive(b)

    @given(region_lists(), region_lists())
    def test_preceding_matches_oracle(self, xs, ys):
        a, b = RegionSet(xs), RegionSet(ys)
        assert a.preceding(b) == a.preceding_naive(b)

    @given(region_lists(), region_lists())
    def test_following_matches_oracle(self, xs, ys):
        a, b = RegionSet(xs), RegionSet(ys)
        assert a.following(b) == a.following_naive(b)

    @given(region_lists(), region_lists())
    def test_inclusion_duality(self, xs, ys):
        """r ∈ (A ⊃ B) iff some b ∈ (B ⊂ {r}) — semi-join duality."""
        a, b = RegionSet(xs), RegionSet(ys)
        for r in a.including(b):
            assert b.included_in(RegionSet([r]))


class TestLayers:
    def test_top_layer(self):
        rs = RegionSet.of((0, 10), (2, 5), (3, 4), (12, 15))
        assert rs.top_layer() == RegionSet.of((0, 10), (12, 15))

    def test_top_layer_of_flat_set_is_identity(self):
        rs = RegionSet.of((0, 1), (3, 4), (6, 7))
        assert rs.top_layer() == rs

    def test_max_nesting_depth(self):
        assert RegionSet.empty().max_nesting_depth() == 0
        assert RegionSet.of((0, 1), (3, 4)).max_nesting_depth() == 1
        assert RegionSet.of((0, 10), (2, 8), (3, 4)).max_nesting_depth() == 3

    def test_max_nesting_depth_shared_left_endpoints(self):
        # (0,10) ⊃ (0,5): sorting by (left, right) alone would miss this.
        assert RegionSet.of((0, 10), (0, 5)).max_nesting_depth() == 2

    @given(hierarchical_instances())
    def test_layer_peeling_terminates_and_partitions(self, instance):
        # Layer peeling and the depth sweep assume hierarchical inputs
        # (the only shape the algebra ever feeds them).
        rs = instance.all_regions()
        seen = RegionSet.empty()
        rest = rs
        rounds = 0
        while rest:
            layer = rest.top_layer()
            assert layer, "peeling must make progress"
            assert layer.intersection(seen) == RegionSet.empty()
            seen = seen.union(layer)
            rest = rest.difference(layer)
            rounds += 1
        assert seen == rs
        assert rounds == rs.max_nesting_depth()

    def test_select(self):
        rs = RegionSet.of((0, 3), (5, 9))
        assert rs.select(lambda r: r.left == 5) == RegionSet.of((5, 9))

    def test_spanning(self):
        rs = RegionSet.of((0, 10), (2, 5), (7, 9))
        assert rs.spanning(8) == RegionSet.of((0, 10), (7, 9))
