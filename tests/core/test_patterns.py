"""The pattern language behind σ_p."""

import pytest

from repro.core.patterns import (
    GlobPattern,
    LiteralPattern,
    PrefixPattern,
    parse_pattern,
)
from repro.errors import PatternError


class TestParsePattern:
    def test_literal(self):
        pattern = parse_pattern("word")
        assert isinstance(pattern, LiteralPattern)
        assert pattern.matches_token("word")
        assert not pattern.matches_token("words")

    def test_prefix(self):
        pattern = parse_pattern("pre*")
        assert isinstance(pattern, PrefixPattern)
        assert pattern.matches_token("prefix")
        assert pattern.matches_token("pre")
        assert not pattern.matches_token("pr")

    def test_glob_question_mark(self):
        pattern = parse_pattern("?at")
        assert isinstance(pattern, GlobPattern)
        assert pattern.matches_token("cat")
        assert not pattern.matches_token("chat")

    def test_glob_inner_star(self):
        pattern = parse_pattern("a*z")
        assert isinstance(pattern, GlobPattern)
        assert pattern.matches_token("az")
        assert pattern.matches_token("abcz")
        assert not pattern.matches_token("azx")

    def test_star_in_middle_plus_suffix_star_is_glob(self):
        assert isinstance(parse_pattern("a*b*"), GlobPattern)

    def test_empty_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("")

    def test_match_all_rejected(self):
        with pytest.raises(PatternError):
            parse_pattern("*")

    def test_case_sensitive(self):
        assert not parse_pattern("Word").matches_token("word")

    def test_source_preserved(self):
        assert parse_pattern("pre*").source == "pre*"
