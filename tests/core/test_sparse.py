"""RangeMin sparse tables against the obvious oracle."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.sparse import RangeMin


class TestRangeMin:
    def test_golden(self):
        table = RangeMin([5, 3, 8, 1, 9])
        assert table.query(0, 5) == 1
        assert table.query(0, 3) == 3
        assert table.query(2, 3) == 8
        assert table.query(4, 5) == 9

    def test_empty_ranges(self):
        table = RangeMin([5, 3])
        assert table.query(1, 1) is None
        assert table.query(2, 1) is None

    def test_out_of_bounds_clamped(self):
        table = RangeMin([5, 3])
        assert table.query(-5, 99) == 3

    def test_empty_table(self):
        assert RangeMin([]).query(0, 1) is None

    def test_single_element(self):
        assert RangeMin([7]).query(0, 1) == 7

    @given(
        st.lists(st.integers(-100, 100), min_size=1, max_size=60),
        st.integers(0, 60),
        st.integers(0, 60),
    )
    def test_matches_min_oracle(self, values, lo, hi):
        table = RangeMin(values)
        expected = min(values[lo:hi]) if values[lo:hi] else None
        assert table.query(lo, hi) == expected
