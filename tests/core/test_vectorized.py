"""The numpy-vectorized joins must agree exactly with the scalar engine."""

from hypothesis import given, settings

from repro.core.regionset import RegionSet
from repro.core.vectorized import (
    vectorized_following,
    vectorized_included_in,
    vectorized_including,
    vectorized_preceding,
)
from tests.conftest import region_lists


class TestAgreementWithScalarEngine:
    @given(region_lists(), region_lists())
    @settings(max_examples=300)
    def test_including(self, xs, ys):
        a, b = RegionSet(xs), RegionSet(ys)
        assert vectorized_including(a, b) == a.including(b)

    @given(region_lists(), region_lists())
    @settings(max_examples=300)
    def test_included_in(self, xs, ys):
        a, b = RegionSet(xs), RegionSet(ys)
        assert vectorized_included_in(a, b) == a.included_in(b)

    @given(region_lists(), region_lists())
    def test_preceding(self, xs, ys):
        a, b = RegionSet(xs), RegionSet(ys)
        assert vectorized_preceding(a, b) == a.preceding(b)

    @given(region_lists(), region_lists())
    def test_following(self, xs, ys):
        a, b = RegionSet(xs), RegionSet(ys)
        assert vectorized_following(a, b) == a.following(b)


class TestEdgeCases:
    def test_empty_operands(self):
        a = RegionSet.of((0, 3))
        empty = RegionSet.empty()
        for fn in (
            vectorized_including,
            vectorized_included_in,
            vectorized_preceding,
            vectorized_following,
        ):
            assert fn(a, empty) == empty
            assert fn(empty, a) == empty

    def test_shared_endpoints(self):
        outer = RegionSet.of((0, 10))
        assert vectorized_including(outer, RegionSet.of((0, 8))) == outer
        assert vectorized_including(outer, RegionSet.of((2, 10))) == outer
        assert vectorized_including(outer, RegionSet.of((0, 10))) == RegionSet.empty()

    def test_negative_coordinates(self):
        a = RegionSet.of((-20, -1))
        b = RegionSet.of((-15, -10))
        assert vectorized_including(a, b) == a
        assert vectorized_preceding(b, RegionSet.of((5, 6))) == b

    def test_large_sets_spot_check(self):
        import random

        rng = random.Random(77)
        a = RegionSet.of(*{
            (l, l + rng.randint(0, 50)) for l in rng.sample(range(100_000), 3000)
        })
        b = RegionSet.of(*{
            (l, l + rng.randint(0, 50)) for l in rng.sample(range(100_000), 3000)
        })
        assert vectorized_including(a, b) == a.including(b)
        assert vectorized_included_in(a, b) == a.included_in(b)
