"""Instance construction, hierarchy validation, and derivation."""

import pytest
from hypothesis import given

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import LabelWordIndex
from repro.errors import HierarchyError, UnknownRegionNameError
from tests.conftest import hierarchical_instances


class TestValidation:
    def test_valid_hierarchy_accepted(self, small_instance):
        small_instance.validate_hierarchy()  # does not raise

    def test_overlap_rejected(self):
        with pytest.raises(HierarchyError, match="overlap"):
            Instance({"A": RegionSet.of((0, 6)), "B": RegionSet.of((4, 9))})

    def test_duplicate_region_across_names_rejected(self):
        with pytest.raises(HierarchyError, match="appears in both"):
            Instance({"A": RegionSet.of((0, 6)), "B": RegionSet.of((0, 6))})

    def test_shared_endpoint_nesting_accepted(self):
        # (0,10) strictly includes (0,5): legal.
        Instance({"A": RegionSet.of((0, 10)), "B": RegionSet.of((0, 5))})

    def test_validate_false_skips_check(self):
        inst = Instance(
            {"A": RegionSet.of((0, 6)), "B": RegionSet.of((4, 9))},
            validate=False,
        )
        with pytest.raises(HierarchyError):
            inst.validate_hierarchy()

    @given(hierarchical_instances())
    def test_generated_instances_are_hierarchical(self, instance):
        instance.validate_hierarchy()


class TestAccessors:
    def test_names_in_declaration_order(self, small_instance):
        assert small_instance.names == ("A", "B", "C", "D")

    def test_region_set(self, small_instance):
        assert len(small_instance.region_set("D")) == 3

    def test_unknown_name(self, small_instance):
        with pytest.raises(UnknownRegionNameError, match="Nope"):
            small_instance.region_set("Nope")

    def test_all_regions(self, small_instance):
        assert len(small_instance.all_regions()) == 8
        assert len(small_instance) == 8

    def test_name_of(self, small_instance):
        assert small_instance.name_of(Region(10, 18)) == "C"
        with pytest.raises(UnknownRegionNameError):
            small_instance.name_of(Region(0, 1))

    def test_contains(self, small_instance):
        assert Region(1, 8) in small_instance
        assert Region(1, 9) not in small_instance
        assert "x" not in small_instance

    def test_matches(self, small_instance):
        assert small_instance.matches(Region(2, 4), "x")
        assert not small_instance.matches(Region(2, 4), "y")
        assert not small_instance.matches(Region(1, 8), "x")

    def test_nesting_depth(self, small_instance):
        assert small_instance.nesting_depth() == 3


class TestDerivation:
    def test_without_regions(self, small_instance):
        reduced = small_instance.without_regions([Region(2, 4), Region(10, 18)])
        assert len(reduced) == 6
        assert Region(2, 4) not in reduced
        # The deleted regions' labels are gone too.
        assert not reduced.matches(Region(2, 4), "x")
        # Surviving labels persist.
        assert reduced.matches(Region(26, 28), "y")

    def test_restricted_to(self, small_instance):
        kept = [Region(0, 19), Region(1, 8)]
        reduced = small_instance.restricted_to(kept)
        assert sorted(r.as_tuple() for r in reduced.all_regions()) == [
            (0, 19),
            (1, 8),
        ]

    def test_deletion_preserves_names(self, small_instance):
        reduced = small_instance.without_regions(list(small_instance.region_set("C")))
        assert reduced.names == small_instance.names
        assert len(reduced.region_set("C")) == 0


class TestEquality:
    def test_equal_instances(self):
        a = Instance({"A": RegionSet.of((0, 3))}, LabelWordIndex({Region(0, 3): {"p"}}))
        b = Instance({"A": RegionSet.of((0, 3))}, LabelWordIndex({Region(0, 3): {"p"}}))
        assert a == b
        assert hash(a) == hash(b)

    def test_label_difference_detected(self):
        a = Instance({"A": RegionSet.of((0, 3))}, LabelWordIndex({Region(0, 3): {"p"}}))
        b = Instance({"A": RegionSet.of((0, 3))}, LabelWordIndex())
        assert a != b

    def test_set_difference_detected(self):
        a = Instance({"A": RegionSet.of((0, 3))})
        b = Instance({"A": RegionSet.of((0, 4))})
        assert a != b


class TestForestCache:
    def test_forest_is_cached(self, small_instance):
        assert small_instance.forest() is small_instance.forest()

    def test_derived_instance_gets_fresh_forest(self, small_instance):
        forest = small_instance.forest()
        derived = small_instance.without_regions([Region(2, 4)])
        assert derived.forest() is not forest
        assert Region(2, 4) not in derived.forest()
