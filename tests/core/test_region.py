"""Unit tests for the Region primitive (Definition 2.3 predicates)."""

import pytest
from hypothesis import given

from repro.core.region import Region, bounding_region, span_of
from repro.errors import InvalidRegionError
from tests.conftest import regions


class TestConstruction:
    def test_valid(self):
        region = Region(2, 7)
        assert region.left == 2
        assert region.right == 7
        assert region.length == 6

    def test_match_point(self):
        assert Region(5, 5).is_match_point()
        assert not Region(5, 6).is_match_point()

    def test_left_exceeds_right_rejected(self):
        with pytest.raises(InvalidRegionError):
            Region(7, 2)

    def test_non_integer_rejected(self):
        with pytest.raises(InvalidRegionError):
            Region(1.5, 3)  # type: ignore[arg-type]

    def test_ordering_is_by_left_then_right(self):
        assert sorted([Region(3, 9), Region(1, 5), Region(1, 2)]) == [
            Region(1, 2),
            Region(1, 5),
            Region(3, 9),
        ]

    def test_shifted(self):
        assert Region(2, 5).shifted(10) == Region(12, 15)

    def test_as_tuple(self):
        assert Region(2, 5).as_tuple() == (2, 5)


class TestInclusion:
    """The paper's ⊃: containment with at least one strict endpoint."""

    def test_strict_both_sides(self):
        assert Region(0, 10).includes(Region(2, 8))

    def test_shared_left_endpoint(self):
        assert Region(0, 10).includes(Region(0, 8))

    def test_shared_right_endpoint(self):
        assert Region(0, 10).includes(Region(2, 10))

    def test_equal_regions_do_not_include(self):
        assert not Region(0, 10).includes(Region(0, 10))

    def test_disjoint_do_not_include(self):
        assert not Region(0, 4).includes(Region(6, 8))

    def test_overlap_does_not_include(self):
        assert not Region(0, 6).includes(Region(4, 9))

    def test_included_in_is_converse(self):
        assert Region(2, 8).included_in(Region(0, 10))
        assert not Region(0, 10).included_in(Region(2, 8))

    @given(regions(), regions())
    def test_converse_law(self, r, s):
        assert r.includes(s) == s.included_in(r)

    @given(regions(), regions())
    def test_inclusion_definition(self, r, s):
        expected = (r.left < s.left and r.right >= s.right) or (
            r.left <= s.left and r.right > s.right
        )
        assert r.includes(s) == expected


class TestPrecedence:
    def test_precedes(self):
        assert Region(0, 4).precedes(Region(5, 8))
        assert not Region(0, 5).precedes(Region(5, 8))

    def test_follows_is_converse(self):
        assert Region(5, 8).follows(Region(0, 4))

    @given(regions(), regions())
    def test_converse_law(self, r, s):
        assert r.precedes(s) == s.follows(r)

    @given(regions(), regions())
    def test_trichotomy_for_hierarchical_pairs(self, r, s):
        """Compatible distinct pairs are nested or ordered, exclusively."""
        if r != s and r.hierarchy_compatible(s):
            facts = [
                r.includes(s),
                s.includes(r),
                r.precedes(s),
                s.precedes(r),
            ]
            assert sum(facts) == 1


class TestDerivedRelations:
    def test_disjoint(self):
        assert Region(0, 4).disjoint_from(Region(5, 9))
        assert not Region(0, 5).disjoint_from(Region(5, 9))

    def test_overlaps(self):
        assert Region(0, 6).overlaps(Region(4, 9))
        assert not Region(0, 9).overlaps(Region(4, 6))  # nested
        assert not Region(0, 3).overlaps(Region(5, 9))  # disjoint
        assert not Region(0, 3).overlaps(Region(0, 3))  # equal

    def test_contains_point(self):
        region = Region(3, 6)
        assert region.contains_point(3)
        assert region.contains_point(6)
        assert not region.contains_point(7)

    def test_hierarchy_compatible(self):
        assert Region(0, 9).hierarchy_compatible(Region(2, 5))
        assert Region(0, 3).hierarchy_compatible(Region(5, 9))
        assert not Region(0, 6).hierarchy_compatible(Region(4, 9))
        assert not Region(1, 2).hierarchy_compatible(Region(1, 2))

    @given(regions(), regions())
    def test_overlap_vs_compatibility(self, r, s):
        if r != s:
            assert r.overlaps(s) == (not r.hierarchy_compatible(s))


class TestSpanHelpers:
    def test_span_of(self):
        assert span_of([Region(3, 5), Region(8, 12), Region(1, 2)]) == Region(1, 12)

    def test_span_of_empty(self):
        assert span_of([]) is None

    def test_bounding_region_strictly_includes(self):
        rs = [Region(3, 5), Region(8, 12)]
        bound = bounding_region(rs)
        assert bound is not None
        assert all(bound.includes(r) for r in rs)

    def test_bounding_region_pad_validation(self):
        with pytest.raises(InvalidRegionError):
            bounding_region([Region(1, 2)], pad=0)

    def test_bounding_region_empty(self):
        assert bounding_region([]) is None
