"""The direct-inclusion forest: structure, layers, direct operators."""

from hypothesis import given

from repro.core.forest import Forest
from repro.core.region import Region
from repro.core.regionset import RegionSet
from tests.conftest import hierarchical_instances


class TestStructure:
    def test_parents_and_children(self, small_instance):
        forest = small_instance.forest()
        assert forest.parent_of(Region(2, 4)) == Region(1, 8)
        assert forest.parent_of(Region(1, 8)) == Region(0, 19)
        assert forest.parent_of(Region(0, 19)) is None
        assert forest.children_of(Region(0, 19)) == [Region(1, 8), Region(10, 18)]

    def test_roots_in_document_order(self, small_instance):
        assert small_instance.forest().roots() == [Region(0, 19), Region(25, 30)]

    def test_depths(self, small_instance):
        forest = small_instance.forest()
        assert forest.depth_of(Region(0, 19)) == 0
        assert forest.depth_of(Region(11, 13)) == 2
        assert forest.max_depth() == 3

    def test_ancestors_innermost_first(self, small_instance):
        forest = small_instance.forest()
        assert forest.ancestors_of(Region(11, 13)) == [
            Region(10, 18),
            Region(0, 19),
        ]

    def test_subtree_preorder(self, small_instance):
        forest = small_instance.forest()
        assert forest.subtree_of(Region(10, 18)) == [
            Region(10, 18),
            Region(11, 13),
            Region(15, 17),
        ]
        assert forest.descendants_of(Region(10, 18)) == [
            Region(11, 13),
            Region(15, 17),
        ]

    def test_sibling_rank_and_child_path(self, small_instance):
        forest = small_instance.forest()
        assert forest.sibling_rank(Region(0, 19)) == 0
        assert forest.sibling_rank(Region(25, 30)) == 1
        assert forest.child_path(Region(15, 17)) == (0, 1, 1)

    def test_iter_edges_covers_every_nonroot(self, small_instance):
        forest = small_instance.forest()
        edges = list(forest.iter_edges())
        assert len(edges) == len(forest) - len(forest.roots())
        for parent, child in edges:
            assert forest.parent_of(child) == parent

    def test_empty_forest(self):
        forest = Forest.from_regions([])
        assert len(forest) == 0
        assert forest.max_depth() == 0
        assert forest.layers() == []

    @given(hierarchical_instances())
    def test_parent_is_tightest_container(self, instance):
        forest = instance.forest()
        universe = instance.all_regions()
        for region in forest.preorder:
            parent = forest.parent_of(region)
            containers = [s for s in universe if s.includes(region)]
            if parent is None:
                assert not containers
            else:
                # The parent includes the region and every other container
                # includes the parent — i.e. nothing sits in between.
                assert parent.includes(region)
                assert all(
                    s == parent or s.includes(parent) for s in containers
                )


class TestLayers:
    def test_layers_partition_by_depth(self, small_instance):
        layers = small_instance.forest().layers()
        assert [len(layer) for layer in layers] == [2, 3, 3]
        assert layers[0] == RegionSet.of((0, 19), (25, 30))

    @given(hierarchical_instances())
    def test_layers_partition_everything(self, instance):
        forest = instance.forest()
        combined = RegionSet.empty()
        for layer in forest.layers():
            assert combined.intersection(layer) == RegionSet.empty()
            combined = combined.union(layer)
        assert combined == instance.all_regions()


class TestDirectOperators:
    def test_directly_including(self, small_instance):
        forest = small_instance.forest()
        result = forest.directly_including(
            small_instance.region_set("A"), small_instance.region_set("D")
        )
        # A[25,30] directly includes D[26,28]; A[0,19] only includes D
        # regions through B and C.
        assert result == RegionSet.of((25, 30))

    def test_directly_included(self, small_instance):
        forest = small_instance.forest()
        result = forest.directly_included(
            small_instance.region_set("D"), small_instance.region_set("B")
        )
        assert result == RegionSet.of((2, 4))

    def test_direct_operators_ignore_foreign_regions(self, small_instance):
        forest = small_instance.forest()
        foreign = RegionSet.of((100, 200))
        assert forest.directly_including(foreign, small_instance.region_set("D")) == RegionSet.empty()
        assert forest.directly_included(foreign, small_instance.region_set("A")) == RegionSet.empty()

    @given(hierarchical_instances())
    def test_direct_implies_inclusion(self, instance):
        forest = instance.forest()
        universe = instance.all_regions()
        direct = forest.directly_including(universe, universe)
        assert direct == universe.including(universe).intersection(direct)


class TestAppended:
    """The live-ingestion fast path: extending a forest past its extent."""

    @staticmethod
    def _structure(forest):
        return [
            (
                region,
                forest.parent_of(region),
                tuple(forest.children_of(region)),
                forest.depth_of(region),
            )
            for region in forest.preorder
        ]

    @given(hierarchical_instances(), hierarchical_instances())
    def test_appended_matches_from_scratch(self, base, extra):
        old_regions = list(base.all_regions())
        new_min_left = min(r.left for r in extra.all_regions())
        offset = base._rights_max() + 1 - new_min_left
        new_regions = [r.shifted(offset) for r in extra.all_regions()]
        incremental = Forest.from_regions(old_regions).appended(new_regions)
        scratch = Forest.from_regions(old_regions + new_regions)
        assert self._structure(incremental) == self._structure(scratch)

    @given(hierarchical_instances(), hierarchical_instances())
    def test_appended_leaves_the_old_forest_untouched(self, base, extra):
        # Snapshot isolation depends on this: the old generation keeps
        # using its forest while the new one extends it.
        old_regions = list(base.all_regions())
        old = Forest.from_regions(old_regions)
        before = self._structure(old)
        new_min_left = min(r.left for r in extra.all_regions())
        offset = base._rights_max() + 1 - new_min_left
        old.appended([r.shifted(offset) for r in extra.all_regions()])
        assert self._structure(old) == before

    def test_appended_nothing_is_self(self):
        forest = Forest.from_regions([Region(0, 3), Region(1, 2)])
        assert forest.appended([]) is forest

    def test_warm_instance_append_carries_the_forest(self, small_instance):
        # Instance.appended on a forest-warmed instance must hand the
        # clone an equivalent forest without a cold rebuild.
        small_instance.forest()
        start = small_instance._rights_max() + 1
        added = [Region(start, start + 5), Region(start + 1, start + 3)]
        clone = small_instance.appended(
            {"A": [added[0]], "B": [added[1]]},
            small_instance.word_index,
        )
        assert clone._forest is not None
        assert self._structure(clone._forest) == self._structure(
            Forest.from_regions(clone.all_regions())
        )
