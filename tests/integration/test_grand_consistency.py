"""Grand consistency: random expressions × random instances.

The broadest property in the suite: for arbitrary expression trees over
the full operator surface and arbitrary hierarchical instances,

* the indexed engine agrees with the Definition 2.3 oracle,
* parse/print round trips are exact,
* memoization never changes results,
* core expressions agree with their FMFT translations.
"""

from hypothesis import given, settings

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.fmft.model import model_from_instance
from repro.fmft.semantics import satisfying_words
from repro.fmft.translate import algebra_to_formula
from repro.workloads.strategies import expressions, hierarchical_instances

INDEXED = Evaluator("indexed")
NAIVE = Evaluator("naive")
UNMEMOIZED = Evaluator("indexed", memoize=False)


class TestGrandConsistency:
    @given(
        expressions(patterns=("p",)),
        hierarchical_instances(patterns=("p",)),
    )
    @settings(max_examples=250, deadline=None)
    def test_indexed_equals_oracle(self, expr, instance):
        assert INDEXED.evaluate(expr, instance) == NAIVE.evaluate(expr, instance)

    @given(expressions(patterns=("p", "q")))
    @settings(max_examples=250)
    def test_parse_print_round_trip(self, expr):
        assert parse(to_text(expr)) == expr
        assert parse(to_text(expr, unicode_ops=True)) == expr

    @given(
        expressions(patterns=("p",)),
        hierarchical_instances(patterns=("p",)),
    )
    @settings(max_examples=100, deadline=None)
    def test_memoization_transparent(self, expr, instance):
        assert INDEXED.evaluate(expr, instance) == UNMEMOIZED.evaluate(
            expr, instance
        )

    @given(
        expressions(patterns=("p",), extended=False, max_depth=2),
        hierarchical_instances(patterns=("p",), max_trees=2),
    )
    @settings(max_examples=100, deadline=None)
    def test_core_expressions_agree_with_fmft(self, expr, instance):
        assert A.is_core(expr)
        model, region_of_word = model_from_instance(instance, patterns=("p",))
        words = satisfying_words(algebra_to_formula(expr), model)
        assert {region_of_word[w] for w in words} == set(
            INDEXED.evaluate(expr, instance)
        )
