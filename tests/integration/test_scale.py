"""Scale smoke: the full pipeline on corpus-sized inputs.

Not a benchmark — wall time stays in CI range — but large enough that
quadratic accidents or recursion limits would show.
"""

import random

from repro.algebra.evaluator import evaluate
from repro.core.regionset import RegionSet
from repro.engine.corpus import Corpus
from repro.engine.session import Engine
from repro.engine.sourcecode import generate_program_source
from repro.rig.graph import figure_1_rig
from repro.workloads.corpora import generate_play
from repro.workloads.generators import balanced_tree, nested_tower


class TestScale:
    def test_large_source_file(self):
        rng = random.Random(4096)
        source = generate_program_source(
            rng, procedures=400, max_nesting=8, max_vars=5
        )
        engine = Engine.from_source(source)
        stats = engine.statistics()
        assert stats["regions"]["Proc"] == 400
        assert figure_1_rig().satisfied_by(engine.instance)
        defining = engine.query('Proc dcontaining Proc_body dcontaining (Var @ "x")')
        containing = engine.query('Proc containing (Var @ "x")')
        assert defining.difference(containing) == RegionSet.empty()

    def test_large_play_corpus(self):
        rng = random.Random(8192)
        corpus = Corpus()
        for i in range(8):
            corpus.add(
                generate_play(rng, acts=3, scenes_per_act=4, speeches_per_scene=6),
                name=f"play{i}",
            )
        engine = corpus.engine()
        assert engine.statistics()["total"] > 2000
        counts = corpus.count_by_document(corpus.query("scene"))
        assert sum(counts.values()) == 8 * 12

    def test_deep_tower_operations(self):
        tower = nested_tower(600, ("R0", "R1"))
        assert tower.nesting_depth() == 600
        direct = evaluate("R0 dcontaining R1", tower)
        assert len(direct) == 300
        layers = tower.forest().layers()
        assert len(layers) == 600

    def test_wide_tree_operations(self):
        tree = balanced_tree(5, 6, ("R0", "R1"))  # 1555 regions
        assert len(tree) == 1 + 6 + 36 + 216 + 1296
        result = evaluate("R1 dwithin R0", tree)
        # Levels alternate R0/R1: every R1 node's parent is an R0 node.
        assert result == tree.region_set("R1")

    def test_big_index_round_trip(self, tmp_path):
        rng = random.Random(11)
        engine = Engine.from_source(
            generate_program_source(rng, procedures=150, max_nesting=6)
        )
        path = tmp_path / "big.index.json"
        engine.save(path)
        loaded = Engine.load(path)
        assert loaded.query("Proc") == engine.query("Proc")
        assert len(loaded.query('Var @ "x"')) == len(engine.query('Var @ "x"'))
