"""Every example script must run cleanly — deliverable insurance."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parents[2] / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    proc = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout.strip(), "examples must narrate what they do"


def test_all_six_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "source_code_queries.py",
        "sgml_play.py",
        "theory_tour.py",
        "corpus_search.py",
        "dictionary_lookup.py",
    } <= names
