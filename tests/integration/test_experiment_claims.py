"""Regression locks for the EXPERIMENTS.md claims.

The benchmark harness measures times; these tests pin the *deterministic*
part of every experiment's claim — who computes what, which rewrites
fire, where the constructions sit — so a regression in any claim fails
fast in the unit suite rather than silently skewing a benchmark.
"""

import random

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.algebra.programs import (
    direct_chain_program,
    direct_chain_program_corrected,
    direct_including_program,
)
from repro.core.regionset import RegionSet
from repro.engine.session import Engine
from repro.engine.sourcecode import generate_program_source
from repro.rig.graph import figure_1_rig
from repro.rig.minimal_set import minimal_set_single_pair
from repro.workloads.generators import (
    TreeNode,
    figure_2_instance,
    figure_3_instance,
    instance_from_trees,
)


class TestE1Claims:
    def test_rewrite_drops_exactly_one_operation(self):
        engine_plan = Engine.from_source(
            generate_program_source(random.Random(0), procedures=10)
        ).explain("Name within Proc_header within Proc within Program")
        assert A.size(engine_plan.original) == 3
        assert A.size(engine_plan.optimized) == 2
        assert engine_plan.optimized == parse(
            "Name within Proc_header within Program"
        )


class TestE6Claims:
    def test_tower_direct_inclusion_shape(self):
        for depth in (16, 64):
            tower = figure_2_instance(depth)
            result = evaluate("B dcontaining A", tower)
            assert len(result) == depth // 2
            program = direct_including_program(
                tower, tower.region_set("B"), tower.region_set("A")
            )
            assert program.regions == result
            assert program.iterations == depth // 2  # one per B-layer


class TestE7Claims:
    def test_family_selects_exactly_the_middle(self):
        for k in (4, 16):
            family = figure_3_instance(k)
            result = evaluate("bi(C, B, A)", family)
            middle = sorted(family.region_set("C"), key=lambda r: r.left)[2 * k]
            assert result == RegionSet([middle])


class TestE9Claims:
    def test_printed_program_is_sound_but_incomplete(self):
        tree = TreeNode(
            "R1", [TreeNode("R0", [TreeNode("R1", [TreeNode("R2")])])]
        )
        instance = instance_from_trees([tree], names=("R0", "R1", "R2"))
        native = evaluate("R0 dcontaining R1 dcontaining R2", instance)
        printed = direct_chain_program(instance, ["R0", "R1", "R2"]).regions
        corrected = direct_chain_program_corrected(
            instance, ["R0", "R1", "R2"]
        ).regions
        assert printed.difference(native) == RegionSet.empty()  # sound
        assert printed != native  # incomplete (the documented miss)
        assert corrected == native  # our variant is exact

    def test_corrected_degenerates_to_single_program_at_n2(self, small_instance):
        chain = direct_chain_program_corrected(small_instance, ["A", "D"])
        single = direct_including_program(
            small_instance,
            small_instance.region_set("A"),
            small_instance.region_set("D"),
        )
        assert chain.regions == single.regions


class TestE10Claims:
    def test_min_cut_cover_is_proper_subset_of_all_names(self):
        rig = figure_1_rig()
        cover = minimal_set_single_pair(rig, "Proc", "Var")
        assert cover
        assert len(cover) < len(rig.names)

    def test_restricted_program_is_exact(self):
        rng = random.Random(5)
        instance = Engine.from_source(
            generate_program_source(rng, procedures=30, max_nesting=5)
        ).instance
        cover = minimal_set_single_pair(figure_1_rig(), "Proc", "Var")
        restricted = direct_including_program(
            instance,
            instance.region_set("Proc"),
            instance.region_set("Var"),
            tuple(cover),
        )
        assert restricted.regions == evaluate("Proc dcontaining Var", instance)


class TestE11Claims:
    def test_relational_formulations_agree_with_native(self):
        from repro.algebra.relational import (
            relational_both_included,
            relational_directly_including,
        )

        family = figure_3_instance(3)
        assert relational_both_included(
            family.region_set("C"), family.region_set("B"), family.region_set("A")
        ) == evaluate("bi(C, B, A)", family)
        tower = figure_2_instance(10)
        assert relational_directly_including(
            tower, tower.region_set("B"), tower.region_set("A")
        ) == evaluate("B dcontaining A", tower)
