"""Metamorphic properties: invariances every layer must respect.

The paper's Section 3 observation — "the operators in the region
algebra test the relative location of regions, but the exact position
of region endpoints is not explicitly used" — yields strong metamorphic
tests: translating all positions, or round-tripping an instance through
its tree model, must not change any query's (relative) answer.
"""

from hypothesis import given, settings

from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.core.regionset import RegionSet
from repro.fmft.model import instance_from_model, model_from_instance
from tests.conftest import hierarchical_instances

QUERIES = [
    "R0 containing R1",
    "R0 within R1 before R2",
    "R0 dcontaining R1",
    "R1 dwithin R0",
    "bi(R0, R1, R2)",
    'R0 @ "p" except (R1 union R2)',
    "R0 not containing R1",
]


class TestShiftInvariance:
    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=60, deadline=None)
    def test_results_shift_with_the_instance(self, instance):
        offset = 1000
        shifted = instance.shifted(offset)
        for query in QUERIES:
            expr = parse(query)
            expected = RegionSet(
                r.shifted(offset) for r in evaluate(expr, instance)
            )
            assert evaluate(expr, shifted) == expected, query


class TestModelRoundTripInvariance:
    """instance → model → instance preserves every query, relative to
    the pre-order correspondence of regions."""

    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=40, deadline=None)
    def test_query_results_correspond(self, instance):
        model, region_of_word = model_from_instance(instance, patterns=("p",))
        rebuilt, word_to_region = instance_from_model(model)
        # The region correspondence between original and rebuilt.
        correspondence = {
            region_of_word[word]: word_to_region[word] for word in model.words
        }
        for query in QUERIES:
            expr = parse(query)
            original = {correspondence[r] for r in evaluate(expr, instance)}
            rebuilt_result = set(evaluate(expr, rebuilt))
            assert original == rebuilt_result, query


class TestDeletionMonotonicityOfNames:
    """Renaming the index's declaration order must never matter."""

    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=40, deadline=None)
    def test_name_declaration_order_irrelevant(self, instance):
        from repro.core.instance import Instance

        reordered = Instance(
            {
                name: instance.region_set(name)
                for name in reversed(instance.names)
            },
            instance.word_index,
            validate=False,
        )
        for query in QUERIES:
            expr = parse(query)
            assert evaluate(expr, instance) == evaluate(expr, reordered), query
