"""End-to-end walkthrough of the paper's narrative on real documents.

Each test follows one of the paper's worked examples, from raw text to
query result, across every layer of the library: parsing/indexing,
algebra evaluation, RIG optimization, FMFT translation, and the
extended operators.
"""

import random

import pytest

from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.algebra.programs import direct_chain_program_corrected
from repro.core.regionset import RegionSet
from repro.engine.session import Engine
from repro.engine.sourcecode import generate_program_source
from repro.fmft.model import model_from_instance
from repro.fmft.semantics import satisfying_words
from repro.fmft.translate import algebra_to_formula
from repro.optimize.equivalence import check_equivalence
from repro.rig.graph import figure_1_rig

SOURCE = """program Main {
    var x;
    var y;
    proc First {
        var x;
        var y;
        proc Deep {
            var x;
        }
    }
    proc Second {
        var y;
        var x;
    }
}
"""


@pytest.fixture
def engine():
    return Engine.from_source(SOURCE)


class TestSectionTwoTwo:
    """The RIG example: e1 and e2 retrieve the names of all procedures."""

    def test_e1_and_e2_agree_on_program_files(self, engine):
        e1 = "Name within Proc_header within Proc within Program"
        e2 = "Name within Proc_header within Program"
        r1, r2 = engine.query(e1), engine.query(e2)
        assert r1 == r2
        assert set(engine.extract_all(r1)) == {"First", "Deep", "Second"}

    def test_equivalence_is_rig_relative(self):
        e1 = parse("Name within Proc_header within Proc within Program")
        e2 = parse("Name within Proc_header within Program")
        assert check_equivalence(e1, e2, rig=figure_1_rig(), max_nodes=4).equivalent
        assert not check_equivalence(e1, e2, max_nodes=4).equivalent

    def test_optimizer_realizes_the_rewrite(self, engine):
        plan = engine.explain(
            "Name within Proc_header within Proc within Program"
        )
        assert plan.optimized == parse("Name within Proc_header within Program")


class TestSectionFiveOne:
    """Direct inclusion: 'find the procedures that define variable x'."""

    def test_plain_inclusion_overshoots(self, engine):
        # First does not define x at top level only — it does define x.
        # The deep proc defines x; the wrong query also selects procs
        # whose *nested* procs define x.
        wrong = engine.query('Proc containing Proc_body containing (Var @ "x")')
        right = engine.query('Proc dcontaining Proc_body dcontaining (Var @ "x")')
        assert right.difference(wrong) == RegionSet.empty()
        names = {
            engine.extract(r).split()[1]
            for r in engine.query("Proc containing Name")
        }
        assert names  # sanity

    def test_direct_query_selects_defining_procs_only(self, engine):
        right = engine.query('Proc dcontaining Proc_body dcontaining (Var @ "x")')
        texts = engine.extract_all(right)
        assert len(right) == 3  # First, Deep, Second all define x directly
        assert all("var x;" in text for text in texts)

    def test_section_six_program_agrees(self, engine):
        instance = engine.instance
        result = direct_chain_program_corrected(
            instance, ["Proc", "Proc_body", "Var"]
        )
        native = evaluate("Proc dcontaining Proc_body dcontaining Var", instance)
        assert result.regions == native


class TestSectionFiveTwo:
    """Both-included: 'procedures defining x before y'."""

    def test_bi_vs_wrong_order_query(self, engine):
        bi = engine.query('bi(Proc_body, Var @ "x", Var @ "y")')
        wrong = engine.query('Proc_body containing (Var @ "x" before Var @ "y")')
        # First's body has x before y; Second's body has y before x but
        # the naive query still sees a cross-procedure x-before-y pair.
        assert len(bi) == 1
        assert bi.difference(wrong) == RegionSet.empty()
        assert wrong != bi

    def test_document_level_query(self):
        rng = random.Random(0)
        from repro.workloads.corpora import generate_play

        engine = Engine.from_tagged_text(generate_play(rng, acts=2))
        scenes = engine.query('bi(scene, speaker @ "ROMEO", speaker @ "JULIET")')
        for scene in scenes:
            text = engine.extract(scene)
            assert text.index("ROMEO") < text.rindex("JULIET")


class TestSectionThree:
    """The FMFT view of a real source file."""

    def test_translation_agrees_on_real_code(self, engine):
        instance = engine.instance
        model, region_of_word = model_from_instance(instance, patterns=("x",))
        for query in (
            "Proc within Program",
            'Var @ "x"',
            "Proc_header before Proc_body",
        ):
            expr = parse(query)
            words = satisfying_words(algebra_to_formula(expr), model)
            assert {region_of_word[w] for w in words} == set(
                evaluate(expr, instance)
            )


class TestScale:
    def test_generated_corpus_pipeline(self):
        rng = random.Random(5)
        source = generate_program_source(rng, procedures=30, max_nesting=5)
        engine = Engine.from_source(source)
        procs = engine.query("Proc")
        direct = engine.query("Proc dcontaining Proc_body dcontaining Var")
        assert direct.difference(procs) == RegionSet.empty()
        # Persistence at scale.
        stats = engine.statistics()
        assert stats["regions"]["Proc"] == len(procs)
