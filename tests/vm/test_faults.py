"""Fault injection through the compiled path (the ``vm.kernel`` point).

The chaos harness (repro chaos) relies on two properties checked here:
the VM traverses ``vm.kernel`` once per instruction *and* mirrors the
interpreter's ``evaluator.step`` traversals, so injected fault budgets
line up across both execution paths; and latency injection never
changes results (zero divergence, interpreter as oracle).
"""

import pytest

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator
from repro.errors import FaultInjected
from repro.faults.registry import FAULT_POINTS, FaultSpec, injected_faults
from repro.obs.metrics import MetricsRegistry
from repro.workloads.generators import random_instance

SHARED = A.Union(
    A.IncludedIn(A.NameRef("R0"), A.NameRef("R1")),
    A.IncludedIn(A.NameRef("R0"), A.NameRef("R1")),
)


@pytest.fixture(scope="module")
def instance():
    import random

    return random_instance(
        random.Random(55), ("R0", "R1", "R2"), max_nodes=50, patterns=("x",)
    )


def test_vm_kernel_is_a_registered_point():
    assert "vm.kernel" in FAULT_POINTS


def test_error_mode_aborts_compiled_execution(instance):
    ev = Evaluator("indexed")
    with injected_faults(
        FaultSpec("vm.kernel", "error"), metrics=MetricsRegistry()
    ) as registry:
        with pytest.raises(FaultInjected):
            ev.evaluate(SHARED, instance)
        assert registry.fires(point="vm.kernel", mode="error") == 1


def test_interpreter_never_traverses_vm_kernel(instance):
    # With the VM off the point is dead: an always-fire spec is inert.
    ev = Evaluator("indexed", vm=False)
    expected = ev.evaluate(SHARED, instance)
    with injected_faults(
        FaultSpec("vm.kernel", "error"), metrics=MetricsRegistry()
    ) as registry:
        assert ev.evaluate(SHARED, instance) == expected
        assert registry.fires(point="vm.kernel") == 0


def test_latency_mode_zero_divergence(instance):
    oracle = Evaluator("indexed", vm=False).evaluate(SHARED, instance)
    ev = Evaluator("indexed")
    with injected_faults(
        FaultSpec("vm.kernel", "latency", latency=0.0),
        metrics=MetricsRegistry(),
    ) as registry:
        got = ev.evaluate(SHARED, instance)
        assert registry.fires(point="vm.kernel", mode="latency") == 4
    assert list(got) == list(oracle)


def test_evaluator_step_parity_with_interpreter(instance):
    # Chaos arms evaluator.step on both paths; the VM must traverse it
    # exactly as often as the memoizing interpreter (once per compiled
    # instruction == once per non-memoized interpreter dispatch).
    def count_steps(evaluator):
        with injected_faults(
            FaultSpec("evaluator.step", "latency", latency=0.0),
            metrics=MetricsRegistry(),
        ) as registry:
            evaluator.evaluate(SHARED, instance)
            return registry.fires(point="evaluator.step")

    vm_steps = count_steps(Evaluator("indexed"))
    interp_steps = count_steps(Evaluator("indexed", vm=False))
    assert vm_steps == interp_steps == 4


def test_error_spec_with_budget_then_clean_run(instance):
    # After the injected budget is spent the compiled path recovers.
    ev = Evaluator("indexed")
    oracle = Evaluator("indexed", vm=False).evaluate(SHARED, instance)
    with injected_faults(
        FaultSpec("vm.kernel", "error", max_fires=1),
        metrics=MetricsRegistry(),
    ):
        with pytest.raises(FaultInjected):
            ev.evaluate(SHARED, instance)
        assert list(ev.evaluate(SHARED, instance)) == list(oracle)
