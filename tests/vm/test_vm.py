"""The plan VM: compiler, program cache, stats mirroring, fallbacks.

The compiled path must be an invisible substitution for the memoizing
interpreter: same results, same ``EvalStats``, same error behaviour —
plus an inspectable program listing through ``explain``.
"""

import pytest

from repro.algebra import ast as A
from repro.algebra.evaluator import EvalStats, Evaluator
from repro.core.regionset import RegionSet
from repro.engine.session import Engine
from repro.errors import EvaluationError
from repro.obs.metrics import (
    VM_COMPILE_TOTAL,
    VM_FALLBACK_TOTAL,
    VM_KERNEL_INVOCATIONS_TOTAL,
    MetricsRegistry,
)
from repro.vm import compile_expr, execute
from repro.workloads.generators import random_instance

SOURCE = """program Main {
    var x;
    proc Alpha {
        var y;
        proc Beta { var x; }
    }
}
"""

# (Var ⊂ Proc) ∪ (Var ⊂ Proc): the right operand repeats the left, so
# the interpreter memoizes it and the compiler CSEs it to one register.
SHARED = A.Union(
    A.IncludedIn(A.NameRef("Var"), A.NameRef("Proc")),
    A.IncludedIn(A.NameRef("Var"), A.NameRef("Proc")),
)

QUERIES = [
    A.NameRef("Var"),
    A.Union(A.NameRef("Var"), A.NameRef("Proc")),
    A.Including(A.NameRef("Proc"), A.NameRef("Var")),
    A.IncludedIn(A.NameRef("Var"), A.NameRef("Proc")),
    A.Difference(A.NameRef("Var"), A.IncludedIn(A.NameRef("Var"), A.NameRef("Proc"))),
    A.Preceding(A.NameRef("Var"), A.NameRef("Proc")),
    A.Following(A.NameRef("Var"), A.NameRef("Proc")),
    A.Select("x", A.NameRef("Var")),
    A.DirectlyIncluding(A.NameRef("Proc"), A.NameRef("Proc_body")),
    A.BothIncluded(A.NameRef("Var"), A.NameRef("Proc"), A.NameRef("Proc")),
    SHARED,
]


@pytest.fixture(scope="module")
def instance():
    return Engine.from_source(SOURCE).instance


class TestCompiler:
    def test_linear_program_with_cse(self):
        program = compile_expr(SHARED)
        assert program is not None
        # NameRef(Var), NameRef(Proc), IncludedIn, Union — the repeated
        # subtree collapses to a register read.
        assert program.size == 4
        assert program.cse_hits == 1
        assert program.n_registers == 4
        listing = program.listing()
        assert listing[0] == "r0 = load_name 'Var'"
        assert listing[2] == "r2 = included_in r0, r1"
        assert listing[3] == "r3 = union r2, r2"

    def test_op_counts(self):
        program = compile_expr(SHARED)
        # Keyed by AST node label so vm_kernel_invocations_total lines
        # up with the interpreter's eval_node_seconds{op=...} labels.
        assert program.op_counts == {
            "NameRef": 2,
            "IncludedIn": 1,
            "Union": 1,
        }

    def test_unknown_node_is_uncompilable(self):
        class Exotic(A.Expr):
            pass

        assert compile_expr(Exotic()) is None
        assert compile_expr(A.Union(A.NameRef("Var"), Exotic())) is None

    def test_execute_matches_interpreter(self, instance):
        interp = Evaluator("indexed", vm=False)
        for expr in QUERIES:
            program = compile_expr(expr)
            assert program is not None, expr
            got = execute(program, instance)
            expected = interp.evaluate(expr, instance)
            assert list(got) == list(expected), expr

    def test_match_points_error_parity(self):
        # Abstract instances reject match-point queries with the same
        # message on both paths.
        import random

        abstract = random_instance(random.Random(3), ("R0",), max_nodes=5)
        program = compile_expr(A.MatchPoints("var"))
        with pytest.raises(EvaluationError, match="text-backed"):
            execute(program, abstract)
        with pytest.raises(EvaluationError, match="text-backed"):
            Evaluator("indexed", vm=False).evaluate(A.MatchPoints("var"), abstract)

    def test_match_points_on_text_instance(self, instance):
        # Text-backed instances answer match points on both paths.
        program = compile_expr(A.MatchPoints("var"))
        got = execute(program, instance)
        want = Evaluator("indexed", vm=False).evaluate(A.MatchPoints("var"), instance)
        assert list(got) == list(want)


class TestEvaluatorIntegration:
    def test_vm_enabled_gating(self):
        assert Evaluator("indexed").vm_enabled
        assert not Evaluator("indexed", vm=False).vm_enabled
        assert not Evaluator("naive").vm_enabled

    def test_stats_mirror_interpreter(self, instance):
        vm = Evaluator("indexed", metrics=MetricsRegistry())
        interp = Evaluator("indexed", metrics=MetricsRegistry(), vm=False)
        for expr in QUERIES:
            assert vm.evaluate(expr, instance) == interp.evaluate(expr, instance)
            got, want = vm.last_stats, interp.last_stats
            assert got.compiled and not want.compiled
            assert got.nodes_evaluated == want.nodes_evaluated, expr
            assert got.memo_hits == want.memo_hits, expr

    def test_shared_query_stats(self, instance):
        vm = Evaluator("indexed", metrics=MetricsRegistry())
        vm.evaluate(SHARED, instance)
        assert vm.last_stats == EvalStats(
            nodes_evaluated=5, memo_hits=1, compiled=True
        )

    def test_program_cache_hit(self, instance):
        ev = Evaluator("indexed", metrics=MetricsRegistry())
        assert not ev.program_cached(SHARED)
        program, cached = ev.compiled_program(SHARED)
        assert program is not None and not cached
        again, cached = ev.compiled_program(SHARED)
        assert again is program and cached
        assert ev.program_cached(SHARED)
        assert ev.metrics.counter(VM_COMPILE_TOTAL).value(outcome="hit") == 1
        assert ev.metrics.counter(VM_COMPILE_TOTAL).value(outcome="compiled") == 1

    def test_cache_evicts_lru(self):
        ev = Evaluator("indexed")
        ev.PROGRAM_CACHE_CAPACITY = 3
        exprs = [A.NameRef(f"N{i}") for i in range(5)]
        for expr in exprs:
            ev.compiled_program(expr)
        assert not ev.program_cached(exprs[0])
        assert not ev.program_cached(exprs[1])
        assert all(ev.program_cached(e) for e in exprs[2:])

    def test_memoize_off_falls_back(self, instance):
        ev = Evaluator("indexed", memoize=False, metrics=MetricsRegistry())
        ev.evaluate(SHARED, instance)
        assert not ev.last_stats.compiled
        # Without memoization the repeated subtree re-evaluates: more
        # nodes, no memo hits — the VM must not silently regain CSE.
        assert ev.last_stats.memo_hits == 0
        assert ev.metrics.counter(VM_FALLBACK_TOTAL).value(reason="memoize-off") == 1

    def test_uncompilable_falls_back(self, instance):
        class Exotic(A.Expr):
            def __eq__(self, other):
                return isinstance(other, Exotic)

            def __hash__(self):
                return hash(Exotic)

        ev = Evaluator("indexed", metrics=MetricsRegistry())
        with pytest.raises(EvaluationError, match="cannot evaluate"):
            ev.evaluate(Exotic(), instance)
        assert ev.metrics.counter(VM_FALLBACK_TOTAL).value(reason="uncompilable") == 1
        # The miss is cached: no recompilation on the next call.
        with pytest.raises(EvaluationError, match="cannot evaluate"):
            ev.evaluate(Exotic(), instance)
        assert ev.metrics.counter(VM_COMPILE_TOTAL).value(outcome="hit") == 1

    def test_kernel_invocation_metrics(self, instance):
        ev = Evaluator("indexed", metrics=MetricsRegistry())
        ev.evaluate(SHARED, instance)
        counter = ev.metrics.counter(VM_KERNEL_INVOCATIONS_TOTAL)
        assert counter.value(op="NameRef") == 2
        assert counter.value(op="IncludedIn") == 1
        assert counter.value(op="Union") == 1


class TestEngineExplain:
    def test_explain_lists_program(self):
        engine = Engine.from_source(SOURCE)
        plan = engine.explain("Var within Proc")
        assert plan.compiled
        assert plan.program
        assert any("included_in" in line for line in plan.program)
        assert "program:" in str(plan)

    def test_plan_equals_explain(self):
        engine = Engine.from_source(SOURCE)
        query = "Var within Proc"
        assert engine.plan(query) == engine.explain(query)

    def test_explain_reports_cache_hits_distinctly(self):
        engine = Engine.from_source(SOURCE)
        _, caches = engine.explain_with_caches("Var within Proc")
        assert caches == {"plan_cache_hit": False, "program_cache_hit": False}
        _, caches = engine.explain_with_caches("Var within Proc")
        assert caches == {"plan_cache_hit": True, "program_cache_hit": True}
        # A new query re-uses the cost model but not the program.
        _, caches = engine.explain_with_caches("Proc containing Var")
        assert caches == {"plan_cache_hit": True, "program_cache_hit": False}

    def test_vm_off_engine_interprets(self):
        engine = Engine.from_source(SOURCE)
        off = Engine(engine.instance, vm=False)
        plan = off.explain("Var within Proc")
        assert not plan.compiled
        assert plan.program == ()
        assert off.query("Var within Proc") == engine.query("Var within Proc")


class TestRandomInstances:
    def test_vm_matches_interpreter_on_random_instances(self):
        import random

        rng = random.Random(19)
        vm = Evaluator("indexed")
        interp = Evaluator("indexed", vm=False)
        for _ in range(6):
            instance = random_instance(
                rng, ("R0", "R1", "R2"), max_nodes=60, patterns=("x", "y")
            )
            for expr in (
                A.Including(A.NameRef("R0"), A.NameRef("R1")),
                A.IncludedIn(
                    A.NameRef("R2"),
                    A.Union(A.NameRef("R0"), A.NameRef("R1")),
                ),
                A.Preceding(A.NameRef("R0"), A.NameRef("R1")),
                SHARED.__class__(
                    A.IncludedIn(A.NameRef("R0"), A.NameRef("R1")),
                    A.IncludedIn(A.NameRef("R0"), A.NameRef("R1")),
                ),
            ):
                assert list(vm.evaluate(expr, instance)) == list(
                    interp.evaluate(expr, instance)
                ), expr
