"""Set-at-a-time kernels vs the RegionSet reference implementations.

Every kernel in :mod:`repro.vm.kernels` must be bit-identical to the
corresponding :class:`RegionSet` method (and, transitively, to the
naive quadratic oracles) — on random sets and, per ISSUE 10, on the
boundary shapes where galloping search earns its keep: empty operands,
single-region sets, fully-nested same-name towers, and the k-reduced
instances of Theorem 4.4.
"""

import random
from bisect import bisect_left, bisect_right

import pytest

from repro.core.regionset import Region, RegionSet
from repro.properties.reduction import (
    isomorphic_sibling_pairs,
    reduce_regions,
)
from repro.vm import kernels
from repro.workloads.generators import (
    flat_row,
    nested_tower,
    random_instance,
)

# (kernel, RegionSet method name, naive oracle name) for the semi-joins.
SEMI_JOINS = [
    (kernels.including, "including", "including_naive"),
    (kernels.included_in, "included_in", "included_in_naive"),
    (kernels.preceding, "preceding", "preceding_naive"),
    (kernels.following, "following", "following_naive"),
]

SET_OPS = [
    (kernels.union, "union"),
    (kernels.intersection, "intersection"),
    (kernels.difference, "difference"),
]


def random_set(rng, max_regions=30, span=60):
    """A random (possibly overlapping, possibly nested) region set."""
    pairs = []
    for _ in range(rng.randrange(max_regions + 1)):
        left = rng.randrange(span)
        right = left + rng.randrange(span - left) if left < span else left
        pairs.append((left, right))
    return RegionSet.of(*pairs)


def assert_same(got: RegionSet, expected: RegionSet, label: str):
    assert list(got) == list(expected), label
    assert got == expected, label


class TestGallop:
    def test_gallop_right_matches_bisect(self):
        rng = random.Random(41)
        for _ in range(200):
            arr = sorted(rng.randrange(50) for _ in range(rng.randrange(40)))
            x = rng.randrange(-5, 55)
            lo = rng.randrange(len(arr) + 1)
            assert kernels.gallop_right(arr, x, lo) == max(
                lo, bisect_right(arr, x)
            ), (arr, x, lo)

    def test_gallop_left_matches_bisect(self):
        rng = random.Random(42)
        for _ in range(200):
            arr = sorted(rng.randrange(50) for _ in range(rng.randrange(40)))
            x = rng.randrange(-5, 55)
            lo = rng.randrange(len(arr) + 1)
            assert kernels.gallop_left(arr, x, lo) == max(
                lo, bisect_left(arr, x)
            ), (arr, x, lo)

    def test_gallop_past_end(self):
        arr = [1, 2, 3]
        assert kernels.gallop_right(arr, 10, 0) == 3
        assert kernels.gallop_left(arr, 10, 0) == 3
        assert kernels.gallop_right(arr, 10, 3) == 3
        assert kernels.gallop_right([], 0, 0) == 0
        assert kernels.gallop_left([], 0, 0) == 0


class TestRandomSets:
    def test_set_ops_match_reference(self):
        rng = random.Random(1995)
        for case in range(80):
            a, b = random_set(rng), random_set(rng)
            for kernel, method in SET_OPS:
                assert_same(
                    kernel(a, b),
                    getattr(a, method)(b),
                    f"case={case} op={method} a={a!r} b={b!r}",
                )

    def test_semi_joins_match_reference_and_naive(self):
        rng = random.Random(2026)
        for case in range(80):
            a, b = random_set(rng), random_set(rng)
            for kernel, method, naive in SEMI_JOINS:
                got = kernel(a, b)
                label = f"case={case} op={method} a={a!r} b={b!r}"
                assert_same(got, getattr(a, method)(b), label)
                assert_same(got, getattr(a, naive)(b), label)

    def test_order_bounds_match_scan(self):
        rng = random.Random(7)
        for _ in range(60):
            a = random_set(rng)
            bound = rng.randrange(-1, 65)
            pre = kernels.order_bound_preceding(a, bound)
            fol = kernels.order_bound_following(a, bound)
            assert list(pre) == [r for r in a if r.right < bound]
            assert list(fol) == [r for r in a if r.left > bound]

    def test_select_matches_reference(self):
        rng = random.Random(11)
        for _ in range(40):
            a = random_set(rng)
            pred = lambda r: (r.left + r.right) % 3 == 0
            assert_same(kernels.select(a, pred), a.select(pred), repr(a))


class TestBoundaries:
    """The ISSUE 10 checklist: empty / singleton / towers / k-reduced."""

    def test_empty_operands(self):
        empty = RegionSet.empty()
        full = RegionSet.of((0, 3), (1, 2), (5, 9))
        for kernel, method in SET_OPS:
            assert_same(kernel(empty, full), getattr(empty, method)(full), method)
            assert_same(kernel(full, empty), getattr(full, method)(empty), method)
            assert_same(kernel(empty, empty), getattr(empty, method)(empty), method)
        for kernel, method, _ in SEMI_JOINS:
            assert kernel(empty, full) == RegionSet.empty()
            assert kernel(full, empty) == RegionSet.empty()
            assert kernel(empty, empty) == RegionSet.empty()

    def test_single_region_sets(self):
        cases = [
            (RegionSet.of((2, 5)), RegionSet.of((2, 5))),  # identical
            (RegionSet.of((2, 5)), RegionSet.of((1, 6))),  # nested
            (RegionSet.of((2, 5)), RegionSet.of((3, 4))),  # nests
            (RegionSet.of((2, 5)), RegionSet.of((6, 9))),  # before
            (RegionSet.of((6, 9)), RegionSet.of((2, 5))),  # after
            (RegionSet.of((2, 5)), RegionSet.of((4, 9))),  # overlap
        ]
        for a, b in cases:
            for kernel, method in SET_OPS:
                assert_same(kernel(a, b), getattr(a, method)(b), method)
            for kernel, method, naive in SEMI_JOINS:
                assert_same(kernel(a, b), getattr(a, naive)(b), method)

    def test_fully_nested_same_name_tower(self):
        # depth-24 chain of one name: every region contains every deeper
        # one, the worst case for the containment frontiers.
        instance = nested_tower(24, ("R",))
        tower = instance.region_set("R")
        assert len(tower) == 24
        for kernel, method, naive in SEMI_JOINS:
            assert_same(
                kernel(tower, tower), getattr(tower, naive)(tower), method
            )
        # All but the innermost region contain another; all but the
        # outermost are contained in another.
        assert len(kernels.including(tower, tower)) == 23
        assert len(kernels.included_in(tower, tower)) == 23
        assert kernels.preceding(tower, tower) == RegionSet.empty()
        assert kernels.following(tower, tower) == RegionSet.empty()

    def test_flat_row_disjoint_siblings(self):
        instance = flat_row(16, "R")
        row = instance.region_set("R")
        # Containment is proper: no disjoint sibling contains another.
        assert kernels.including(row, row) == RegionSet.empty()
        assert kernels.included_in(row, row) == RegionSet.empty()
        assert len(kernels.preceding(row, row)) == 15
        assert len(kernels.following(row, row)) == 15

    def test_k_reduced_instances(self):
        # Theorem 4.4: reduction sequences shrink an instance while
        # preserving (k ctr)-expressible behaviour.  The kernels must
        # agree with the naive oracles at every step of the sequence.
        rng = random.Random(44)
        instance = random_instance(
            rng, ("R0", "R1"), max_nodes=40, max_depth=3, max_children=4
        )
        for step in range(4):
            pairs = isomorphic_sibling_pairs(instance)
            if not pairs:
                break
            keep, remove = pairs[0]
            instance, _ = reduce_regions(instance, keep, remove)
            a = instance.region_set("R0")
            b = instance.region_set("R1")
            for kernel, method, naive in SEMI_JOINS:
                assert_same(
                    kernel(a, b),
                    getattr(a, naive)(b),
                    f"step={step} op={method}",
                )
            for kernel, method in SET_OPS:
                assert_same(
                    kernel(a, b), getattr(a, method)(b), f"step={step}"
                )


class TestTopLayerSweep:
    def test_top_layer_matches_semi_join_formula(self):
        # top_layer(S) == S - (S included-in S): the O(n) layer peel
        # must agree with the algebraic definition.
        rng = random.Random(8)
        for _ in range(60):
            s = random_set(rng)
            formula = kernels.difference(s, kernels.included_in(s, s))
            assert_same(s.top_layer(), formula, repr(s))

    def test_top_layer_tower_and_row(self):
        tower = nested_tower(10, ("R",)).region_set("R")
        assert list(tower.top_layer()) == [min(tower, key=lambda r: r.left)]
        row = flat_row(10, "R").region_set("R")
        assert row.top_layer() == row
