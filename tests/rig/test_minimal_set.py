"""The Section 6 minimal-set problem and the Proposition 6.1 reduction."""

import random

import pytest

from repro.errors import OptimizationError
from repro.rig.graph import RegionInclusionGraph, figure_1_rig
from repro.rig.minimal_set import (
    covers,
    minimal_set_bruteforce,
    minimal_set_greedy,
    minimal_set_single_pair,
    minimum_vertex_cover_bruteforce,
    vertex_cover_to_minimal_set,
)


class TestCovers:
    @pytest.fixture
    def rig(self):
        return figure_1_rig()

    def test_direct_edges_are_vacuous(self, rig):
        # Program → Prog_header is a direct edge with no longer walk:
        # nothing can interpose, so the empty set covers the pair.
        assert covers(rig, ["Program", "Prog_header"], set())
        # Proc → Proc_header is direct too, but nested procedures give it
        # interior walks, so it still needs covering.
        assert not covers(rig, ["Proc", "Proc_header"], set())
        assert covers(rig, ["Proc", "Proc_header"], {"Proc_body"})

    def test_interposable_pair_needs_cover(self, rig):
        # Program → … → Name passes headers.
        assert not covers(rig, ["Program", "Name"], set())
        assert covers(rig, ["Program", "Name"], {"Prog_header", "Proc_header"})

    def test_chain_requires_all_pairs(self, rig):
        chain = ["Program", "Proc", "Var"]
        assert not covers(rig, chain, {"Prog_body"})
        assert covers(rig, chain, {"Prog_body", "Proc_body"})

    def test_short_chain_rejected(self, rig):
        with pytest.raises(OptimizationError):
            covers(rig, ["Program"], set())


class TestBruteForce:
    def test_minimal_cover_for_program_to_var(self):
        rig = figure_1_rig()
        result = minimal_set_bruteforce(rig, ["Program", "Var"])
        # Prog_body alone blocks Program→Var interiors? No: the walk
        # Program→Prog_body→Var needs Prog_body; every walk passes it.
        assert result == frozenset({"Prog_body"})

    def test_max_size_can_fail(self):
        rig = RegionInclusionGraph(
            ("S", "T", "a", "b"),
            [("S", "a"), ("a", "T"), ("S", "b"), ("b", "T")],
        )
        assert minimal_set_bruteforce(rig, ["S", "T"], max_size=1) is None
        assert minimal_set_bruteforce(rig, ["S", "T"]) == frozenset({"a", "b"})

    def test_vacuous_chain_is_empty(self):
        rig = RegionInclusionGraph(("A", "B"), [("A", "B")])
        assert minimal_set_bruteforce(rig, ["A", "B"]) == frozenset()


class TestSinglePairMinCut:
    def test_matches_bruteforce_on_figure_1(self):
        rig = figure_1_rig()
        for source, target in [("Program", "Var"), ("Program", "Name"), ("Proc", "Var")]:
            cut = minimal_set_single_pair(rig, source, target)
            brute = minimal_set_bruteforce(rig, [source, target])
            assert covers(rig, [source, target], cut)
            assert len(cut) == len(brute)

    def test_no_path_gives_empty(self):
        rig = RegionInclusionGraph(("A", "B"), [])
        assert minimal_set_single_pair(rig, "A", "B") == frozenset()

    def test_direct_edge_is_removed_first(self):
        rig = RegionInclusionGraph(("A", "B"), [("A", "B")])
        assert minimal_set_single_pair(rig, "A", "B") == frozenset()

    def test_matches_bruteforce_on_random_dags(self):
        rng = random.Random(99)
        for _ in range(30):
            nodes = [f"N{i}" for i in range(rng.randint(4, 8))]
            edges = []
            for i, u in enumerate(nodes):
                for v in nodes[i + 1 :]:
                    if rng.random() < 0.4:
                        edges.append((u, v))
            rig = RegionInclusionGraph(nodes, edges)
            source, target = nodes[0], nodes[-1]
            cut = minimal_set_single_pair(rig, source, target)
            brute = minimal_set_bruteforce(rig, [source, target])
            assert covers(rig, [source, target], cut), (edges, cut)
            assert len(cut) == len(brute), (edges, cut, brute)


class TestGreedy:
    def test_greedy_always_covers(self):
        rig = figure_1_rig()
        chain = ["Program", "Proc", "Var"]
        subset = minimal_set_greedy(rig, chain)
        assert covers(rig, chain, subset)

    def test_greedy_at_most_sum_of_pair_optima(self):
        rig = figure_1_rig()
        chain = ["Program", "Proc", "Var"]
        greedy = minimal_set_greedy(rig, chain)
        pair_sum = sum(
            len(minimal_set_single_pair(rig, a, b))
            for a, b in zip(chain, chain[1:])
        )
        assert len(greedy) <= pair_sum


class TestVertexCoverReduction:
    """Proposition 6.1: the minimal set problem is NP-complete, by
    reduction from vertex cover.  The reduction is size-preserving."""

    def test_triangle(self):
        vertices = ["u", "v", "w"]
        edges = [("u", "v"), ("v", "w"), ("u", "w")]
        rig, chain = vertex_cover_to_minimal_set(vertices, edges)
        minimal = minimal_set_bruteforce(rig, chain)
        assert minimal is not None
        assert len(minimal) == len(minimum_vertex_cover_bruteforce(vertices, edges))
        assert len(minimal) == 2

    def test_star_graph(self):
        vertices = ["c", "a", "b", "d"]
        edges = [("c", "a"), ("c", "b"), ("c", "d")]
        rig, chain = vertex_cover_to_minimal_set(vertices, edges)
        minimal = minimal_set_bruteforce(rig, chain)
        assert minimal == frozenset({"c"})

    def test_random_graphs_preserve_optimum(self):
        rng = random.Random(7)
        for _ in range(20):
            count = rng.randint(2, 5)
            vertices = [f"v{i}" for i in range(count)]
            edges = sorted(
                {
                    tuple(sorted(rng.sample(vertices, 2)))
                    for _ in range(rng.randint(1, 6))
                }
            )
            rig, chain = vertex_cover_to_minimal_set(vertices, edges)
            minimal = minimal_set_bruteforce(rig, chain)
            cover = minimum_vertex_cover_bruteforce(vertices, edges)
            assert minimal is not None
            assert len(minimal) == len(cover), (edges, minimal, cover)

    def test_cover_solutions_transfer(self):
        vertices = ["u", "v"]
        edges = [("u", "v")]
        rig, chain = vertex_cover_to_minimal_set(vertices, edges)
        assert covers(rig, chain, {"u"})
        assert covers(rig, chain, {"v"})
        assert not covers(rig, chain, set())

    def test_no_edges_rejected(self):
        with pytest.raises(OptimizationError):
            vertex_cover_to_minimal_set(["u"], [])
