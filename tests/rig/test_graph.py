"""Region inclusion graphs: structure, satisfaction, path queries."""

import pytest

from repro.core.instance import Instance
from repro.core.regionset import RegionSet
from repro.errors import UnknownRegionNameError
from repro.rig.graph import RegionInclusionGraph, figure_1_rig
from repro.workloads.generators import figure_2_instance


class TestConstruction:
    def test_nodes_and_edges(self):
        rig = RegionInclusionGraph(("A", "B"), [("A", "B")])
        assert rig.names == ("A", "B")
        assert rig.has_edge("A", "B")
        assert not rig.has_edge("B", "A")

    def test_unknown_edge_endpoint_rejected(self):
        with pytest.raises(UnknownRegionNameError):
            RegionInclusionGraph(("A",), [("A", "B")])

    def test_successors_predecessors(self):
        rig = figure_1_rig()
        assert set(rig.successors("Proc")) == {"Proc_header", "Proc_body"}
        assert set(rig.predecessors("Name")) == {"Prog_header", "Proc_header"}

    def test_contains_and_equality(self):
        a = RegionInclusionGraph(("A", "B"), [("A", "B")])
        b = RegionInclusionGraph(("B", "A"), [("A", "B")])
        assert "A" in a
        assert a == b
        assert hash(a) == hash(b)

    def test_as_networkx_returns_copy(self):
        rig = figure_1_rig()
        graph = rig.as_networkx()
        graph.remove_node("Proc")
        assert "Proc" in rig


class TestFigureOne:
    def test_edges_match_the_paper(self):
        rig = figure_1_rig()
        assert rig.has_edge("Program", "Prog_header")
        assert rig.has_edge("Prog_body", "Proc")
        assert rig.has_edge("Proc_body", "Proc")  # nested procedures
        assert rig.has_edge("Proc_header", "Name")
        assert not rig.has_edge("Program", "Name")

    def test_cycle_through_proc(self):
        rig = figure_1_rig()
        assert not rig.is_acyclic()
        assert rig.self_nesting_bound("Proc") is None
        assert rig.self_nesting_bound("Program") == 1

    def test_longest_path_requires_acyclic(self):
        with pytest.raises(ValueError):
            figure_1_rig().longest_path_length()


class TestAcyclicProperties:
    def test_longest_path(self):
        rig = RegionInclusionGraph(
            ("A", "B", "C", "D"), [("A", "B"), ("B", "C"), ("A", "D")]
        )
        assert rig.is_acyclic()
        assert rig.longest_path_length() == 3

    def test_self_loop_unbounded(self):
        rig = RegionInclusionGraph(("A",), [("A", "A")])
        assert rig.self_nesting_bound("A") is None


class TestPathQueries:
    @pytest.fixture
    def rig(self):
        return figure_1_rig()

    def test_paths_avoiding_blocked(self, rig):
        # Program → … → Name always passes a header.
        assert rig.paths_avoiding("Program", "Name", set())
        assert not rig.paths_avoiding(
            "Program", "Name", {"Prog_header", "Proc_header"}
        )

    def test_direct_edge_is_not_a_length_two_walk(self, rig):
        # Program → Prog_header is direct, and no longer walk exists —
        # but Proc → Proc_header also has the interior walk through a
        # nested Proc, so it still counts.
        assert not rig.paths_avoiding("Program", "Prog_header", set())
        assert rig.paths_avoiding("Proc", "Proc_header", set())

    def test_paths_avoiding_respects_cycles(self, rig):
        # Proc reaches Proc through Proc_body.
        assert rig.paths_avoiding("Proc", "Proc", set())
        assert not rig.paths_avoiding("Proc", "Proc", {"Proc_body"})

    def test_interior_nodes(self, rig):
        interior = rig.interior_nodes("Program", "Name")
        assert "Prog_header" in interior
        assert "Proc" in interior
        assert "Var" not in interior


class TestSatisfaction:
    def test_satisfied_by_valid_instance(self, small_instance):
        rig = RegionInclusionGraph(
            ("A", "B", "C", "D"),
            [("A", "B"), ("A", "C"), ("A", "D"), ("B", "D"), ("C", "B"), ("C", "D")],
        )
        assert rig.satisfied_by(small_instance)

    def test_violations_reported(self, small_instance):
        rig = RegionInclusionGraph(("A", "B", "C", "D"), [("A", "B"), ("A", "C")])
        violations = set(small_instance and rig.violations(small_instance))
        assert ("B", "D") in violations

    def test_unknown_nonempty_name_fails(self):
        instance = Instance({"X": RegionSet.of((0, 1))})
        rig = RegionInclusionGraph(("A",), [])
        assert not rig.satisfied_by(instance)

    def test_unknown_empty_name_is_fine(self):
        instance = Instance({"X": RegionSet.empty(), "A": RegionSet.of((0, 1))})
        rig = RegionInclusionGraph(("A",), [])
        assert rig.satisfied_by(instance)

    def test_figure_2_instance_satisfies_cyclic_rig(self):
        rig = RegionInclusionGraph(("A", "B"), [("A", "B"), ("B", "A")])
        assert rig.satisfied_by(figure_2_instance(8))
