"""Grammars and the RIG/ROG derivations of Section 2.2."""

import random

import pytest

from repro.engine.tagged import parse_tagged_text
from repro.errors import GrammarError
from repro.rig.derive import rig_from_instances, rog_from_instances
from repro.rig.grammar import Grammar


@pytest.fixture
def play_grammar():
    return Grammar(
        "play",
        {
            "play": [["act", "act"]],
            "act": [["scene"], ["scene", "scene"]],
            "scene": [["speech"], ["speech", "speech"]],
            "speech": [["speaker", "line"], ["speaker", "line", "line"]],
            "speaker": [["WORD"]],
            "line": [["WORD", "WORD"]],
        },
    )


class TestGrammarValidation:
    def test_start_must_have_productions(self):
        with pytest.raises(GrammarError):
            Grammar("S", {"A": [["x"]]})

    def test_empty_alternatives_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", {"S": []})

    def test_empty_production_rejected(self):
        with pytest.raises(GrammarError):
            Grammar("S", {"S": [[]]})

    def test_nonterminals(self, play_grammar):
        assert play_grammar.nonterminals == {
            "play",
            "act",
            "scene",
            "speech",
            "speaker",
            "line",
        }
        assert play_grammar.is_nonterminal("act")
        assert not play_grammar.is_nonterminal("WORD")


class TestRigDerivation:
    def test_paper_rule(self, play_grammar):
        """Edge (A_i, A_j) iff A_j occurs in a body of A_i."""
        rig = play_grammar.derive_rig()
        assert rig.has_edge("play", "act")
        assert rig.has_edge("speech", "speaker")
        assert not rig.has_edge("act", "speaker")
        assert rig.is_acyclic()

    def test_recursive_grammar_gives_cyclic_rig(self):
        grammar = Grammar("S", {"S": [["(", "S", ")"], ["x"]]})
        assert not grammar.derive_rig().is_acyclic()


class TestRogDerivation:
    def test_adjacent_siblings(self, play_grammar):
        rog = play_grammar.derive_rog()
        assert rog.has_edge("speaker", "line")
        assert rog.has_edge("line", "line")
        assert rog.has_edge("act", "act")

    def test_spine_edges_cross_boundaries(self, play_grammar):
        rog = play_grammar.derive_rog()
        # The last line of the last speech of a scene directly precedes
        # the next scene and its leftmost spine.
        assert rog.has_edge("line", "scene")
        assert rog.has_edge("line", "speech")
        assert rog.has_edge("line", "speaker")
        assert rog.has_edge("scene", "scene")

    def test_no_edge_without_adjacency(self, play_grammar):
        rog = play_grammar.derive_rog()
        assert not rog.has_edge("speaker", "speaker")  # one speaker per speech


class TestRandomDerivation:
    """Grammar-driven instance generation (workload side of Section 2.2)."""

    def test_derived_instances_satisfy_derived_graphs(self, play_grammar):
        rng = random.Random(11)
        rig = play_grammar.derive_rig()
        rog = play_grammar.derive_rog()
        for _ in range(25):
            instance = play_grammar.random_instance(rng)
            instance.validate_hierarchy()
            assert rig.satisfied_by(instance)
            assert rog.satisfied_by(instance)

    def test_recursive_grammar_respects_depth_budget(self):
        grammar = Grammar("S", {"S": [["(", "S", ")"], ["x"]]})
        rng = random.Random(12)
        for _ in range(20):
            instance = grammar.random_instance(rng, max_depth=5)
            assert instance.nesting_depth() <= 5
            assert grammar.derive_rig().satisfied_by(instance)

    def test_terminals_become_word_labels(self, play_grammar):
        rng = random.Random(13)
        instance = play_grammar.random_instance(rng)
        speakers = instance.region_set("speaker")
        assert speakers
        assert all(instance.matches(s, "WORD") for s in speakers)

    def test_non_terminating_grammar_rejected(self):
        grammar = Grammar("S", {"S": [["S", "S"]]})
        with pytest.raises(GrammarError, match="no finite derivation"):
            grammar.random_instance(random.Random(0))

    def test_unknown_start_symbol(self, play_grammar):
        with pytest.raises(GrammarError, match="unknown start"):
            play_grammar.random_instance(random.Random(0), start="nope")

    def test_alternative_start_symbol(self, play_grammar):
        rng = random.Random(14)
        instance = play_grammar.random_instance(rng, start="scene")
        assert len(instance.region_set("play")) == 0
        assert len(instance.region_set("scene")) == 1


class TestDerivationCoversGeneratedDocuments:
    """Grammar-derived graphs must cover every document the grammar's
    generator can emit — checked against observed instance graphs."""

    def _documents(self):
        rng = random.Random(5)
        from repro.workloads.corpora import generate_play

        return [
            parse_tagged_text(generate_play(rng, acts=2, scenes_per_act=2)).instance
            for _ in range(5)
        ]

    def _grammar(self):
        # The corpus generator's shape as a grammar (wider alternatives).
        return Grammar(
            "play",
            {
                "play": [["act"], ["act", "act"], ["act", "act", "act"]],
                "act": [["scene"], ["scene", "scene"], ["scene", "scene", "scene"]],
                "scene": [["speech"], ["speech", "speech"],
                          ["speech", "speech", "speech"],
                          ["speech", "speech", "speech", "speech"]],
                "speech": [["speaker", "line"], ["speaker", "line", "line"],
                           ["speaker", "line", "line", "line"]],
                "speaker": [["W"]],
                "line": [["W", "W"]],
            },
        )

    def test_rig_covers_observed_inclusions(self):
        derived = self._grammar().derive_rig()
        observed = rig_from_instances(self._documents())
        assert set(observed.edges) <= set(derived.edges)

    def test_rog_covers_observed_precedences(self):
        derived = self._grammar().derive_rog()
        observed = rog_from_instances(self._documents())
        assert set(observed.edges) <= set(derived.edges)
