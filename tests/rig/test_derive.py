"""Deriving minimal RIGs/ROGs from observed instances."""

from hypothesis import given

from repro.rig.derive import rig_from_instances, rog_from_instances
from repro.workloads.generators import figure_2_instance
from tests.conftest import hierarchical_instances


class TestRigFromInstances:
    def test_figure_2_family_yields_the_cyclic_rig(self):
        rig = rig_from_instances([figure_2_instance(8)])
        assert set(rig.edges) == {("A", "B"), ("B", "A")}

    def test_golden(self, small_instance):
        rig = rig_from_instances([small_instance])
        assert set(rig.edges) == {
            ("A", "B"),
            ("A", "C"),
            ("A", "D"),
            ("B", "D"),
            ("C", "B"),
            ("C", "D"),
        }

    def test_union_over_corpus(self, small_instance):
        alone = rig_from_instances([small_instance])
        both = rig_from_instances([small_instance, figure_2_instance(4)])
        assert set(alone.edges) <= set(both.edges)

    @given(hierarchical_instances())
    def test_derived_rig_is_satisfied(self, instance):
        assert rig_from_instances([instance]).satisfied_by(instance)

    @given(hierarchical_instances())
    def test_derived_rig_is_minimal(self, instance):
        """Every derived edge is witnessed by some direct inclusion."""
        rig = rig_from_instances([instance])
        forest = instance.forest()
        witnessed = {
            (instance.name_of(p), instance.name_of(c))
            for p, c in forest.iter_edges()
        }
        assert set(rig.edges) == witnessed


class TestRogFromInstances:
    @given(hierarchical_instances())
    def test_derived_rog_is_satisfied(self, instance):
        assert rog_from_instances([instance]).satisfied_by(instance)

    def test_golden(self, small_instance):
        rog = rog_from_instances([small_instance])
        assert rog.has_edge("B", "C")  # B[1,8] → C[10,18]
        assert rog.has_edge("D", "A")  # D[15,17] → A[25,30]
        assert rog.has_edge("A", "A")  # A[0,19] → A[25,30], nothing between
        assert not rog.has_edge("C", "B")  # no B ever follows a C directly
