"""Region order graphs and direct precedence."""

import pytest
from hypothesis import given

from repro.core.instance import Instance
from repro.core.regionset import RegionSet
from repro.errors import UnknownRegionNameError
from repro.rig.rog import RegionOrderGraph, direct_precedence_pairs
from tests.conftest import hierarchical_instances


def _naive_direct_pairs(instance):
    regions = list(instance.all_regions())
    out = set()
    for r in regions:
        for s in regions:
            if r.precedes(s) and not any(
                r.precedes(t) and t.precedes(s) for t in regions
            ):
                out.add((r, s))
    return out


class TestDirectPrecedencePairs:
    def test_golden(self, small_instance):
        pairs = {
            (r.as_tuple(), s.as_tuple())
            for r, s in direct_precedence_pairs(small_instance)
        }
        # B[1,8] directly precedes C[10,18] and its leftmost descendants.
        assert ((1, 8), (10, 18)) in pairs
        assert ((1, 8), (11, 13)) in pairs
        # …but not D[15,17]: B[11,13] lies in between.
        assert ((1, 8), (15, 17)) not in pairs

    def test_cross_boundary_pairs(self, small_instance):
        pairs = {
            (r.as_tuple(), s.as_tuple())
            for r, s in direct_precedence_pairs(small_instance)
        }
        # The last inner region of A[0,19] directly precedes A[25,30].
        assert ((15, 17), (25, 30)) in pairs
        assert ((15, 17), (26, 28)) in pairs
        # Ancestors ending with it too.
        assert ((0, 19), (25, 30)) in pairs

    @given(hierarchical_instances())
    def test_matches_naive_oracle(self, instance):
        fast = set(direct_precedence_pairs(instance))
        assert fast == _naive_direct_pairs(instance)


class TestRegionOrderGraph:
    def test_construction_and_queries(self):
        rog = RegionOrderGraph(("A", "B"), [("A", "B")])
        assert rog.has_edge("A", "B")
        assert not rog.has_edge("B", "A")
        assert rog.names == ("A", "B")

    def test_unknown_edge_rejected(self):
        with pytest.raises(UnknownRegionNameError):
            RegionOrderGraph(("A",), [("A", "B")])

    def test_equality(self):
        assert RegionOrderGraph(("A", "B"), [("A", "B")]) == RegionOrderGraph(
            ("B", "A"), [("A", "B")]
        )

    def test_acyclic_and_longest_path(self):
        rog = RegionOrderGraph(("A", "B", "C"), [("A", "B"), ("B", "C")])
        assert rog.is_acyclic()
        assert rog.longest_path_length() == 3

    def test_longest_path_rejects_cycles(self):
        rog = RegionOrderGraph(("A", "B"), [("A", "B"), ("B", "A")])
        with pytest.raises(ValueError):
            rog.longest_path_length()

    def test_satisfied_by(self, small_instance):
        full = RegionOrderGraph(
            ("A", "B", "C", "D"),
            list(
                {
                    (small_instance.name_of(r), small_instance.name_of(s))
                    for r, s in direct_precedence_pairs(small_instance)
                }
            ),
        )
        assert full.satisfied_by(small_instance)

    def test_violations(self, small_instance):
        empty = RegionOrderGraph(("A", "B", "C", "D"), [])
        assert list(empty.violations(small_instance))
        assert not empty.satisfied_by(small_instance)

    def test_unknown_nonempty_name_fails(self):
        instance = Instance({"X": RegionSet.of((0, 1))})
        assert not RegionOrderGraph(("A",), []).satisfied_by(instance)

    def test_width_bound_via_longest_path(self):
        """Acyclic ROG ⇒ bounded non-overlapping regions (Prop 5.4's
        premise).  A 3-node path bounds every <-chain by 3."""
        rog = RegionOrderGraph(("A", "B", "C"), [("A", "B"), ("B", "C")])
        assert rog.longest_path_length() == 3
