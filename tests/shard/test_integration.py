"""End-to-end sharding: Engine, Corpus, QueryService, config, CLI."""

import json
import random
import threading

import pytest

from repro.engine.corpus import Corpus
from repro.engine.session import Engine
from repro.errors import QueryCancelled, ReproError
from repro.server.config import CorpusSpec, ServerConfig
from repro.server.service import QueryService
from repro.workloads.corpora import generate_play


def multi_play_text(seed=5, plays=4, scale=2):
    rng = random.Random(seed)
    return "\n".join(
        generate_play(
            rng,
            acts=scale,
            scenes_per_act=scale,
            speeches_per_scene=2,
            lines_per_speech=2,
        )
        for _ in range(plays)
    )


@pytest.fixture(scope="module")
def sharded_engine():
    engine = Engine.from_tagged_text(multi_play_text(), shards=3)
    yield engine
    engine.close()


class TestEngine:
    def test_query_matches_unsharded(self, sharded_engine):
        plain = Engine.from_tagged_text(multi_play_text())
        for query in (
            "speech containing speaker",
            "(line after speaker) within scene",
            'speech containing "love"',
        ):
            assert list(sharded_engine.query(query)) == list(
                plain.query(query)
            ), query

    def test_executor_exposed_and_partitioned(self, sharded_engine):
        executor = sharded_engine.shard_executor
        assert executor is not None
        assert len(executor.partition) == 3

    def test_statistics_include_partition_summary(self, sharded_engine):
        stats = sharded_engine.statistics()
        assert "shards" in stats
        assert len(stats["shards"]["segments"]) == 3
        json.dumps(stats["shards"])

    def test_unsharded_engine_has_no_summary(self):
        engine = Engine.from_tagged_text(multi_play_text(plays=2))
        assert engine.shard_executor is None
        assert "shards" not in engine.statistics()

    def test_query_log_records_sharded_queries(self, sharded_engine):
        before = len(list(sharded_engine.query_log))
        sharded_engine.query("speech containing speaker")
        assert len(list(sharded_engine.query_log)) == before + 1

    def test_cancel_propagates_through_engine(self, sharded_engine):
        token = threading.Event()
        token.set()
        with pytest.raises(QueryCancelled):
            sharded_engine.query("speech containing speaker", cancel=token)

    def test_shard_metrics_flow_into_engine_telemetry(self, sharded_engine):
        sharded_engine.query("line after speaker")
        counters = sharded_engine.telemetry()["metrics"]["counters"]
        assert sum(counters.get("shard_tasks_total", {}).values()) > 0

    def test_tracing_produces_shard_spans(self):
        engine = Engine.from_tagged_text(multi_play_text(), shards=3)
        try:
            engine.enable_tracing()
            engine.query("speech containing speaker")
            root = engine.tracer.last_root
            names = [span.name for span in root.walk()]
            assert "shard.query" in names
            assert names.count("shard.task") == 3
        finally:
            engine.close()


class TestCorpus:
    def test_corpus_shards_are_document_aligned(self):
        rng = random.Random(9)
        corpus = Corpus(shards=3)
        for _ in range(6):
            corpus.add(
                generate_play(
                    rng,
                    acts=1,
                    scenes_per_act=2,
                    speeches_per_scene=2,
                    lines_per_speech=2,
                )
            )
        engine = corpus.engine()
        try:
            partition = engine.shard_executor.partition
            documents = engine.instance.region_set("document")
            for segment in partition.segments:
                for root in segment.roots:
                    assert root in documents
        finally:
            engine.close()


class TestConfig:
    def test_server_config_default_and_validation(self):
        assert ServerConfig().shards == 1
        assert ServerConfig(shards=4).to_dict()["shards"] == 4
        with pytest.raises(ReproError):
            ServerConfig(shards=0)

    def test_corpus_spec_override_and_validation(self):
        spec = CorpusSpec(name="a", kind="synthetic", path="play", shards=2)
        assert spec.to_dict()["shards"] == 2
        assert "shards" not in CorpusSpec(
            name="b", kind="synthetic", path="play"
        ).to_dict()
        with pytest.raises(ReproError):
            CorpusSpec(name="c", kind="synthetic", path="play", shards=0)


@pytest.fixture(scope="module")
def sharded_service(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("sharded")
    path = workdir / "plays.tagged"
    path.write_text(multi_play_text(), encoding="utf-8")
    spec = CorpusSpec(name="plays", kind="tagged", path=str(path), shards=3)
    service = QueryService(ServerConfig(workers=2, corpora=(spec,)))
    yield service
    service.close()


class TestService:
    def test_sharded_corpus_answers_queries(self, sharded_service):
        plain = Engine.from_tagged_text(multi_play_text())
        response = sharded_service.execute(
            "speech containing speaker", corpus="plays", use_cache=False
        )
        expected = [
            [r.left, r.right]
            for r in plain.query("speech containing speaker")
        ]
        assert response["regions"] == expected

    def test_corpora_info_reports_partition(self, sharded_service):
        info = sharded_service.corpora_info()[0]
        assert info["shards"]["requested"] == 3
        assert len(info["shards"]["segments"]) == 3

    def test_shard_metrics_in_service_snapshot(self, sharded_service):
        sharded_service.execute(
            "line after speaker", corpus="plays", use_cache=False
        )
        counters = sharded_service.metrics_snapshot()["metrics"]["counters"]
        assert sum(counters.get("shard_tasks_total", {}).values()) > 0

    def test_config_snapshot_reports_shards(self, sharded_service):
        assert sharded_service.healthz()["config"]["shards"] == 1


class TestCLI:
    def test_query_shards_flag(self, tmp_path, capsys):
        from repro.engine.cli import main

        doc = tmp_path / "plays.tagged"
        doc.write_text(multi_play_text(), encoding="utf-8")
        index = tmp_path / "plays.json"
        assert main(["index", str(doc), "-o", str(index)]) == 0
        capsys.readouterr()
        assert (
            main(
                [
                    "query",
                    str(index),
                    "speech containing speaker",
                    "--shards",
                    "3",
                    "--limit",
                    "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shards: 3 segment(s)" in out
        assert "shard 0:" in out

    def test_stats_shards_flag(self, tmp_path, capsys):
        from repro.engine.cli import main

        doc = tmp_path / "plays.tagged"
        doc.write_text(multi_play_text(), encoding="utf-8")
        index = tmp_path / "plays.json"
        assert main(["index", str(doc), "-o", str(index)]) == 0
        capsys.readouterr()
        assert (
            main(["stats", str(index), "--telemetry", "--shards", "3"]) == 0
        )
        out = capsys.readouterr().out
        assert "shards: 3 segment(s)" in out

    def test_stats_shards_json(self, tmp_path, capsys):
        from repro.engine.cli import main

        doc = tmp_path / "plays.tagged"
        doc.write_text(multi_play_text(), encoding="utf-8")
        index = tmp_path / "plays.json"
        assert main(["index", str(doc), "-o", str(index)]) == 0
        capsys.readouterr()
        assert main(["stats", str(index), "--shards", "2", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["shards"]["requested"] == 2
