"""Executor behavior: cancellation, deadlines, faults, fallbacks, pools."""

import random
import threading

import pytest

from repro.algebra.evaluator import Evaluator
from repro.algebra.parser import parse
from repro.engine.corpus import Corpus
from repro.errors import EvaluationError, QueryCancelled, QueryTimeout, ReproError
from repro.faults.registry import FaultSpec, injected_faults
from repro.shard import ShardExecutor
from repro.workloads.corpora import generate_play
from repro.workloads.generators import random_instance


@pytest.fixture(scope="module")
def corpus_instance():
    rng = random.Random(42)
    corpus = Corpus()
    for i in range(5):
        corpus.add(
            generate_play(
                rng,
                acts=2,
                scenes_per_act=2,
                speeches_per_scene=3,
                lines_per_speech=2,
            )
        )
    return corpus.engine().instance


QUERY = "speech containing (speaker before line)"


class TestCancellation:
    def test_parent_token_reaches_worker_thread_evaluation(self):
        """Regression: the evaluator's deadline/cancel state lives in a
        thread-local, so a token set by the parent thread must still
        abort an evaluation running on a *different* thread — the token
        travels as an argument, not through the thread-local."""
        instance = random_instance(random.Random(0), max_nodes=40)
        token = threading.Event()
        token.set()  # cancelled before the worker even starts
        evaluator = Evaluator("indexed")
        outcome = {}

        def worker():
            try:
                evaluator.evaluate(
                    parse("(R0 before R1) union R2"), instance, cancel=token
                )
                outcome["result"] = "completed"
            except QueryCancelled:
                outcome["result"] = "cancelled"

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert outcome["result"] == "cancelled"

    def test_pre_cancelled_token_aborts_sharded_run(self, corpus_instance):
        token = threading.Event()
        token.set()
        for pool in ("serial", "thread"):
            with ShardExecutor(corpus_instance, 4, pool=pool) as executor:
                with pytest.raises(QueryCancelled):
                    executor.run(parse(QUERY), cancel=token)

    def test_cancel_during_run_aborts_shard_tasks(self, corpus_instance):
        """A token set while shard tasks are in flight must propagate
        into the worker-thread evaluations and abort the run."""
        token = threading.Event()
        with ShardExecutor(corpus_instance, 4, pool="thread") as executor:
            timer = threading.Timer(0.0, token.set)
            timer.start()
            try:
                with pytest.raises(QueryCancelled):
                    # Repeat to make the race window essentially certain.
                    for _ in range(200):
                        executor.run(parse(QUERY), cancel=token)
                        if token.is_set():
                            raise QueryCancelled()
            finally:
                timer.join()

    def test_zero_deadline_times_out(self, corpus_instance):
        with ShardExecutor(corpus_instance, 4) as executor:
            with pytest.raises(QueryTimeout):
                executor.run(parse(QUERY), deadline=0.0)

    def test_negative_deadline_rejected(self, corpus_instance):
        with ShardExecutor(corpus_instance, 2) as executor:
            with pytest.raises(EvaluationError):
                executor.run(parse(QUERY), deadline=-1.0)


class TestFaults:
    def test_single_failure_is_retried(self, corpus_instance):
        expected = Evaluator("indexed").evaluate(parse(QUERY), corpus_instance)
        with injected_faults(
            FaultSpec("shard.task", "error", max_fires=1)
        ) as registry:
            with ShardExecutor(corpus_instance, 4, pool="serial") as executor:
                result = executor.run(parse(QUERY))
                stats = executor.last_stats
        assert registry.fires(point="shard.task") == 1
        assert list(result) == list(expected)
        assert stats.retries == 1
        assert not stats.degraded

    def test_double_failure_degrades_to_single_shard(self, corpus_instance):
        expected = Evaluator("indexed").evaluate(parse(QUERY), corpus_instance)
        with injected_faults(
            FaultSpec("shard.task", "error", max_fires=2)
        ):
            with ShardExecutor(corpus_instance, 4, pool="serial") as executor:
                result = executor.run(parse(QUERY))
                stats = executor.last_stats
        assert list(result) == list(expected)
        assert stats.degraded

    def test_persistent_faults_still_answer(self, corpus_instance):
        # Probability 1.0 on every task: first task fails, its retry
        # fails, the query degrades — and single-shard evaluation (no
        # shard.task point) still returns the right answer.
        expected = Evaluator("indexed").evaluate(parse(QUERY), corpus_instance)
        for pool in ("serial", "thread"):
            with injected_faults(FaultSpec("shard.task", "error")):
                with ShardExecutor(corpus_instance, 4, pool=pool) as executor:
                    result = executor.run(parse(QUERY))
                    assert executor.last_stats.degraded
            assert list(result) == list(expected)

    def test_unknown_point_rejected(self):
        with pytest.raises(ReproError):
            FaultSpec("shard.nonsense", "error")


class TestFallbacks:
    def test_single_root_falls_back(self):
        rng = random.Random(7)
        corpus = Corpus()
        corpus.add(
            generate_play(
                rng, acts=1, scenes_per_act=1, speeches_per_scene=2,
                lines_per_speech=2,
            )
        )
        instance = corpus.engine().instance
        with ShardExecutor(instance, 4) as executor:
            result = executor.run(parse("speech containing speaker"))
            assert executor.last_stats.fallback == "single_segment"
        assert len(result) == 2

    def test_label_index_match_points_fall_back(self):
        from repro.workloads.generators import TreeNode, instance_from_trees

        instance = instance_from_trees(
            [
                TreeNode("R0", [TreeNode("R1", labels=frozenset({"x"}))]),
                TreeNode("R0", [TreeNode("R1")]),
            ]
        )
        with ShardExecutor(instance, 2) as executor:
            # Match points need a text-backed index; single-shard raises
            # the same error the caller would see unsharded.
            with pytest.raises(EvaluationError):
                executor.run(parse('R0 containing "x"'))
            assert executor.last_stats.fallback == "label_index"

    def test_invalid_pool_rejected(self, corpus_instance):
        with pytest.raises(ReproError):
            ShardExecutor(corpus_instance, 2, pool="fibers")


class TestProcessPool:
    def test_process_pool_equivalence(self, corpus_instance):
        expected = Evaluator("indexed").evaluate(parse(QUERY), corpus_instance)
        with ShardExecutor(corpus_instance, 2, pool="process") as executor:
            result = executor.run(parse(QUERY))
        assert list(result) == list(expected)


class TestStats:
    def test_phase_accounting(self, corpus_instance):
        with ShardExecutor(corpus_instance, 4, pool="serial") as executor:
            executor.run(parse("(speaker before line) union speech"))
            stats = executor.last_stats
        assert stats.shards == 4
        assert stats.rounds == 1
        # One exchange phase + the final scatter, 4 task timings each.
        assert len(stats.phase_seconds) == 2
        assert all(len(phase) == 4 for phase in stats.phase_seconds)
        assert stats.critical_path_seconds() >= stats.merge_seconds

    def test_stats_are_per_thread(self, corpus_instance):
        with ShardExecutor(corpus_instance, 2, pool="serial") as executor:
            executor.run(parse("speech"))
            seen = {}

            def other():
                seen["stats"] = executor.last_stats

            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
            assert executor.last_stats is not None
            assert seen["stats"] is None
