"""The forest partitioner: cuts, balance, ownership, restriction."""

import random

import pytest

from repro.core.instance import Instance
from repro.core.regionset import RegionSet
from repro.core.wordindex import LabelWordIndex
from repro.errors import ReproError
from repro.shard.partition import partition_instance
from repro.workloads.generators import random_instance


def forest_instance(root_sizes):
    """An instance whose i-th root tree has ``root_sizes[i]`` regions
    (one root plus children laid out flat inside it)."""
    regions: dict[str, list] = {"R": [], "C": []}
    position = 0
    for size in root_sizes:
        inner = size - 1
        left = position
        right = left + 2 * inner + 1
        regions["R"].append((left, right))
        for j in range(inner):
            regions["C"].append((left + 1 + 2 * j, left + 2 + 2 * j))
        position = right + 2
    return Instance(
        {name: RegionSet.of(*spans) for name, spans in regions.items()},
        LabelWordIndex({}),
    )


class TestPartition:
    def test_round_trip_regions(self):
        instance = forest_instance([4, 3, 5, 2])
        partition = partition_instance(instance, 3)
        total = sum(len(s.instance) for s in partition.segments)
        assert total == len(instance)
        # Every region of every segment is a region of the original.
        original = set(instance.all_regions())
        for segment in partition.segments:
            assert set(segment.instance.all_regions()) <= original

    def test_cuts_at_root_boundaries_only(self):
        instance = forest_instance([4, 3, 5, 2])
        partition = partition_instance(instance, 4)
        for segment in partition.segments:
            for region in segment.instance.all_regions():
                assert any(
                    root.left <= region.left and region.right <= root.right
                    for root in segment.roots
                )

    def test_requested_more_than_roots(self):
        instance = forest_instance([3, 3])
        partition = partition_instance(instance, 7)
        assert len(partition) == 2
        assert partition.requested == 7

    def test_single_root_single_segment(self):
        instance = forest_instance([6])
        partition = partition_instance(instance, 4)
        assert len(partition) == 1
        only = partition.segments[0]
        assert only.own_left is None and only.own_right is None

    def test_ownership_tiles_the_axis(self):
        instance = forest_instance([4, 3, 5, 2])
        partition = partition_instance(instance, 3)
        assert partition.segments[0].own_left is None
        assert partition.segments[-1].own_right is None
        for prev, cur in zip(partition.segments, partition.segments[1:]):
            assert prev.own_right is not None
            assert cur.own_left == prev.own_right + 1
        # owner_of agrees with Segment.owns for every position in range.
        last = instance.all_regions().regions[-1].right
        for position in range(0, last + 3):
            owner = partition.owner_of(position)
            assert owner.owns(position)
            assert sum(s.owns(position) for s in partition.segments) == 1

    def test_boundary_regions_one_pair_per_cut(self):
        instance = forest_instance([4, 3, 5, 2])
        partition = partition_instance(instance, 3)
        pairs = partition.boundary_regions()
        assert len(pairs) == len(partition) - 1
        for left, right in pairs:
            assert left.right < right.left

    def test_balance_on_uniform_roots(self):
        instance = forest_instance([5] * 8)
        partition = partition_instance(instance, 4)
        counts = [s.region_count for s in partition.segments]
        assert counts == [10, 10, 10, 10]

    def test_invalid_shard_count(self):
        instance = forest_instance([3])
        with pytest.raises(ReproError):
            partition_instance(instance, 0)

    def test_word_index_is_shared_not_copied(self):
        instance = forest_instance([3, 3])
        partition = partition_instance(instance, 2)
        for segment in partition.segments:
            assert segment.instance.word_index is instance.word_index

    def test_summary_is_json_ready(self):
        import json

        instance = forest_instance([4, 3, 5])
        summary = partition_instance(instance, 2).summary()
        json.dumps(summary)
        assert summary["requested"] == 2
        assert summary["cuts"] == len(summary["segments"]) - 1

    def test_random_instances_partition_losslessly(self):
        rng = random.Random(2718)
        for _ in range(25):
            instance = random_instance(rng, max_nodes=40)
            for shards in (1, 2, 4, 7):
                partition = partition_instance(instance, shards)
                got = sorted(
                    region
                    for segment in partition.segments
                    for region in segment.instance.all_regions()
                )
                assert got == sorted(instance.all_regions())
