"""Property-based equivalence: sharded evaluation == single-shard.

Random hierarchical instances (from :mod:`repro.workloads.generators`)
and random expressions — including boundary-heavy ``<``/``>`` nesting —
must evaluate to exactly the same region set through the sharded
scatter-gather executor as through the plain :class:`Evaluator`, for
every shard count.
"""

import random

import pytest

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator
from repro.engine.corpus import Corpus
from repro.shard import ShardExecutor
from repro.workloads.corpora import generate_play
from repro.workloads.generators import random_instance

NAMES = ("R0", "R1", "R2")
PATTERNS = ("x", "y")
SHARD_COUNTS = (1, 2, 4, 7)

_BINARY = (
    A.Union,
    A.Intersection,
    A.Difference,
    A.Including,
    A.IncludedIn,
    A.Preceding,
    A.Following,
    A.DirectlyIncluding,
    A.DirectlyIncluded,
)


def random_expression(rng, depth=0, max_depth=4, order_bias=0.0):
    """A random core+extended expression over NAMES and PATTERNS.

    ``order_bias`` raises the share of ``<``/``>`` nodes to stress the
    exchange machinery.
    """
    if depth >= max_depth or rng.random() < 0.3:
        roll = rng.random()
        if roll < 0.85:
            return A.NameRef(rng.choice(NAMES))
        if roll < 0.95:
            return A.Select(
                rng.choice(PATTERNS),
                A.NameRef(rng.choice(NAMES)),
            )
        return A.Empty()
    if rng.random() < order_bias:
        op = rng.choice((A.Preceding, A.Following))
        return op(
            random_expression(rng, depth + 1, max_depth, order_bias),
            random_expression(rng, depth + 1, max_depth, order_bias),
        )
    roll = rng.random()
    if roll < 0.08:
        return A.BothIncluded(
            random_expression(rng, depth + 1, max_depth, order_bias),
            random_expression(rng, depth + 1, max_depth, order_bias),
            random_expression(rng, depth + 1, max_depth, order_bias),
        )
    if roll < 0.16:
        return A.Select(
            rng.choice(PATTERNS),
            random_expression(rng, depth + 1, max_depth, order_bias),
        )
    op = rng.choice(_BINARY)
    return op(
        random_expression(rng, depth + 1, max_depth, order_bias),
        random_expression(rng, depth + 1, max_depth, order_bias),
    )


def assert_equivalent(instance, expr, shards, pool="serial"):
    expected = Evaluator("indexed").evaluate(expr, instance)
    executor = ShardExecutor(instance, shards, pool=pool)
    try:
        got = executor.run(expr)
    finally:
        executor.close()
    assert list(got) == list(expected), (
        f"shards={shards} pool={pool} expr={expr}"
    )


class TestRandomEquivalence:
    def test_mixed_expressions(self):
        rng = random.Random(314159)
        for case in range(40):
            instance = random_instance(
                rng, NAMES, max_nodes=35, patterns=PATTERNS
            )
            expr = random_expression(rng, order_bias=0.2)
            for shards in SHARD_COUNTS:
                assert_equivalent(instance, expr, shards)

    def test_boundary_heavy_expressions(self):
        # Almost every internal node is < or >: maximal exchange load.
        rng = random.Random(271828)
        for case in range(40):
            instance = random_instance(
                rng, NAMES, max_nodes=35, patterns=PATTERNS
            )
            expr = random_expression(rng, max_depth=5, order_bias=0.9)
            for shards in SHARD_COUNTS:
                assert_equivalent(instance, expr, shards)

    def test_thread_pool_equivalence(self):
        rng = random.Random(777)
        for case in range(10):
            instance = random_instance(
                rng, NAMES, max_nodes=40, patterns=PATTERNS
            )
            expr = random_expression(rng, order_bias=0.5)
            assert_equivalent(instance, expr, 4, pool="thread")

    def test_wide_flat_forests(self):
        # Many top-level trees: every shard count actually cuts.
        rng = random.Random(99)
        for case in range(15):
            instance = random_instance(
                rng,
                NAMES,
                max_nodes=45,
                max_depth=2,
                max_children=2,
                patterns=PATTERNS,
            )
            expr = random_expression(rng, order_bias=0.6)
            for shards in SHARD_COUNTS:
                assert_equivalent(instance, expr, shards)


@pytest.fixture(scope="module")
def play_corpus():
    rng = random.Random(1234)
    corpus = Corpus()
    for i in range(6):
        corpus.add(
            generate_play(
                rng,
                acts=2,
                scenes_per_act=2,
                speeches_per_scene=3,
                lines_per_speech=2,
            ),
            name=f"play{i}",
        )
    return corpus


MATCH_POINT_QUERIES = (
    'speech containing (speaker containing "R*")',
    '"love" within line',
    '(speech containing "s*") before (speech containing "love")',
    'line after ("night" before "s*")',
    'bi(document, "s*", "love")',
    '(scene @ "love") union (line containing "s*")',
)


class TestCorpusMatchPoints:
    """Text-backed word index: match points routed across cuts."""

    def test_match_point_equivalence(self, play_corpus):
        engine = play_corpus.engine()
        instance = engine.instance
        evaluator = Evaluator("indexed")
        from repro.algebra.parser import parse

        for query in MATCH_POINT_QUERIES:
            expr = parse(query)
            expected = evaluator.evaluate(expr, instance)
            # Guard against vacuous equivalence: the patterns must
            # actually occur in the generated vocabulary.
            assert len(expected) > 0, query
            for shards in (2, 4, 7):
                executor = ShardExecutor(instance, shards)
                try:
                    got = executor.run(expr)
                    stats = executor.last_stats
                finally:
                    executor.close()
                assert list(got) == list(expected), (query, shards)
                # Multi-root corpus: no silent fallback to single-shard.
                assert stats.fallback is None, (query, stats.fallback)
