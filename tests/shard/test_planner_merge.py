"""Operator classification into exchange rounds, and the k-way merge."""

from repro.algebra import ast as A
from repro.algebra.parser import parse
from repro.core.regionset import RegionSet
from repro.shard.merge import merge_region_sets
from repro.shard.planner import classify


class TestClassify:
    def test_local_expression(self):
        plan = classify(parse("(A within B) union (C containing D)"))
        assert plan.local
        assert plan.rounds == 0

    def test_single_ordering_node_is_round_one(self):
        plan = classify(parse("A before B"))
        assert not plan.local
        assert plan.rounds == 1
        (node,) = plan.nodes_in_round(1)
        assert isinstance(node.node, A.Preceding)
        assert node.kind == "preceding"

    def test_nested_right_operand_raises_round(self):
        # The scalar for the outer < comes from (B before C)'s global
        # result, which itself needs an exchange first.
        plan = classify(parse("A before (B before C)"))
        assert plan.rounds == 2
        assert len(plan.nodes_in_round(1)) == 1
        assert len(plan.nodes_in_round(2)) == 1
        outer = plan.nodes_in_round(2)[0].node
        assert isinstance(outer.right, A.Preceding)

    def test_left_subtree_does_not_raise_round(self):
        # Ordering nodes in the LEFT operand resolve independently; the
        # outer node's scalar only depends on its right operand.
        plan = classify(parse("(A before B) after C"))
        rounds = {b.kind: b.round for b in plan.boundary}
        assert rounds == {"preceding": 1, "following": 1}

    def test_equal_subexpressions_share_one_entry(self):
        plan = classify(parse("(A before B) union (A before B)"))
        assert len(plan.boundary) == 1
        assert plan.rounds == 1

    def test_shared_subexpression_takes_max_round(self):
        # (A before B) occurs bare (round 1) and as the right operand of
        # another ordering node; one entry, resolved once.
        plan = classify(parse("(C after (A before B)) union (A before B)"))
        inner = [b for b in plan.boundary if isinstance(b.node, A.Preceding)]
        outer = [b for b in plan.boundary if isinstance(b.node, A.Following)]
        assert len(inner) == 1 and len(outer) == 1
        assert inner[0].round == 1
        assert outer[0].round == 2

    def test_match_points_collected(self):
        plan = classify(parse('A containing "alpha"'))
        assert plan.patterns == ("alpha",)
        assert not plan.boundary
        assert not plan.local


class TestMerge:
    def test_empty_inputs(self):
        assert len(merge_region_sets([])) == 0
        assert len(merge_region_sets([RegionSet.empty()])) == 0

    def test_single_part_passthrough(self):
        part = RegionSet.of((0, 1), (4, 9))
        assert merge_region_sets([RegionSet.empty(), part]) is part

    def test_disjoint_concatenation(self):
        a = RegionSet.of((0, 3), (5, 6))
        b = RegionSet.of((8, 9))
        c = RegionSet.of((12, 20), (14, 15))
        merged = merge_region_sets([a, b, c])
        assert [r.as_tuple() for r in merged] == [
            (0, 3),
            (5, 6),
            (8, 9),
            (12, 20),
            (14, 15),
        ]

    def test_interleaved_fall_back_to_heap_merge(self):
        a = RegionSet.of((0, 3), (10, 12))
        b = RegionSet.of((5, 6), (14, 15))
        merged = merge_region_sets([a, b])
        assert [r.as_tuple() for r in merged] == [
            (0, 3),
            (5, 6),
            (10, 12),
            (14, 15),
        ]

    def test_duplicates_collapse(self):
        a = RegionSet.of((0, 3), (5, 6))
        b = RegionSet.of((0, 3), (8, 9))
        merged = merge_region_sets([a, b])
        assert [r.as_tuple() for r in merged] == [(0, 3), (5, 6), (8, 9)]

    def test_result_is_canonical_regionset(self):
        # The merged set must behave like one built the normal way
        # (sorted order, working set operations).
        a = RegionSet.of((0, 3))
        b = RegionSet.of((5, 6))
        merged = merge_region_sets([a, b])
        assert merged == RegionSet.of((0, 3), (5, 6))
        assert len(merged.union(RegionSet.of((0, 3)))) == 2
