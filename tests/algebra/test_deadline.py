"""Cooperative deadlines and cancellation in the evaluator.

The checks live in the per-node dispatch loop, so they need no thread
machinery to test: an already-expired deadline or an already-set cancel
token aborts the very first node.
"""

import threading

import pytest

from repro.algebra.evaluator import Evaluator, evaluate
from repro.errors import EvaluationError, QueryCancelled, QueryTimeout
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def evaluator():
    return Evaluator("indexed")


class TestDeadline:
    def test_generous_deadline_is_a_no_op(self, evaluator, small_instance):
        unconstrained = evaluator.evaluate("D within B", small_instance)
        bounded = evaluator.evaluate(
            "D within B", small_instance, deadline=60.0
        )
        assert bounded == unconstrained

    def test_expired_deadline_raises_typed_timeout(
        self, evaluator, small_instance
    ):
        with pytest.raises(QueryTimeout) as excinfo:
            evaluator.evaluate(
                "A containing (B union D)", small_instance, deadline=1e-9
            )
        assert excinfo.value.budget == pytest.approx(1e-9)
        assert excinfo.value.elapsed is None or excinfo.value.elapsed > 0
        assert isinstance(excinfo.value, EvaluationError)

    def test_limits_cleared_after_timeout(self, evaluator, small_instance):
        with pytest.raises(QueryTimeout):
            evaluator.evaluate("A", small_instance, deadline=1e-9)
        # The expired budget must not leak into the next call.
        assert len(evaluator.evaluate("A", small_instance)) == 2

    def test_module_level_wrapper_passes_deadline(self, small_instance):
        with pytest.raises(QueryTimeout):
            evaluate("A containing D", small_instance, deadline=1e-9)

    def test_both_strategies_honor_deadlines(self, small_instance):
        for strategy in ("indexed", "naive"):
            with pytest.raises(QueryTimeout):
                Evaluator(strategy).evaluate(
                    "A containing D", small_instance, deadline=1e-9
                )


class TestCancellation:
    def test_preset_token_cancels_immediately(self, evaluator, small_instance):
        token = threading.Event()
        token.set()
        with pytest.raises(QueryCancelled):
            evaluator.evaluate("D within B", small_instance, cancel=token)

    def test_unset_token_is_a_no_op(self, evaluator, small_instance):
        token = threading.Event()
        result = evaluator.evaluate(
            "D within B", small_instance, cancel=token
        )
        assert result == evaluator.evaluate("D within B", small_instance)

    def test_any_is_set_object_works(self, evaluator, small_instance):
        class Token:
            def is_set(self):
                return True

        with pytest.raises(QueryCancelled):
            evaluator.evaluate("A", small_instance, cancel=Token())


class TestThreadIsolation:
    def test_deadlines_and_stats_are_per_thread(self, small_instance):
        """One shared evaluator, one thread with an expired budget: the
        other thread's unconstrained call must not be affected."""
        evaluator = Evaluator("indexed")
        outcomes: dict[str, object] = {}
        barrier = threading.Barrier(2, timeout=10)

        def doomed() -> None:
            barrier.wait()
            try:
                for _ in range(50):
                    evaluator.evaluate("A", small_instance, deadline=1e-9)
                outcomes["doomed"] = "no-timeout"
            except QueryTimeout:
                outcomes["doomed"] = "timeout"

        def healthy() -> None:
            barrier.wait()
            try:
                for _ in range(50):
                    assert len(evaluator.evaluate("A", small_instance)) == 2
                outcomes["healthy"] = "ok"
            except QueryTimeout:  # pragma: no cover - the bug this guards
                outcomes["healthy"] = "leaked-timeout"

        threads = [
            threading.Thread(target=doomed),
            threading.Thread(target=healthy),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes == {"doomed": "timeout", "healthy": "ok"}


class TestMidEvaluationCancellation:
    def test_token_flipping_mid_set_operation_aborts_partway(
        self, evaluator, small_instance
    ):
        """Cancellation must land *between* operator nodes of one
        expression, not just at the very first poll: a token that turns
        on after a few polls aborts a set-op chain partway through."""

        class FlipToken:
            def __init__(self, after: int):
                self.polls = 0
                self.after = after

            def is_set(self) -> bool:
                self.polls += 1
                return self.polls > self.after

        query = "(D within B) union (B union D) isect A"
        token = FlipToken(after=3)
        with pytest.raises(QueryCancelled):
            evaluator.evaluate(query, small_instance, cancel=token)
        # Evaluation got past the first node before the cancel landed.
        assert token.polls > 3
        # The aborted call must not poison the next one.
        untainted = evaluator.evaluate(query, small_instance)
        assert untainted == evaluator.evaluate(query, small_instance)

    def test_cancelled_set_operation_leaves_no_limits_behind(
        self, evaluator, small_instance
    ):
        class FlipToken:
            polls = 0

            def is_set(self) -> bool:
                FlipToken.polls += 1
                return FlipToken.polls > 2

        with pytest.raises(QueryCancelled):
            evaluator.evaluate(
                "A containing (B union D)", small_instance, cancel=FlipToken()
            )
        token = threading.Event()  # never set
        result = evaluator.evaluate(
            "A containing (B union D)", small_instance, cancel=token
        )
        assert result == evaluator.evaluate(
            "A containing (B union D)", small_instance
        )


class TestConcurrentStatsIsolation:
    def test_last_stats_are_per_thread_on_one_evaluator(self, small_instance):
        """Two threads hammer one evaluator with queries of different
        node counts; each must always observe its *own* stats in
        ``last_stats``, never the other thread's."""
        evaluator = Evaluator("indexed", memoize=False, metrics=MetricsRegistry())
        small = "A"
        large = "(D within B) union (B union D) isect A"
        expected = {}
        for name, query in (("small", small), ("large", large)):
            evaluator.evaluate(query, small_instance)
            expected[name] = evaluator.last_stats.nodes_evaluated
        assert expected["small"] != expected["large"]

        barrier = threading.Barrier(2, timeout=10)
        mismatches: list[tuple[str, int]] = []

        def run(name: str, query: str) -> None:
            barrier.wait()
            for _ in range(100):
                evaluator.evaluate(query, small_instance)
                observed = evaluator.last_stats.nodes_evaluated
                if observed != expected[name]:
                    mismatches.append((name, observed))

        threads = [
            threading.Thread(target=run, args=("small", small)),
            threading.Thread(target=run, args=("large", large)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert mismatches == []

    def test_deadline_in_one_thread_never_leaks_stats_or_limits(
        self, small_instance
    ):
        """A thread evaluating under an instantly-expiring deadline must
        not corrupt another thread's stats on the same evaluator."""
        evaluator = Evaluator("indexed", memoize=False, metrics=MetricsRegistry())
        query = "D within B"
        evaluator.evaluate(query, small_instance)
        expected_nodes = evaluator.last_stats.nodes_evaluated
        barrier = threading.Barrier(2, timeout=10)
        problems: list[str] = []

        def doomed() -> None:
            barrier.wait()
            for _ in range(50):
                try:
                    evaluator.evaluate(query, small_instance, deadline=1e-9)
                    problems.append("deadline never fired")
                except QueryTimeout:
                    pass

        def healthy() -> None:
            barrier.wait()
            for _ in range(50):
                evaluator.evaluate(query, small_instance)
                if evaluator.last_stats.nodes_evaluated != expected_nodes:
                    problems.append("stats leaked across threads")

        threads = [
            threading.Thread(target=doomed),
            threading.Thread(target=healthy),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert problems == []
