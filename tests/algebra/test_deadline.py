"""Cooperative deadlines and cancellation in the evaluator.

The checks live in the per-node dispatch loop, so they need no thread
machinery to test: an already-expired deadline or an already-set cancel
token aborts the very first node.
"""

import threading

import pytest

from repro.algebra.evaluator import Evaluator, evaluate
from repro.errors import EvaluationError, QueryCancelled, QueryTimeout


@pytest.fixture
def evaluator():
    return Evaluator("indexed")


class TestDeadline:
    def test_generous_deadline_is_a_no_op(self, evaluator, small_instance):
        unconstrained = evaluator.evaluate("D within B", small_instance)
        bounded = evaluator.evaluate(
            "D within B", small_instance, deadline=60.0
        )
        assert bounded == unconstrained

    def test_expired_deadline_raises_typed_timeout(
        self, evaluator, small_instance
    ):
        with pytest.raises(QueryTimeout) as excinfo:
            evaluator.evaluate(
                "A containing (B union D)", small_instance, deadline=1e-9
            )
        assert excinfo.value.budget == pytest.approx(1e-9)
        assert excinfo.value.elapsed is None or excinfo.value.elapsed > 0
        assert isinstance(excinfo.value, EvaluationError)

    def test_limits_cleared_after_timeout(self, evaluator, small_instance):
        with pytest.raises(QueryTimeout):
            evaluator.evaluate("A", small_instance, deadline=1e-9)
        # The expired budget must not leak into the next call.
        assert len(evaluator.evaluate("A", small_instance)) == 2

    def test_module_level_wrapper_passes_deadline(self, small_instance):
        with pytest.raises(QueryTimeout):
            evaluate("A containing D", small_instance, deadline=1e-9)

    def test_both_strategies_honor_deadlines(self, small_instance):
        for strategy in ("indexed", "naive"):
            with pytest.raises(QueryTimeout):
                Evaluator(strategy).evaluate(
                    "A containing D", small_instance, deadline=1e-9
                )


class TestCancellation:
    def test_preset_token_cancels_immediately(self, evaluator, small_instance):
        token = threading.Event()
        token.set()
        with pytest.raises(QueryCancelled):
            evaluator.evaluate("D within B", small_instance, cancel=token)

    def test_unset_token_is_a_no_op(self, evaluator, small_instance):
        token = threading.Event()
        result = evaluator.evaluate(
            "D within B", small_instance, cancel=token
        )
        assert result == evaluator.evaluate("D within B", small_instance)

    def test_any_is_set_object_works(self, evaluator, small_instance):
        class Token:
            def is_set(self):
                return True

        with pytest.raises(QueryCancelled):
            evaluator.evaluate("A", small_instance, cancel=Token())


class TestThreadIsolation:
    def test_deadlines_and_stats_are_per_thread(self, small_instance):
        """One shared evaluator, one thread with an expired budget: the
        other thread's unconstrained call must not be affected."""
        evaluator = Evaluator("indexed")
        outcomes: dict[str, object] = {}
        barrier = threading.Barrier(2, timeout=10)

        def doomed() -> None:
            barrier.wait()
            try:
                for _ in range(50):
                    evaluator.evaluate("A", small_instance, deadline=1e-9)
                outcomes["doomed"] = "no-timeout"
            except QueryTimeout:
                outcomes["doomed"] = "timeout"

        def healthy() -> None:
            barrier.wait()
            try:
                for _ in range(50):
                    assert len(evaluator.evaluate("A", small_instance)) == 2
                outcomes["healthy"] = "ok"
            except QueryTimeout:  # pragma: no cover - the bug this guards
                outcomes["healthy"] = "leaked-timeout"

        threads = [
            threading.Thread(target=doomed),
            threading.Thread(target=healthy),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert outcomes == {"doomed": "timeout", "healthy": "ok"}
