"""Cost models: the price functions behind the optimization results."""

from repro.algebra import ast as A
from repro.algebra.cost import CostModel, operation_count
from repro.algebra.parser import parse


class TestOperationCount:
    def test_counts_match_size(self):
        expr = parse("Name within Proc_header within Proc within Program")
        assert operation_count(expr) == 3

    def test_shorter_chain_is_cheaper(self):
        e1 = parse("Name within Proc_header within Proc within Program")
        e2 = parse("Name within Proc_header within Program")
        assert operation_count(e2) < operation_count(e1)


class TestCostModel:
    def test_from_instance_uses_exact_sizes(self, small_instance):
        model = CostModel.from_instance(small_instance)
        assert model.estimate(A.NameRef("D")).cardinality == 3.0
        assert model.estimate(A.NameRef("C")).cardinality == 1.0

    def test_names_are_free_operations_cost(self, small_instance):
        model = CostModel.from_instance(small_instance)
        assert model.price(A.NameRef("D")) == 0.0
        assert model.price(parse("D union C")) > 0.0

    def test_every_operation_adds_cost(self, small_instance):
        """The Section 3 premise: adding an operation raises the price."""
        model = CostModel.from_instance(small_instance)
        base = parse("D within B")
        wrapped = A.IncludedIn(base, A.NameRef("A"))
        assert model.price(wrapped) > model.price(base)

    def test_unknown_name_uses_default(self):
        model = CostModel(default_name_size=42.0)
        assert model.estimate(A.NameRef("X")).cardinality == 42.0

    def test_selection_reduces_cardinality(self, small_instance):
        model = CostModel.from_instance(small_instance)
        plain = model.estimate(A.NameRef("D"))
        selected = model.estimate(parse('D @ "x"'))
        assert selected.cardinality < plain.cardinality
        assert selected.cost > plain.cost

    def test_union_cardinality_additive(self, small_instance):
        model = CostModel.from_instance(small_instance)
        estimate = model.estimate(parse("D union C"))
        assert estimate.cardinality == 4.0

    def test_difference_keeps_left_cardinality(self, small_instance):
        model = CostModel.from_instance(small_instance)
        assert model.estimate(parse("D except C")).cardinality == 3.0

    def test_empty_is_free(self, small_instance):
        model = CostModel.from_instance(small_instance)
        estimate = model.estimate(A.Empty())
        assert estimate.cost == 0.0
        assert estimate.cardinality == 0.0

    def test_both_included_estimate(self, small_instance):
        model = CostModel.from_instance(small_instance)
        estimate = model.estimate(parse("bi(A, B, C)"))
        assert estimate.cost > 0
        assert estimate.cardinality <= 2.0

    def test_paper_example_rewrite_is_cheaper(self, small_instance):
        """The Section 2.2 rationale: the rewritten chain prices lower."""
        model = CostModel(name_sizes={"Name": 50, "Proc_header": 40, "Proc": 40, "Program": 1})
        e1 = parse("Name within Proc_header within Proc within Program")
        e2 = parse("Name within Proc_header within Program")
        assert model.price(e2) < model.price(e1)
