"""Parser and printer: golden parses, precedence, round trips, errors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra import ast as A
from repro.algebra.enumerate import enumerate_expressions
from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.errors import ParseError


class TestGoldenParses:
    def test_name(self):
        assert parse("Proc") == A.NameRef("Proc")

    def test_empty(self):
        assert parse("empty") == A.Empty()

    def test_union_keyword_and_symbols(self):
        expected = A.Union(A.NameRef("A"), A.NameRef("B"))
        for text in ("A union B", "A + B", "A | B", "A ∪ B"):
            assert parse(text) == expected

    def test_difference_spellings(self):
        expected = A.Difference(A.NameRef("A"), A.NameRef("B"))
        for text in ("A except B", "A - B", "A − B"):
            assert parse(text) == expected

    def test_intersection_spellings(self):
        expected = A.Intersection(A.NameRef("A"), A.NameRef("B"))
        for text in ("A isect B", "A ^ B", "A & B", "A ∩ B"):
            assert parse(text) == expected

    def test_structural_spellings(self):
        cases = {
            A.Including: ("containing", "⊃"),
            A.IncludedIn: ("within", "⊂"),
            A.Preceding: ("before", "<"),
            A.Following: ("after", ">"),
            A.DirectlyIncluding: ("dcontaining", "⊃d"),
            A.DirectlyIncluded: ("dwithin", "⊂d"),
        }
        for op, spellings in cases.items():
            for spelling in spellings:
                assert parse(f"A {spelling} B") == op(A.NameRef("A"), A.NameRef("B"))

    def test_selection_postfix(self):
        assert parse('Var @ "x"') == A.Select("x", A.NameRef("Var"))

    def test_selection_function_form(self):
        assert parse('select("x", Var)') == A.Select("x", A.NameRef("Var"))

    def test_selection_stacks(self):
        assert parse('Var @ "x" @ "y"') == A.Select("y", A.Select("x", A.NameRef("Var")))

    def test_pattern_with_escapes(self):
        assert parse(r'Var @ "a\"b"') == A.Select('a"b', A.NameRef("Var"))

    def test_bi(self):
        assert parse("bi(C, B, A)") == A.BothIncluded(
            A.NameRef("C"), A.NameRef("B"), A.NameRef("A")
        )

    def test_bi_with_expressions(self):
        expr = parse('bi(Proc, Var @ "x", Var @ "y")')
        assert isinstance(expr, A.BothIncluded)
        assert expr.first == A.Select("x", A.NameRef("Var"))

    def test_negated_structural_sugar(self):
        """PAT's ``not`` forms lower to ``left except (left op right)``."""
        assert parse("A not containing B") == A.Difference(
            A.NameRef("A"), A.Including(A.NameRef("A"), A.NameRef("B"))
        )
        assert parse("A not within B") == A.Difference(
            A.NameRef("A"), A.IncludedIn(A.NameRef("A"), A.NameRef("B"))
        )
        assert parse("A not before B") == A.Difference(
            A.NameRef("A"), A.Preceding(A.NameRef("A"), A.NameRef("B"))
        )
        assert parse("A not dcontaining B") == A.Difference(
            A.NameRef("A"), A.DirectlyIncluding(A.NameRef("A"), A.NameRef("B"))
        )

    def test_negated_sugar_duplicates_complex_left_operand(self):
        expr = parse("(A union B) not after C")
        left = A.Union(A.NameRef("A"), A.NameRef("B"))
        assert expr == A.Difference(left, A.Following(left, A.NameRef("C")))

    def test_negated_sugar_requires_structural_op(self):
        with pytest.raises(ParseError, match="after 'not'"):
            parse("A not B")

    def test_negated_sugar_semantics(self, small_instance):
        from repro.algebra.evaluator import evaluate

        # D regions not inside any B region.
        result = evaluate(parse("D not within B"), small_instance)
        assert {r.as_tuple() for r in result} == {(15, 17), (26, 28)}


class TestPrecedence:
    def test_structural_right_associative(self):
        """The paper's convention: omitted parens group from the right."""
        assert parse("A within B within C") == A.IncludedIn(
            A.NameRef("A"), A.IncludedIn(A.NameRef("B"), A.NameRef("C"))
        )

    def test_mixed_structural_ops_right_associative(self):
        assert parse("A containing B before C") == A.Including(
            A.NameRef("A"), A.Preceding(A.NameRef("B"), A.NameRef("C"))
        )

    def test_additive_left_associative(self):
        assert parse("A union B except C") == A.Difference(
            A.Union(A.NameRef("A"), A.NameRef("B")), A.NameRef("C")
        )

    def test_structural_binds_tighter_than_intersection(self):
        assert parse("A isect B within C") == A.Intersection(
            A.NameRef("A"), A.IncludedIn(A.NameRef("B"), A.NameRef("C"))
        )

    def test_intersection_binds_tighter_than_union(self):
        assert parse("A union B isect C") == A.Union(
            A.NameRef("A"), A.Intersection(A.NameRef("B"), A.NameRef("C"))
        )

    def test_selection_binds_tightest(self):
        assert parse('A within B @ "p"') == A.IncludedIn(
            A.NameRef("A"), A.Select("p", A.NameRef("B"))
        )

    def test_parentheses_override(self):
        assert parse("(A union B) isect C") == A.Intersection(
            A.Union(A.NameRef("A"), A.NameRef("B")), A.NameRef("C")
        )


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "A union",
            "(A",
            "A )",
            "A within within B",
            "bi(A, B)",
            "bi(A, B, C",
            'select("p")',
            '@ "p"',
            "A $ B",
            'A @ p',
        ],
    )
    def test_malformed_input_raises(self, text):
        with pytest.raises(ParseError):
            parse(text)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse("A union $")
        assert info.value.position == 8


class TestRoundTrip:
    def test_exhaustive_round_trip_small(self):
        """parse(to_text(e)) == e for every expression of ≤ 2 ops."""
        for expr in enumerate_expressions(("A", "B"), 2, patterns=("p",), extended=True):
            assert parse(to_text(expr)) == expr
            assert parse(to_text(expr, unicode_ops=True)) == expr

    def test_bi_round_trip(self):
        expr = A.BothIncluded(
            A.Union(A.NameRef("A"), A.NameRef("B")),
            A.Select("p", A.NameRef("A")),
            A.NameRef("C"),
        )
        assert parse(to_text(expr)) == expr

    @given(st.integers(0, 10_000))
    @settings(max_examples=60)
    def test_random_deep_round_trip(self, seed):
        import random

        rng = random.Random(seed)
        expr = _random_expr(rng, depth=4)
        assert parse(to_text(expr)) == expr
        assert parse(to_text(expr, unicode_ops=True)) == expr


def _random_expr(rng, depth: int) -> A.Expr:
    if depth == 0 or rng.random() < 0.25:
        return A.NameRef(rng.choice("ABC"))
    kind = rng.randrange(9)
    if kind == 7:
        return A.Select(rng.choice("pq"), _random_expr(rng, depth - 1))
    if kind == 8:
        return A.BothIncluded(
            _random_expr(rng, depth - 1),
            _random_expr(rng, depth - 1),
            _random_expr(rng, depth - 1),
        )
    op = [
        A.Union,
        A.Intersection,
        A.Difference,
        A.Including,
        A.IncludedIn,
        A.Preceding,
        A.Following,
    ][kind]
    return op(_random_expr(rng, depth - 1), _random_expr(rng, depth - 1))
