"""Expression AST: sizes, counts, traversal, chain construction."""

import pytest

from repro.algebra import ast as A


def _chain_example():
    # Name ⊂ (Proc_header ⊂ (Proc ⊂ Program))
    return A.including_chain(["Name", "Proc_header", "Proc", "Program"])


class TestSize:
    def test_name_is_zero(self):
        assert A.size(A.NameRef("R")) == 0
        assert A.size(A.Empty()) == 0

    def test_operators_count(self):
        assert A.size(_chain_example()) == 3

    def test_select_counts(self):
        assert A.size(A.Select("p", A.NameRef("R"))) == 1

    def test_both_included_counts_once(self):
        expr = A.BothIncluded(A.NameRef("R"), A.NameRef("S"), A.NameRef("T"))
        assert A.size(expr) == 1


class TestOrderOpCount:
    def test_counts_only_order_operators(self):
        expr = A.Preceding(
            A.Following(A.NameRef("A"), A.NameRef("B")),
            A.Including(A.NameRef("C"), A.NameRef("D")),
        )
        assert A.order_op_count(expr) == 2

    def test_zero_for_inclusion_chain(self):
        assert A.order_op_count(_chain_example()) == 0


class TestCollectors:
    def test_region_names(self):
        assert A.region_names(_chain_example()) == frozenset(
            {"Name", "Proc_header", "Proc", "Program"}
        )

    def test_pattern_names(self):
        expr = A.Select("x", A.Union(A.Select("y", A.NameRef("R")), A.NameRef("S")))
        assert A.pattern_names(expr) == frozenset({"x", "y"})

    def test_is_core(self):
        assert A.is_core(_chain_example())
        assert not A.is_core(A.DirectlyIncluding(A.NameRef("A"), A.NameRef("B")))
        assert not A.is_core(
            A.BothIncluded(A.NameRef("A"), A.NameRef("B"), A.NameRef("C"))
        )


class TestTraversal:
    def test_walk_preorder(self):
        expr = A.Union(A.NameRef("A"), A.NameRef("B"))
        nodes = list(A.walk(expr))
        assert nodes[0] is expr
        assert A.NameRef("A") in nodes and A.NameRef("B") in nodes

    def test_children(self):
        assert A.children(A.NameRef("A")) == ()
        assert A.children(A.Select("p", A.NameRef("A"))) == (A.NameRef("A"),)
        bi = A.BothIncluded(A.NameRef("A"), A.NameRef("B"), A.NameRef("C"))
        assert len(A.children(bi)) == 3

    def test_replace_child_binary(self):
        expr = A.Union(A.NameRef("A"), A.NameRef("B"))
        assert A.replace_child(expr, 0, A.NameRef("X")) == A.Union(
            A.NameRef("X"), A.NameRef("B")
        )
        assert A.replace_child(expr, 1, A.NameRef("X")) == A.Union(
            A.NameRef("A"), A.NameRef("X")
        )

    def test_replace_child_select_and_bi(self):
        sel = A.Select("p", A.NameRef("A"))
        assert A.replace_child(sel, 0, A.NameRef("B")) == A.Select("p", A.NameRef("B"))
        bi = A.BothIncluded(A.NameRef("A"), A.NameRef("B"), A.NameRef("C"))
        assert A.replace_child(bi, 2, A.NameRef("X")) == A.BothIncluded(
            A.NameRef("A"), A.NameRef("B"), A.NameRef("X")
        )

    def test_replace_child_out_of_range(self):
        with pytest.raises(IndexError):
            A.replace_child(A.Select("p", A.NameRef("A")), 1, A.NameRef("B"))


class TestChainBuilder:
    def test_right_grouping(self):
        expr = _chain_example()
        assert isinstance(expr, A.IncludedIn)
        assert expr.left == A.NameRef("Name")
        assert isinstance(expr.right, A.IncludedIn)

    def test_single_name(self):
        assert A.including_chain(["R"]) == A.NameRef("R")

    def test_containing_direction(self):
        expr = A.including_chain(["A", "B"], A.Including)
        assert expr == A.Including(A.NameRef("A"), A.NameRef("B"))

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            A.including_chain([])

    def test_expressions_are_hashable_and_comparable(self):
        assert _chain_example() == _chain_example()
        assert hash(_chain_example()) == hash(_chain_example())
