"""Algebraic laws of the region operators.

These are the identities a query optimizer may rely on; each is
property-tested over random hierarchical instances.  Laws that FAIL for
the region algebra (and are therefore absent from the rewrite library)
are documented at the bottom with explicit counter-examples.
"""

from hypothesis import given, settings

from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.core.regionset import RegionSet
from repro.engine.tagged import parse_tagged_text
from tests.conftest import hierarchical_instances


def _eq(instance, left: str, right: str) -> bool:
    return evaluate(parse(left), instance) == evaluate(parse(right), instance)


class TestSemiJoinLaws:
    @given(hierarchical_instances())
    @settings(max_examples=80)
    def test_left_distributivity_over_union(self, instance):
        """(a ∪ b) ∘ s = (a ∘ s) ∪ (b ∘ s) for every semi-join ∘."""
        for op in ("containing", "within", "before", "after"):
            assert _eq(
                instance,
                f"(R0 union R1) {op} R2",
                f"(R0 {op} R2) union (R1 {op} R2)",
            ), op

    @given(hierarchical_instances())
    @settings(max_examples=80)
    def test_right_distributivity_over_union(self, instance):
        """a ∘ (s ∪ t) = (a ∘ s) ∪ (a ∘ t) — witnesses are existential."""
        for op in ("containing", "within", "before", "after"):
            assert _eq(
                instance,
                f"R0 {op} (R1 union R2)",
                f"(R0 {op} R1) union (R0 {op} R2)",
            ), op

    @given(hierarchical_instances())
    @settings(max_examples=80)
    def test_monotone_shrinking(self, instance):
        """Semi-joins only filter: result ⊆ left operand."""
        for query in (
            "R0 containing R1",
            "R0 within R1",
            "R0 before R1",
            "R0 after R1",
            "R0 dcontaining R1",
            "bi(R0, R1, R2)",
        ):
            result = evaluate(parse(query), instance)
            assert result.difference(instance.region_set("R0")) == RegionSet.empty()

    @given(hierarchical_instances())
    @settings(max_examples=80)
    def test_right_monotonicity(self, instance):
        """Growing the witness set can only grow the result."""
        smaller = evaluate(parse("R0 containing R1"), instance)
        larger = evaluate(parse("R0 containing (R1 union R2)"), instance)
        assert smaller.difference(larger) == RegionSet.empty()

    @given(hierarchical_instances())
    @settings(max_examples=80)
    def test_semi_join_idempotence(self, instance):
        for op in ("containing", "within", "before", "after"):
            assert _eq(instance, f"(R0 {op} R1) {op} R1", f"R0 {op} R1"), op


class TestSelectionLaws:
    @given(hierarchical_instances(patterns=("p", "q")))
    @settings(max_examples=80)
    def test_selections_commute(self, instance):
        assert _eq(instance, 'R0 @ "p" @ "q"', 'R0 @ "q" @ "p"')

    @given(hierarchical_instances(patterns=("p",)))
    @settings(max_examples=80)
    def test_selection_distributes_over_every_set_op(self, instance):
        assert _eq(instance, '(R0 union R1) @ "p"', '(R0 @ "p") union (R1 @ "p")')
        assert _eq(instance, '(R0 isect R1) @ "p"', '(R0 @ "p") isect (R1 @ "p")')
        assert _eq(instance, '(R0 except R1) @ "p"', '(R0 @ "p") except R1')

    def test_selection_via_match_points_identity(self):
        """σ_p(e) ≡ (e containing "p") ∪ (e isect "p"): containment of an
        occurrence is strict inclusion or being the occurrence itself."""
        doc = parse_tagged_text(
            "<a> alpha </a> <b> beta alpha </b> <c> gamma </c>"
        )
        for source in ("a", "b", "c", "a union b"):
            assert _eq(
                doc.instance,
                f'({source}) @ "alpha"',
                f'(({source}) containing "alpha") union (({source}) isect "alpha")',
            ), source


class TestNonLaws:
    """Identities that are *false* for the region algebra."""

    def test_structural_ops_not_associative(self):
        """The paper notes ⊃, ⊂, <, > are not associative."""
        from repro.workloads.generators import TreeNode, instance_from_trees

        # R2 sits beside R1, not inside it: the right grouping still
        # selects R0 (it contains both), the left grouping selects nothing.
        tree = TreeNode("R0", [TreeNode("R1"), TreeNode("R2")])
        instance = instance_from_trees([tree], names=("R0", "R1", "R2"))
        assert not _eq(
            instance,
            "R0 containing (R1 containing R2)",
            "(R0 containing R1) containing R2",
        )

    def test_intersection_does_not_distribute_into_semijoin_left(self):
        """(a ∩ b) ⊃ s ≠ (a ⊃ s) ∩ b in general?  Actually this one HOLDS
        (the semi-join filters a); the false law is pushing ∩ into the
        witness side."""
        from repro.workloads.generators import TreeNode, instance_from_trees

        # a ⊃ (s ∩ t) vs (a ⊃ s) ∩ (a ⊃ t): witnesses may differ.
        tree = TreeNode("R0", [TreeNode("R1"), TreeNode("R2")])
        instance = instance_from_trees([tree], names=("R0", "R1", "R2"))
        left = evaluate(parse("R0 containing (R1 isect R2)"), instance)
        right = evaluate(
            parse("(R0 containing R1) isect (R0 containing R2)"), instance
        )
        assert left != right

    def test_difference_not_right_distributive(self):
        from repro.workloads.generators import TreeNode, instance_from_trees

        tree = TreeNode("R0", [TreeNode("R1"), TreeNode("R2")])
        instance = instance_from_trees([tree], names=("R0", "R1", "R2"))
        left = evaluate(parse("R0 containing (R1 except R2)"), instance)
        right = evaluate(
            parse("(R0 containing R1) except (R0 containing R2)"), instance
        )
        assert left != right
