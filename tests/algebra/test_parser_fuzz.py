"""Parser robustness: arbitrary input never crashes unexpectedly."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.errors import ParseError


class TestFuzz:
    @given(st.text(max_size=60))
    @settings(max_examples=400)
    def test_arbitrary_text_parses_or_raises_parse_error(self, text):
        try:
            expr = parse(text)
        except ParseError:
            return
        # Anything that parses must round-trip.
        assert parse(to_text(expr)) == expr

    @given(
        st.text(
            alphabet='ABab ()@"<>⊃⊂∪∩−+-^|&,*',
            max_size=40,
        )
    )
    @settings(max_examples=400)
    def test_operator_soup(self, text):
        try:
            expr = parse(text)
        except ParseError:
            return
        assert parse(to_text(expr)) == expr

    @given(st.text(alphabet="AB", min_size=1, max_size=8))
    def test_bare_names_always_parse(self, name):
        from repro.algebra import ast as A

        assert parse(name) in (
            A.NameRef(name),
            A.Empty(),  # "empty" cannot arise from alphabet AB
        )

    def test_nested_parentheses_within_limit(self):
        from repro.algebra import ast as A
        from repro.algebra.parser import MAX_NESTING_DEPTH

        depth = MAX_NESTING_DEPTH - 5
        text = "(" * depth + "A" + ")" * depth
        assert parse(text) == A.NameRef("A")

    def test_pathological_nesting_fails_cleanly(self):
        """Beyond the guard: a ParseError, never a RecursionError."""
        from repro.algebra.parser import MAX_NESTING_DEPTH

        depth = MAX_NESTING_DEPTH * 4
        text = "(" * depth + "A" + ")" * depth
        with __import__("pytest").raises(ParseError, match="nested deeper"):
            parse(text)

    def test_pathological_chain_fails_cleanly(self):
        from repro.algebra.parser import MAX_NESTING_DEPTH

        text = " within ".join(["A"] * (8 * MAX_NESTING_DEPTH))
        with __import__("pytest").raises(ParseError, match="chain longer"):
            parse(text)

    def test_long_chains(self):
        text = " within ".join(["A"] * 150)
        expr = parse(text)
        from repro.algebra import ast as A

        assert A.size(expr) == 149
        assert parse(to_text(expr)) == expr
