"""The Section 7 n-ary relational extension."""

import pytest
from hypothesis import given, settings

from repro.algebra.evaluator import evaluate
from repro.algebra.relational import (
    RegionRelation,
    relational_both_included,
    relational_directly_including,
)
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.errors import EvaluationError
from tests.conftest import hierarchical_instances


class TestRelationBasics:
    def test_from_region_set(self):
        rel = RegionRelation.from_region_set("r", RegionSet.of((1, 2), (4, 6)))
        assert rel.attributes == ("r",)
        assert len(rel) == 2

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(EvaluationError):
            RegionRelation(("r", "r"))

    def test_arity_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            RegionRelation(("r", "s"), [(Region(1, 2),)])

    def test_rows_deduplicate(self):
        row = (Region(1, 2),)
        assert len(RegionRelation(("r",), [row, row])) == 1

    def test_column_extraction(self):
        rel = RegionRelation(
            ("r", "s"),
            [(Region(0, 9), Region(1, 2)), (Region(0, 9), Region(4, 5))],
        )
        assert rel.column("r") == RegionSet.of((0, 9))
        assert rel.column("s") == RegionSet.of((1, 2), (4, 5))

    def test_unknown_attribute(self):
        rel = RegionRelation.from_region_set("r", RegionSet.of((1, 2)))
        with pytest.raises(EvaluationError, match="unknown attribute"):
            rel.column("z")


class TestRelationalOperators:
    @pytest.fixture
    def pair(self):
        r = RegionRelation.from_region_set("r", RegionSet.of((0, 9), (20, 29)))
        s = RegionRelation.from_region_set("s", RegionSet.of((2, 5), (22, 25), (40, 41)))
        return r, s

    def test_cross(self, pair):
        r, s = pair
        assert len(r.cross(s)) == 6
        assert r.cross(s).attributes == ("r", "s")

    def test_cross_shared_attribute_rejected(self, pair):
        r, _ = pair
        with pytest.raises(EvaluationError, match="rename"):
            r.cross(r)

    def test_rename(self, pair):
        r, _ = pair
        assert r.rename({"r": "r2"}).attributes == ("r2",)

    def test_join_on_includes(self, pair):
        r, s = pair
        joined = r.join(s, "r", "includes", "s")
        assert set(joined.rows) == {
            (Region(0, 9), Region(2, 5)),
            (Region(20, 29), Region(22, 25)),
        }

    def test_join_on_precedes(self, pair):
        r, s = pair
        joined = r.join(s, "r", "precedes", "s")
        assert (Region(0, 9), Region(22, 25)) in joined.rows

    def test_unknown_predicate(self, pair):
        r, s = pair
        with pytest.raises(EvaluationError, match="unknown predicate"):
            r.join(s, "r", "overlaps", "s")

    def test_projection(self, pair):
        r, s = pair
        joined = r.join(s, "r", "includes", "s")
        assert joined.project(("r",)).attributes == ("r",)
        assert len(joined.project(("r",))) == 2

    def test_set_operations_require_same_schema(self, pair):
        r, s = pair
        with pytest.raises(EvaluationError, match="schema mismatch"):
            r.union(s)
        renamed = s.rename({"s": "r"})
        assert len(r.union(renamed)) == 5
        assert len(r.difference(renamed)) == 2
        assert len(r.intersection(renamed)) == 0

    def test_select_pattern(self, small_instance):
        rel = RegionRelation.from_region_set("d", small_instance.region_set("D"))
        selected = rel.select_pattern("d", "x", small_instance)
        assert selected.column("d") == RegionSet.of((2, 4), (26, 28))


class TestSectionSevenQueries:
    """'It is easy to see that direct inclusion and both-included can be
    expressed by this extended language' — executed."""

    @given(hierarchical_instances())
    @settings(max_examples=100)
    def test_relational_direct_inclusion_matches_native(self, instance):
        expected = evaluate("R0 dcontaining R1", instance)
        actual = relational_directly_including(
            instance, instance.region_set("R0"), instance.region_set("R1")
        )
        assert actual == expected

    @given(hierarchical_instances())
    @settings(max_examples=100)
    def test_relational_both_included_matches_native(self, instance):
        expected = evaluate("bi(R0, R1, R2)", instance)
        actual = relational_both_included(
            instance.region_set("R0"),
            instance.region_set("R1"),
            instance.region_set("R2"),
        )
        assert actual == expected

    def test_pairwise_subtraction_not_projection(self, small_instance):
        """The blocked pairs must be subtracted before projecting: A[0,19]
        includes D[2,4] through B but no D directly — yet a naive
        project-then-subtract would keep it."""
        result = relational_directly_including(
            small_instance,
            small_instance.region_set("A"),
            small_instance.region_set("D"),
        )
        assert result == RegionSet.of((25, 30))
