"""Evaluator semantics: goldens, strategy agreement, extended operators."""

import pytest
from hypothesis import given, settings

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator, evaluate
from repro.core.regionset import RegionSet
from repro.errors import EvaluationError, UnknownRegionNameError
from tests.conftest import hierarchical_instances

INDEXED = Evaluator("indexed")
NAIVE = Evaluator("naive")

# A panel exercising every operator, evaluated on `small_instance`
# (layout documented in conftest.py).
GOLDEN = {
    "A": {(0, 19), (25, 30)},
    "A containing D": {(0, 19), (25, 30)},
    "A dcontaining D": {(25, 30)},
    "D within B": {(2, 4)},
    "D dwithin B": {(2, 4)},
    "B before C": {(1, 8)},
    "D after C": {(26, 28)},
    "B union D": {(1, 8), (11, 13), (2, 4), (15, 17), (26, 28)},
    "(B union D) isect D": {(2, 4), (15, 17), (26, 28)},
    "D except (D within C)": {(2, 4), (26, 28)},
    'D @ "x"': {(2, 4), (26, 28)},
    'D @ "x" @ "y"': {(26, 28)},
    "bi(A, B, C)": {(0, 19)},
    "bi(A, D, D)": {(0, 19)},
    "bi(C, B, D)": {(10, 18)},
    "bi(C, D, B)": set(),
    "empty": set(),
    "A containing empty": set(),
}


class TestGoldenSemantics:
    @pytest.mark.parametrize("query,expected", sorted(GOLDEN.items()))
    def test_indexed(self, small_instance, query, expected):
        result = INDEXED.evaluate(query, small_instance)
        assert {r.as_tuple() for r in result} == expected

    @pytest.mark.parametrize("query,expected", sorted(GOLDEN.items()))
    def test_naive(self, small_instance, query, expected):
        result = NAIVE.evaluate(query, small_instance)
        assert {r.as_tuple() for r in result} == expected


class TestStrategyAgreement:
    """The indexed engine must agree with the definitional oracle."""

    QUERIES = [
        "R0 containing R1",
        "R0 within R1",
        "R0 before R1",
        "R0 after R1",
        "R0 dcontaining R1",
        "R0 dwithin R1",
        "bi(R0, R1, R2)",
        "bi(R0, R0, R0)",
        'R0 @ "p" containing (R1 @ "q")',
        "(R0 union R1) except (R2 isect R0)",
        "R0 containing R1 containing R2",
        "R0 within R1 before R2",
    ]

    @given(hierarchical_instances(patterns=("p", "q")))
    @settings(max_examples=150)
    def test_agreement(self, instance):
        for query in self.QUERIES:
            assert INDEXED.evaluate(query, instance) == NAIVE.evaluate(
                query, instance
            ), query

    @given(hierarchical_instances())
    def test_structural_results_subset_of_left(self, instance):
        for query in ("R0 containing R1", "R0 within R1", "R0 before R1"):
            result = INDEXED.evaluate(query, instance)
            assert result.difference(instance.region_set("R0")) == RegionSet.empty()


class TestEvaluatorMechanics:
    def test_accepts_text_and_trees(self, small_instance):
        text_result = INDEXED.evaluate("B union D", small_instance)
        tree_result = INDEXED.evaluate(
            A.Union(A.NameRef("B"), A.NameRef("D")), small_instance
        )
        assert text_result == tree_result

    def test_unknown_name(self, small_instance):
        with pytest.raises(UnknownRegionNameError):
            INDEXED.evaluate("Nope", small_instance)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(EvaluationError):
            Evaluator("magic")  # type: ignore[arg-type]

    def test_module_level_helper(self, small_instance):
        assert evaluate("A", small_instance) == small_instance.region_set("A")
        assert evaluate("A", small_instance, "naive") == small_instance.region_set("A")

    def test_shared_subexpressions_memoized(self, small_instance):
        # (B ∪ D) − (B ∪ D) must be empty and evaluate the union once;
        # correctness of memoization shows as plain correctness here.
        shared = A.Union(A.NameRef("B"), A.NameRef("D"))
        assert INDEXED.evaluate(A.Difference(shared, shared), small_instance) == RegionSet.empty()


class TestDirectOperatorSemantics:
    def test_direct_needs_no_intermediate_of_any_name(self, small_instance):
        from repro.core.region import Region

        # With B[1,8] removed, the only remaining B is B[11,13], which
        # A[0,19] includes — but C[10,18] interposes, so not directly,
        # even though C is neither operand's name.
        variant = small_instance.without_regions([Region(1, 8)])
        assert INDEXED.evaluate("A containing B", variant) == RegionSet.of((0, 19))
        assert INDEXED.evaluate("A dcontaining B", variant) == RegionSet.empty()

    def test_direct_included_mirror(self, small_instance):
        assert INDEXED.evaluate("B dwithin C", small_instance) == RegionSet.of((11, 13))

    @given(hierarchical_instances())
    def test_direct_is_subset_of_plain(self, instance):
        plain = INDEXED.evaluate("R0 containing R1", instance)
        direct = INDEXED.evaluate("R0 dcontaining R1", instance)
        assert direct.difference(plain) == RegionSet.empty()


class TestBothIncludedSemantics:
    def test_order_matters(self, small_instance):
        assert INDEXED.evaluate("bi(C, B, D)", small_instance) == RegionSet.of((10, 18))
        assert INDEXED.evaluate("bi(C, D, B)", small_instance) == RegionSet.empty()

    def test_witnesses_must_be_strictly_inside(self):
        from repro.core.instance import Instance

        # r = [0,10]; s = [0,4] shares r's left endpoint (still strictly
        # included); t = [6,10] shares the right endpoint.
        inst = Instance(
            {
                "R": RegionSet.of((0, 10)),
                "S": RegionSet.of((0, 4)),
                "T": RegionSet.of((6, 10)),
            }
        )
        assert INDEXED.evaluate("bi(R, S, T)", inst) == RegionSet.of((0, 10))
        assert NAIVE.evaluate("bi(R, S, T)", inst) == RegionSet.of((0, 10))

    def test_same_region_cannot_be_both_witnesses(self):
        from repro.core.instance import Instance

        inst = Instance({"R": RegionSet.of((0, 10)), "S": RegionSet.of((2, 5))})
        assert INDEXED.evaluate("bi(R, S, S)", inst) == RegionSet.empty()
