"""The evaluation profiler (EXPLAIN ANALYZE)."""

import pytest

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.algebra.parser import parse
from repro.algebra.profile import profile


class TestProfile:
    def test_result_matches_plain_evaluation(self, small_instance):
        query = "bi(A, B, C) union (D within B)"
        report = profile(query, small_instance)
        assert report.result == evaluate(query, small_instance)

    def test_every_node_recorded_preorder(self, small_instance):
        expr = parse("(A containing B) union D")
        report = profile(expr, small_instance)
        recorded = [node.expression for node in report.nodes]
        assert recorded == list(A.walk(expr))

    def test_depths_follow_structure(self, small_instance):
        report = profile("(A containing B) union D", small_instance)
        depths = [node.depth for node in report.nodes]
        assert depths == [0, 1, 2, 2, 1]

    def test_cardinalities(self, small_instance):
        report = profile("A containing D", small_instance)
        by_text = {node.text: node.cardinality for node in report.nodes}
        assert by_text["A"] == 2
        assert by_text["D"] == 3
        assert by_text["A containing D"] == 2

    def test_root_time_dominates(self, small_instance):
        report = profile("(A containing B) union D", small_instance)
        root = report.nodes[0]
        assert root.depth == 0
        assert all(root.seconds >= n.seconds for n in report.nodes)
        assert report.total_seconds == root.seconds

    def test_hottest(self, small_instance):
        report = profile("(A containing B) union D", small_instance)
        hottest = report.hottest(2)
        assert len(hottest) == 2
        assert hottest[0].seconds >= hottest[1].seconds

    def test_naive_strategy(self, small_instance):
        report = profile("A containing D", small_instance, strategy="naive")
        assert report.result == evaluate("A containing D", small_instance)

    def test_accepts_text(self, small_instance):
        assert profile("A", small_instance).nodes[0].text == "A"

    def test_empty_profile_total(self):
        from repro.algebra.profile import QueryProfile
        from repro.core.regionset import RegionSet

        assert QueryProfile(result=RegionSet.empty()).total_seconds == 0.0
