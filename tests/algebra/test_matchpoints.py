"""Match-point queries: PAT's word index as an algebra leaf."""

import pytest

from repro.algebra import ast as A
from repro.algebra.evaluator import Evaluator, evaluate
from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.core.regionset import RegionSet
from repro.engine.tagged import parse_tagged_text
from repro.errors import EvaluationError


@pytest.fixture
def doc():
    return parse_tagged_text(
        "<play><speech> the east sun </speech>"
        "<speech> the sun also </speech></play>"
    )


class TestParsing:
    def test_bare_string_is_match_points(self):
        assert parse('"sun"') == A.MatchPoints("sun")

    def test_round_trip(self):
        for text in ('"sun"', 'speech containing "sun"', '"a" before "b"'):
            expr = parse(text)
            assert parse(to_text(expr)) == expr

    def test_match_points_are_leaves(self):
        expr = parse('speech containing "sun"')
        assert A.size(expr) == 1  # only the containing operator
        assert A.pattern_names(expr) == frozenset({"sun"})
        assert not A.is_core(expr)  # engine extension, outside Def 2.2


class TestEvaluation:
    def test_match_points_as_operand(self, doc):
        speeches = evaluate('speech containing "east"', doc.instance)
        assert len(speeches) == 1

    def test_match_points_result_positions(self, doc):
        points = evaluate('"sun"', doc.instance)
        assert len(points) == 2
        for point in points:
            assert doc.text[point.left : point.right + 1] == "sun"

    def test_prefix_pattern(self, doc):
        # Tag names are markup, not words: only the two "sun" tokens match.
        assert len(evaluate('"s*"', doc.instance)) == 2

    def test_proximity_style_query(self, doc):
        # match points compose with order operators: "the" before "also".
        firsts = evaluate('"the" before "also"', doc.instance)
        assert len(firsts) == 2

    def test_within_region(self, doc):
        speeches = sorted(doc.instance.region_set("speech"))
        inside = evaluate('"east" within speech', doc.instance)
        assert len(inside) == 1
        (point,) = inside
        assert speeches[0].includes(point)

    def test_requires_text_index(self, small_instance):
        with pytest.raises(EvaluationError, match="text-backed"):
            evaluate('"x"', small_instance)

    def test_unmatched_pattern_is_empty(self, doc):
        assert evaluate('"zzz"', doc.instance) == RegionSet.empty()

    def test_strategies_agree(self, doc):
        for query in ('"sun"', 'speech containing "sun" before "also"'):
            assert Evaluator("indexed").evaluate(query, doc.instance) == Evaluator(
                "naive"
            ).evaluate(query, doc.instance)
