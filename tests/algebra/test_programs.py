"""The Section 6 while-programs against the native direct operators."""

import random

import pytest
from hypothesis import given, settings

from repro.algebra.evaluator import evaluate
from repro.algebra.programs import (
    direct_chain_by_iterated_program,
    direct_chain_program,
    direct_chain_program_corrected,
    direct_included_program,
    direct_including_program,
)
from repro.core.regionset import RegionSet
from repro.errors import EvaluationError
from repro.workloads.generators import (
    TreeNode,
    instance_from_trees,
    nested_tower,
    random_instance,
)
from tests.conftest import hierarchical_instances


class TestSingleOperatorProgram:
    @given(hierarchical_instances(names=("R0", "R1")))
    @settings(max_examples=150)
    def test_matches_native_direct_including(self, instance):
        native = evaluate("R0 dcontaining R1", instance)
        result = direct_including_program(
            instance, instance.region_set("R0"), instance.region_set("R1")
        )
        assert result.regions == native

    @given(hierarchical_instances(names=("R0", "R1")))
    @settings(max_examples=150)
    def test_matches_native_direct_included(self, instance):
        native = evaluate("R0 dwithin R1", instance)
        result = direct_included_program(
            instance, instance.region_set("R0"), instance.region_set("R1")
        )
        assert result.regions == native

    def test_iterations_bounded_by_nesting_depth(self):
        instance = nested_tower(12, ("R0", "R1"))
        result = direct_including_program(
            instance, instance.region_set("R0"), instance.region_set("R1")
        )
        # The loop peels one R0-self-nesting layer per iteration.
        assert result.iterations <= instance.region_set("R0").max_nesting_depth()

    def test_empty_inputs(self, small_instance):
        result = direct_including_program(
            small_instance, RegionSet.empty(), small_instance.region_set("D")
        )
        assert result.regions == RegionSet.empty()
        assert result.iterations == 0

    def test_universe_restriction_with_covering_names(self, small_instance):
        # Between A and D only B and C regions can interpose.
        full = direct_including_program(
            small_instance,
            small_instance.region_set("A"),
            small_instance.region_set("D"),
        )
        restricted = direct_including_program(
            small_instance,
            small_instance.region_set("A"),
            small_instance.region_set("D"),
            universe_names=("B", "C"),
        )
        assert restricted.regions == full.regions

    def test_universe_restriction_missing_name_is_wrong(self, small_instance):
        # Dropping B from the interference set lets A "directly" include
        # the D regions B shields — the minimal-set condition is real.
        broken = direct_including_program(
            small_instance,
            small_instance.region_set("A"),
            small_instance.region_set("D"),
            universe_names=("C",),
        )
        native = evaluate("A dcontaining D", small_instance)
        assert broken.regions != native


class TestChainPrograms:
    CHAIN = ["R0", "R1", "R2"]

    def _native(self, instance):
        return evaluate("R0 dcontaining R1 dcontaining R2", instance)

    @given(hierarchical_instances())
    @settings(max_examples=150)
    def test_corrected_one_loop_matches_native(self, instance):
        result = direct_chain_program_corrected(instance, self.CHAIN)
        assert result.regions == self._native(instance)

    @given(hierarchical_instances())
    @settings(max_examples=100)
    def test_iterated_program_matches_native(self, instance):
        result = direct_chain_by_iterated_program(instance, self.CHAIN)
        assert result.regions == self._native(instance)

    @given(hierarchical_instances())
    @settings(max_examples=100)
    def test_paper_program_sound(self, instance):
        """The printed program never over-selects (its shields only grow)."""
        result = direct_chain_program(instance, self.CHAIN)
        assert result.regions.difference(self._native(instance)) == RegionSet.empty()

    def test_paper_program_incomplete_on_self_nested_interiors(self):
        """EXPERIMENTS.md E9: the printed one-loop program misses direct
        chains whose interior type also occurs above R1.

        Structure: R1 ⊃ R0 ⊃ R1 ⊃ R2.  The chain R0 ⊃_d R1 ⊃_d R2 holds
        at the inner three levels, but the inner R1 is globally nested
        below another R1, reaches the interference threshold
        ``#_e^{R1} = 1``, and shields its own endpoint.
        """
        tree = TreeNode(
            "R1", [TreeNode("R0", [TreeNode("R1", [TreeNode("R2")])])]
        )
        instance = instance_from_trees([tree], names=("R0", "R1", "R2"))
        native = self._native(instance)
        assert len(native) == 1  # the R0 region
        paper = direct_chain_program(instance, self.CHAIN)
        corrected = direct_chain_program_corrected(instance, self.CHAIN)
        assert paper.regions == RegionSet.empty()  # the documented miss
        assert corrected.regions == native

    def test_agreement_when_interiors_not_above_r1(self, rng):
        """On instances where no interior type occurs above R0, the
        printed program is exact (the practical case the paper targets)."""
        for trial in range(100):
            instance = random_instance(
                rng, names=("R0", "R1", "R2"), max_nodes=25
            )
            if evaluate("R0 within (R1 union R2)", instance):
                continue  # interior/endpoint type above R0: excluded case
            assert direct_chain_program(instance, self.CHAIN).regions == self._native(
                instance
            )

    def test_single_loop_uses_fewer_iterations(self):
        # Deep tower: the iterated baseline pays one full peel per ⊃_d.
        names = ("R0", "R1", "R2")
        instance = nested_tower(18, ("R0", "R1", "R2"))
        one_loop = direct_chain_program_corrected(instance, list(names))
        iterated = direct_chain_by_iterated_program(instance, list(names))
        assert one_loop.regions == iterated.regions
        assert one_loop.iterations <= iterated.iterations

    def test_short_chain_rejected(self, small_instance):
        for program in (
            direct_chain_program,
            direct_chain_program_corrected,
            direct_chain_by_iterated_program,
        ):
            with pytest.raises(EvaluationError):
                program(small_instance, ["A"])

    def test_two_name_chain_equals_single_program(self, small_instance):
        chain = direct_chain_program_corrected(small_instance, ["A", "D"])
        single = direct_including_program(
            small_instance,
            small_instance.region_set("A"),
            small_instance.region_set("D"),
        )
        assert chain.regions == single.regions


@pytest.fixture
def rng():
    return random.Random(1234)
