"""Bounded expression enumeration: coverage and canonical pruning."""

from repro.algebra import ast as A
from repro.algebra.enumerate import (
    count_expressions,
    distinct_on,
    enumerate_expressions,
)


class TestEnumeration:
    def test_size_zero_is_names(self):
        exprs = list(enumerate_expressions(("A", "B"), 0))
        assert exprs == [A.NameRef("A"), A.NameRef("B")]

    def test_all_sizes_respected(self):
        for expr in enumerate_expressions(("A", "B"), 2, patterns=("p",)):
            assert A.size(expr) <= 2

    def test_no_duplicates(self):
        exprs = list(enumerate_expressions(("A", "B"), 2))
        assert len(exprs) == len(set(exprs))

    def test_commutative_pruning(self):
        exprs = set(enumerate_expressions(("A", "B"), 1))
        ab = A.Union(A.NameRef("A"), A.NameRef("B"))
        ba = A.Union(A.NameRef("B"), A.NameRef("A"))
        assert (ab in exprs) != (ba in exprs)

    def test_noncommutative_keeps_both_orders(self):
        exprs = set(enumerate_expressions(("A", "B"), 1))
        assert A.Difference(A.NameRef("A"), A.NameRef("B")) in exprs
        assert A.Difference(A.NameRef("B"), A.NameRef("A")) in exprs

    def test_known_size_one_count(self):
        # 2 names: 5 noncommutative ops × 4 ordered pairs = 20,
        # 2 commutative × 3 unordered pairs = 6, plus σ_p over 2 names.
        assert count_expressions(("A", "B"), 1, patterns=("p",)) == 2 + 20 + 6 + 2

    def test_extended_flag_adds_direct_ops(self):
        core = set(enumerate_expressions(("A", "B"), 1))
        extended = set(enumerate_expressions(("A", "B"), 1, extended=True))
        direct = A.DirectlyIncluding(A.NameRef("A"), A.NameRef("B"))
        assert direct not in core
        assert direct in extended

    def test_patterns_generate_selections(self):
        exprs = set(enumerate_expressions(("A",), 1, patterns=("p", "q")))
        assert A.Select("p", A.NameRef("A")) in exprs
        assert A.Select("q", A.NameRef("A")) in exprs

    def test_every_small_expression_appears(self):
        """Spot-check completeness against hand-built expressions."""
        exprs = set(enumerate_expressions(("A", "B"), 2, patterns=("p",)))
        assert A.Including(
            A.NameRef("A"), A.Select("p", A.NameRef("B"))
        ) in exprs
        assert A.IncludedIn(
            A.Difference(A.NameRef("A"), A.NameRef("B")), A.NameRef("A")
        ) in exprs


class TestDistinctOn:
    def test_deduplicates_by_fingerprint(self):
        exprs = [
            A.NameRef("A"),
            A.Union(A.NameRef("A"), A.NameRef("A")),
            A.NameRef("B"),
        ]
        # Fingerprint by referenced names: the self-union collapses onto A.
        unique = list(distinct_on(exprs, A.region_names))
        assert unique == [A.NameRef("A"), A.NameRef("B")]
