"""Propositions 5.2 and 5.4: bounded expansions into the core algebra."""

from hypothesis import given, settings

from repro.algebra import ast as A
from repro.algebra.evaluator import evaluate
from repro.algebra.expand import (
    expand_both_included,
    expand_directly_included,
    expand_directly_including,
    union_of_names,
)
from repro.core.regionset import RegionSet
from repro.errors import OptimizationError
from repro.workloads.generators import (
    TreeNode,
    flat_row,
    instance_from_trees,
    nested_tower,
)
from tests.conftest import hierarchical_instances

import pytest


NAMES = ("R0", "R1", "R2")


class TestUnionOfNames:
    def test_single(self):
        assert union_of_names(["A"]) == A.NameRef("A")

    def test_multiple(self):
        expr = union_of_names(["A", "B", "C"])
        assert A.region_names(expr) == frozenset({"A", "B", "C"})
        assert A.size(expr) == 2

    def test_empty_rejected(self):
        with pytest.raises(OptimizationError):
            union_of_names([])


class TestDirectIncludingExpansion:
    def test_expansion_is_core_algebra(self):
        expr = expand_directly_including(
            A.NameRef("R0"), A.NameRef("R1"), NAMES, depth_bound=3
        )
        assert A.is_core(expr)

    @given(hierarchical_instances())
    @settings(max_examples=120)
    def test_matches_native_with_sufficient_bound(self, instance):
        bound = max(instance.region_set("R0").max_nesting_depth(), 1)
        expr = expand_directly_including(
            A.NameRef("R0"), A.NameRef("R1"), NAMES, depth_bound=bound
        )
        assert evaluate(expr, instance) == evaluate("R0 dcontaining R1", instance)

    @given(hierarchical_instances())
    @settings(max_examples=120)
    def test_included_matches_native_with_sufficient_bound(self, instance):
        bound = max(instance.region_set("R1").max_nesting_depth(), 1)
        expr = expand_directly_included(
            A.NameRef("R0"), A.NameRef("R1"), NAMES, depth_bound=bound
        )
        assert evaluate(expr, instance) == evaluate("R0 dwithin R1", instance)

    def test_depth_one_is_the_paper_one_liner(self):
        """For non-self-nested Q (acyclic RIG):
        ``Q ⊃_d R = Q ⊃ (R − (R ⊂ (All ⊂ Q)))``."""
        expr = expand_directly_including(
            A.NameRef("Q"), A.NameRef("R"), ("Q", "R"), depth_bound=1
        )
        # One layer: layer_1 = Q − (Q ⊂ Q); the overall shape is a single
        # Including over the filtered target.
        assert isinstance(expr, A.Including)

    def test_insufficient_bound_fails_on_deep_nesting(self):
        """The bound is load-bearing: depth 1 is wrong on self-nested Q —
        this is why Theorem 5.1 needs unbounded nesting."""
        instance = nested_tower(6, ("R0", "R0", "R1"))
        expr = expand_directly_including(
            A.NameRef("R0"), A.NameRef("R1"), ("R0", "R1"), depth_bound=1
        )
        native = evaluate("R0 dcontaining R1", instance)
        assert evaluate(expr, instance) != native

    def test_invalid_bound_rejected(self):
        with pytest.raises(OptimizationError):
            expand_directly_including(A.NameRef("A"), A.NameRef("B"), ("A", "B"), 0)


class TestBothIncludedExpansion:
    def test_expansion_is_core_algebra(self):
        expr = expand_both_included(
            A.NameRef("R0"), A.NameRef("R1"), A.NameRef("R2"), width_bound=4
        )
        assert A.is_core(expr)

    @given(hierarchical_instances())
    @settings(max_examples=120)
    def test_matches_native_with_sufficient_bound(self, instance):
        bound = max(len(instance.region_set("R1")), 1)
        expr = expand_both_included(
            A.NameRef("R0"), A.NameRef("R1"), A.NameRef("R2"), width_bound=bound
        )
        assert evaluate(expr, instance) == evaluate("bi(R0, R1, R2)", instance)

    def test_nested_witness_leak_is_avoided(self):
        """The construction must not select a region whose only 'witnesses'
        are nested: r ⊃ s ⊃ (u < t) has no S-before-T pair."""
        tree = TreeNode(
            "R0",
            [
                TreeNode(
                    "R1",
                    [TreeNode("R2"), TreeNode("R2")],
                )
            ],
        )
        instance = instance_from_trees([tree], names=NAMES)
        expr = expand_both_included(
            A.NameRef("R0"), A.NameRef("R1"), A.NameRef("R2"), width_bound=4
        )
        assert evaluate(expr, instance) == RegionSet.empty()
        assert evaluate("bi(R0, R1, R2)", instance) == RegionSet.empty()

    def test_insufficient_width_bound_fails(self):
        """With more non-overlapping regions than the bound, witnesses at
        deep follow-positions are missed — this is why Theorem 5.3 needs
        unbounded width.  Three leading R1 siblings push the witness R1's
        follow-position beyond a width bound of 2."""
        trees = [TreeNode("R1") for _ in range(3)] + [
            TreeNode("R0", [TreeNode("R1"), TreeNode("R2")])
        ]
        instance = instance_from_trees(trees, names=NAMES)
        native = evaluate("bi(R0, R1, R2)", instance)
        assert native  # the root qualifies
        small = expand_both_included(
            A.NameRef("R0"), A.NameRef("R1"), A.NameRef("R2"), width_bound=2
        )
        assert evaluate(small, instance) != native

    def test_flat_rows_have_width_one_positions(self):
        instance = flat_row(5, "R1")
        # No R0/R2 regions at all: expansion evaluates to empty without error.
        padded = instance_from_trees(
            [TreeNode("R0", [TreeNode("R1"), TreeNode("R2")])], names=NAMES
        )
        expr = expand_both_included(
            A.NameRef("R0"), A.NameRef("R1"), A.NameRef("R2"), width_bound=1
        )
        assert evaluate(expr, padded) == evaluate("bi(R0, R1, R2)", padded)

    def test_invalid_bound_rejected(self):
        with pytest.raises(OptimizationError):
            expand_both_included(A.NameRef("A"), A.NameRef("B"), A.NameRef("C"), 0)
