"""Snapshot isolation of the read path: a query that captured
generation G keeps answering from G's engine even while ingest commits
publish G+1, G+2, … — across plain, thread-sharded, and process-sharded
evaluation."""

import threading
import time

import pytest

from repro.engine import Engine
from repro.engine.tagged import parse_tagged_text
from repro.faults.registry import FaultSpec, injected_faults
from repro.ingest import LiveCorpus
from repro.server import CorpusSpec, QueryService, ServerConfig

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=2)

BASE = (
    "<document>\n"
    "<speech><speaker>First</speaker><line>crown and throne</line></speech>\n"
    "</document>"
)


def _doc(word: str) -> str:
    return (
        f"<speech><speaker>Ingest</speaker>"
        f"<line>{word} at midnight</line></speech>"
    )


def _append(doc_id: str, word: str) -> dict:
    return {"op": "append", "id": doc_id, "text": _doc(word)}


def _service(tmp_path, **overrides) -> QueryService:
    settings = dict(
        workers=4,
        queue_depth=16,
        corpora=(PLAY,),
        cache_enabled=False,
        ingest_enabled=True,
        ingest_dir=str(tmp_path / "wal"),
        ingest_fsync=False,
        compaction_enabled=False,
    )
    settings.update(overrides)
    return QueryService(ServerConfig(**settings))


class TestHandleSnapshot:
    def test_captured_engine_outlives_the_next_generation(self, tmp_path):
        # The exact capture the service's _execute performs: engine and
        # generation are read together, then never re-read.
        service = _service(tmp_path)
        try:
            handle = service._handle("play")
            engine, generation = handle.engine, handle.generation
            before = [[r.left, r.right] for r in engine.query("speech")]
            service.ingest("play", [_append("a", "prophecy")])
            assert handle.generation == generation + 1
            # The old snapshot still answers exactly as it did …
            assert [
                [r.left, r.right] for r in engine.query("speech")
            ] == before
            # … while the published generation sees the new document.
            assert len(service._handle("play").engine.query("speech")) == (
                len(before) + 1
            )
        finally:
            service.close()

    def test_query_in_flight_during_commit_keeps_its_generation(
        self, tmp_path
    ):
        # Slow the evaluator down with latency faults, commit while the
        # query is provably mid-evaluation, and check it answers from
        # the generation it started on.
        service = _service(tmp_path)
        try:
            base = service.execute("speech dwithin scene", use_cache=False)
            result: dict = {}

            def read() -> None:
                result.update(
                    service.execute("speech dwithin scene", use_cache=False)
                )

            spec = FaultSpec(
                "evaluator.step", "latency", probability=1.0, latency=0.05
            )
            with injected_faults(spec) as registry:
                reader = threading.Thread(target=read)
                reader.start()
                deadline = time.monotonic() + 5.0
                while (
                    registry.fires("evaluator.step") == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.005)
                assert registry.fires("evaluator.step") > 0
                # The reader is inside evaluation, so its snapshot is
                # already pinned.  Publish two new generations under it.
                service.ingest("play", [_append("a", "prophecy")])
                service.ingest("play", [_append("b", "dagger")])
                reader.join()
            assert result["generation"] == base["generation"]
            assert result["regions"] == base["regions"]
        finally:
            service.close()

    def test_concurrent_readers_always_see_a_consistent_snapshot(
        self, tmp_path
    ):
        # Thread-sharded scatter-gather readers racing single-append
        # commits: every response's cardinality must match the
        # generation it claims (each commit adds exactly one speech),
        # which a torn mid-install read could not satisfy.
        service = _service(tmp_path, shards=2)
        try:
            base = service.execute("speech", use_cache=False)["cardinality"]
            stop = threading.Event()
            errors: list[Exception] = []

            def read() -> None:
                try:
                    while not stop.is_set():
                        response = service.execute("speech", use_cache=False)
                        expected = base + (response["generation"] - 1)
                        assert response["cardinality"] == expected, response
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            readers = [threading.Thread(target=read) for _ in range(3)]
            for thread in readers:
                thread.start()
            try:
                for i in range(8):
                    service.ingest("play", [_append(f"doc-{i}", "prophecy")])
            finally:
                stop.set()
                for thread in readers:
                    thread.join()
            assert not errors
        finally:
            service.close()


class TestProcessShardPool:
    def test_process_sharded_engine_is_a_frozen_snapshot(self):
        # The process pool ships each generation's segments to its
        # workers once; an old engine's workers never see a commit.
        live = LiveCorpus(parse_tagged_text(BASE).instance, BASE)
        live.apply([_append("a", "prophecy"), _append("b", "dagger")])
        old = Engine(live.instance, shards=2, shard_pool="process")
        try:
            before = [[r.left, r.right] for r in old.query("speech")]
            assert len(before) == 3
            live.apply([_append("c", "ghost")])
            new = Engine(live.instance, shards=2, shard_pool="process")
            try:
                assert [
                    [r.left, r.right] for r in old.query("speech")
                ] == before
                assert len(new.query("speech")) == 4
            finally:
                new.close()
        finally:
            old.close()
