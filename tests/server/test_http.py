"""The HTTP front end, exercised over real sockets on a free port."""

import http.client
import json
import threading

import pytest

from repro.server import (
    CorpusSpec,
    QueryService,
    ServerConfig,
    create_server,
    render_prometheus,
)

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=2)


@pytest.fixture(scope="module")
def server():
    service = QueryService(
        ServerConfig(workers=2, queue_depth=4, corpora=(PLAY,))
    )
    srv = create_server(service, port=0)
    srv.serve_in_background()
    yield srv
    srv.stop()


def request(server, method, path, body=None):
    connection = http.client.HTTPConnection(
        "127.0.0.1", server.bound_port, timeout=10
    )
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError:
            decoded = raw.decode("utf-8")
        return response.status, dict(response.getheaders()), decoded
    finally:
        connection.close()


class TestEndpoints:
    def test_healthz(self, server):
        status, _, body = request(server, "GET", "/healthz")
        assert status == 200
        assert body["status"] == "healthy"

    def test_post_query(self, server):
        status, _, body = request(
            server, "POST", "/query", {"query": "speech dwithin scene"}
        )
        assert status == 200
        assert body["corpus"] == "play"
        assert body["cardinality"] == len(body["regions"]) > 0

    def test_get_query_matches_post(self, server):
        _, _, posted = request(
            server, "POST", "/query", {"query": "scene within act"}
        )
        status, _, got = request(
            server, "GET", "/query?q=scene%20within%20act"
        )
        assert status == 200
        assert got["regions"] == posted["regions"]

    def test_explain(self, server):
        status, _, body = request(
            server,
            "POST",
            "/explain",
            {"query": "line within speech within scene", "optimize": True},
        )
        assert status == 200
        assert "plan" in body and "regions" not in body

    def test_corpora_listing_and_reload(self, server):
        status, _, body = request(server, "GET", "/corpora")
        assert status == 200
        (info,) = body["corpora"]
        assert info["name"] == "play"
        generation = info["generation"]

        status, _, body = request(server, "POST", "/corpora/play/reload")
        assert status == 200
        assert body["generation"] == generation + 1

    def test_metrics_json_and_prometheus(self, server):
        request(server, "POST", "/query", {"query": "speech dwithin scene"})
        status, _, body = request(server, "GET", "/metrics")
        assert status == 200
        assert "server_requests_total" in body["metrics"]["counters"]

        status, headers, text = request(
            server, "GET", "/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE server_requests_total counter" in text
        assert 'endpoint="query"' in text


class TestErrorMapping:
    def test_400_on_parse_error(self, server):
        status, _, body = request(
            server, "POST", "/query", {"query": "speech within within"}
        )
        assert status == 400
        assert "error" in body

    def test_400_on_missing_query(self, server):
        status, _, _ = request(server, "POST", "/query", {})
        assert status == 400
        status, _, _ = request(server, "GET", "/query")
        assert status == 400

    def test_400_on_bad_json(self, server):
        connection = http.client.HTTPConnection(
            "127.0.0.1", server.bound_port, timeout=10
        )
        try:
            connection.request(
                "POST",
                "/query",
                body="{not json",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            response.read()
            assert response.status == 400
        finally:
            connection.close()

    def test_404_on_unknown_corpus_and_path(self, server):
        status, _, _ = request(
            server, "POST", "/query", {"query": "speech", "corpus": "nope"}
        )
        assert status == 404
        status, _, _ = request(server, "GET", "/no/such/endpoint")
        assert status == 404

    def test_504_on_timeout(self, server):
        status, _, body = request(
            server,
            "POST",
            "/query",
            {
                "query": "line within speech within scene",
                "deadline": 1e-6,
                "use_cache": False,
            },
        )
        assert status == 504
        assert body["budget"] == pytest.approx(1e-6)

    def test_429_with_retry_after_under_saturation(self, server):
        service = server.service
        release = threading.Event()
        running = threading.Event()

        def block():
            running.set()
            release.wait(timeout=10)

        # Saturate the pool directly: 2 workers + 4 queue slots.
        blockers = [service.pool.submit(block) for _ in range(6)]
        try:
            assert running.wait(timeout=5)
            status, headers, body = request(
                server,
                "POST",
                "/query",
                {"query": "speech dwithin scene", "use_cache": False},
            )
            assert status == 429
            assert float(headers["Retry-After"]) > 0
            assert body["retry_after"] > 0
        finally:
            release.set()
            for future in blockers:
                future.result(timeout=5)


class TestPrometheusRendering:
    def test_renders_all_instrument_kinds(self):
        snapshot = {
            "metrics": {
                "counters": {
                    "requests_total": {"endpoint=query,status=200": 3.0}
                },
                "gauges": {"inflight": {"": 1.0}},
                "histograms": {
                    "latency": {
                        "": {
                            "count": 2,
                            "sum": 0.3,
                            "buckets": {"0.1": 1, "1.0": 1, "+inf": 0},
                        }
                    }
                },
            }
        }
        text = render_prometheus(snapshot)
        assert (
            'requests_total{endpoint="query",status="200"} 3.0' in text
        )
        assert "inflight 1.0" in text
        # Buckets are cumulative and the +inf bucket equals the count.
        assert 'latency_bucket{le="0.1"} 1' in text
        assert 'latency_bucket{le="1.0"} 2' in text
        assert 'latency_bucket{le="+Inf"} 2' in text
        assert "latency_sum 0.3" in text
        assert "latency_count 2" in text
