"""ServerConfig and CorpusSpec validation."""

import pytest

from repro.errors import ReproError
from repro.server import CorpusSpec, ServerConfig


class TestCorpusSpec:
    def test_valid_kinds(self):
        CorpusSpec(name="a", kind="index", path="a.json")
        CorpusSpec(name="b", kind="tagged", path="b.txt")
        CorpusSpec(name="c", kind="source", path="c.src")
        CorpusSpec(name="d", kind="synthetic", path="play")

    def test_unknown_kind(self):
        with pytest.raises(ReproError, match="kind"):
            CorpusSpec(name="a", kind="parquet", path="a")

    def test_unknown_synthetic_generator(self):
        with pytest.raises(ReproError, match="synthetic"):
            CorpusSpec(name="a", kind="synthetic", path="novel")


class TestServerConfig:
    def test_defaults_are_valid(self):
        config = ServerConfig()
        assert config.workers >= 1
        assert config.to_dict()["cache_enabled"] is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"queue_depth": -1},
            {"cache_capacity": 0},
            {"default_deadline": 0.0},
            {"default_deadline": 10.0, "max_deadline": 5.0},
        ],
    )
    def test_invalid_knobs(self, kwargs):
        with pytest.raises(ReproError):
            ServerConfig(**kwargs)
