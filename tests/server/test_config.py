"""ServerConfig and CorpusSpec validation."""

import pytest

from repro.errors import ReproError
from repro.server import CorpusSpec, ServerConfig


class TestCorpusSpec:
    def test_valid_kinds(self):
        CorpusSpec(name="a", kind="index", path="a.json")
        CorpusSpec(name="b", kind="tagged", path="b.txt")
        CorpusSpec(name="c", kind="source", path="c.src")
        CorpusSpec(name="d", kind="synthetic", path="play")

    def test_unknown_kind(self):
        with pytest.raises(ReproError, match="kind"):
            CorpusSpec(name="a", kind="parquet", path="a")

    def test_unknown_synthetic_generator(self):
        with pytest.raises(ReproError, match="synthetic"):
            CorpusSpec(name="a", kind="synthetic", path="novel")


class TestServerConfig:
    def test_defaults_are_valid(self):
        config = ServerConfig()
        assert config.workers >= 1
        assert config.to_dict()["cache_enabled"] is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"queue_depth": -1},
            {"cache_capacity": 0},
            {"default_deadline": 0.0},
            {"default_deadline": 10.0, "max_deadline": 5.0},
        ],
    )
    def test_invalid_knobs(self, kwargs):
        with pytest.raises(ReproError):
            ServerConfig(**kwargs)


class TestBackendTopologyKnobs:
    def test_topology_defaults_disabled(self):
        config = ServerConfig()
        assert config.backend_nodes == 0
        assert config.to_dict()["backend_mode"] == "inprocess"

    def test_valid_topology_roundtrips(self):
        config = ServerConfig(
            backend_nodes=3,
            backend_groups=2,
            backend_replicas=2,
            backend_mode="http",
            backend_hedge_budget=0.25,
        )
        dumped = config.to_dict()
        assert dumped["backend_nodes"] == 3
        assert dumped["backend_replicas"] == 2
        assert dumped["backend_mode"] == "http"
        assert dumped["backend_hedge_budget"] == 0.25

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend_mode": "carrier-pigeon"},
            {"backend_nodes": -1},
            {"backend_groups": 0},
            {"backend_replicas": 0},
            {"backend_nodes": 1, "backend_replicas": 2},
            {"backend_hedge_quantile": 0.0},
            {"backend_hedge_quantile": 1.5},
            {"backend_hedge_min_seconds": -0.1},
            {"backend_hedge_budget": -0.5},
            {"backend_respawn_delay": 0.0},
        ],
    )
    def test_invalid_topology_knobs(self, kwargs):
        with pytest.raises(ReproError):
            ServerConfig(**kwargs)
