"""The load generator: percentile math and a short live-server run."""

import pytest

from repro.server import (
    CorpusSpec,
    LoadResult,
    QueryService,
    ServerConfig,
    create_server,
    percentile,
    run_load,
)
from repro.workloads import PLAY_QUERIES


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 51.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.95) == 95.0


class TestLoadResult:
    def test_summary_math(self):
        result = LoadResult(target_qps=10.0, duration=2.0)
        result.sent = 20
        result.status_counts = {"200": 18, "429": 2}
        result.latencies = [0.01] * 18
        result.cache_hits = 5
        summary = result.summary()
        assert result.completed == 20
        assert summary["achieved_qps"] == 10.0
        assert summary["latency_ms"]["p50"] == 10.0
        assert summary["cache_hits"] == 5
        assert "p99" in result.format_report() or "p99" in str(summary)

    def test_run_load_validates_input(self):
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, {}, qps=10.0)
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, PLAY_QUERIES, qps=0)


class TestLiveRun:
    def test_short_run_no_drops_below_saturation(self):
        service = QueryService(
            ServerConfig(
                workers=4,
                queue_depth=16,
                corpora=(
                    CorpusSpec(
                        name="play",
                        kind="synthetic",
                        path="play",
                        seed=11,
                        scale=2,
                    ),
                ),
            )
        )
        server = create_server(service, port=0)
        server.serve_in_background()
        try:
            result = run_load(
                "127.0.0.1",
                server.bound_port,
                PLAY_QUERIES,
                qps=25.0,
                duration=1.0,
                concurrency=2,
            )
            assert result.dropped == 0
            assert result.status_counts.get("200", 0) == result.sent > 0
            # The mix has 5 queries; a cached server repeats answers.
            assert result.cache_hits >= result.sent - 2 * len(PLAY_QUERIES)
            assert result.summary()["latency_ms"]["p99"] >= 0
        finally:
            server.stop()


class TestRetryAfter:
    def _stub_server(self, script):
        """An HTTP stub that answers POST /query from ``script`` — a
        list of (status, headers, body) — then repeats the last entry."""
        import http.server
        import threading

        calls = []

        class Handler(http.server.BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self):
                self.rfile.read(int(self.headers.get("Content-Length") or 0))
                status, headers, body = script[min(len(calls), len(script) - 1)]
                calls.append(status)
                payload = body.encode()
                self.send_response(status)
                for key, value in headers.items():
                    self.send_header(key, value)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        return server, calls

    def test_429_retried_after_hint_and_counted(self):
        server, calls = self._stub_server(
            [
                (429, {"Retry-After": "0.01"}, '{"error": "busy"}'),
                (200, {}, '{"regions": []}'),
            ]
        )
        try:
            result = run_load(
                "127.0.0.1",
                server.server_address[1],
                ["speech"],
                qps=1.0,
                duration=0.5,  # exactly one scheduled request
                concurrency=1,
            )
            assert result.retried == 1
            assert result.dropped == 0
            # Only the final status lands in the counts.
            assert result.status_counts == {"200": 1}
            assert calls == [429, 200]
        finally:
            server.shutdown()
            server.server_close()

    def test_retries_exhausted_record_final_status(self):
        server, calls = self._stub_server(
            [(503, {"Retry-After": "0.01"}, '{"error": "shed"}')]
        )
        try:
            result = run_load(
                "127.0.0.1",
                server.server_address[1],
                ["speech"],
                qps=1.0,
                duration=0.5,
                concurrency=1,
                max_retries=2,
            )
            assert result.retried == 2
            assert result.status_counts == {"503": 1}
            assert len(calls) == 3  # original + two retries
        finally:
            server.shutdown()
            server.server_close()

    def test_unparseable_retry_after_falls_back(self):
        server, _ = self._stub_server(
            [
                (429, {"Retry-After": "soon"}, '{"error": "busy"}'),
                (200, {}, '{"regions": []}'),
            ]
        )
        try:
            result = run_load(
                "127.0.0.1",
                server.server_address[1],
                ["speech"],
                qps=1.0,
                duration=0.5,
                concurrency=1,
            )
            assert result.retried == 1
            assert result.status_counts == {"200": 1}
        finally:
            server.shutdown()
            server.server_close()

    def test_on_response_sees_final_payloads(self):
        server, _ = self._stub_server([(200, {}, '{"regions": [[1, 2]]}')])
        seen = []
        try:
            run_load(
                "127.0.0.1",
                server.server_address[1],
                ["speech"],
                qps=4.0,
                duration=0.5,
                concurrency=1,
                on_response=lambda status, body: seen.append((status, body)),
            )
            assert seen
            assert all(status == 200 for status, _ in seen)
            assert all(b"regions" in body for _, body in seen)
        finally:
            server.shutdown()
            server.server_close()


class TestTransportErrorClassification:
    def test_dead_server_counts_transport_errors_without_stalling(self):
        """Against a port nobody listens on, every scheduled request is
        classified as a transport error (still counted as dropped, so
        existing dashboards keep working), the exception kind is
        recorded, and the cooldown keeps the open-loop schedule on pace
        instead of serializing on reconnect attempts."""
        from time import monotonic

        started = monotonic()
        result = run_load(
            "127.0.0.1",
            9,  # discard port: connections are refused
            ["speech"],
            qps=40.0,
            duration=1.0,
            concurrency=2,
        )
        elapsed = monotonic() - started
        assert elapsed < 3.0  # the schedule never fell behind
        assert result.sent > 0
        assert result.transport_errors == result.sent
        assert result.dropped == result.sent
        assert result.completed == 0
        kinds = result.transport_error_kinds
        assert sum(kinds.values()) == result.transport_errors
        assert all(kind.endswith("Error") for kind in kinds)

    def test_summary_and_report_expose_transport_errors(self):
        result = LoadResult(target_qps=10.0, duration=1.0)
        result.sent = 5
        result.dropped = 5
        result.transport_errors = 5
        result.transport_error_kinds = {"ConnectionRefusedError": 5}
        summary = result.summary()
        assert summary["transport_errors"] == 5
        assert summary["transport_error_kinds"] == {
            "ConnectionRefusedError": 5
        }
        report = result.format_report()
        assert "transport errors: 5" in report
        assert "ConnectionRefusedError: 5" in report

    def test_healthy_run_reports_zero_transport_errors(self):
        result = LoadResult(target_qps=10.0, duration=1.0)
        assert result.summary()["transport_errors"] == 0
        assert "transport errors" not in result.format_report()


class TestIngestMix:
    def test_op_stream_is_deterministic_by_seed(self):
        import random

        from repro.server.loadgen import _ingest_op

        def stream(seed: int) -> list:
            rng = random.Random(seed)
            acked: list[str] = []
            ops = []
            for serial in range(40):
                op = _ingest_op(rng, f"loadgen-{seed}", serial, acked)
                ops.append(op)
                if op["op"] == "append":
                    acked.append(op["id"])
            return ops

        assert stream(7) == stream(7)
        assert stream(7) != stream(8)

    def test_only_appends_until_something_is_acked(self):
        import random

        from repro.server.loadgen import _ingest_op

        rng = random.Random(0)
        op = _ingest_op(rng, "loadgen-0", 0, [])
        assert op["op"] == "append"
        assert op["id"] == "loadgen-0-0"

    def test_mix_includes_updates_and_deletes(self):
        import random

        from repro.server.loadgen import _ingest_op

        rng = random.Random(3)
        acked: list[str] = []
        kinds = set()
        for serial in range(200):
            op = _ingest_op(rng, "loadgen-3", serial, acked)
            kinds.add(op["op"])
            if op["op"] == "append":
                acked.append(op["id"])
        assert kinds == {"append", "update", "delete"}

    def test_summary_gains_ingest_section_only_with_writes(self):
        quiet = LoadResult(target_qps=10.0, duration=1.0)
        assert "ingest" not in quiet.summary()
        writing = LoadResult(
            target_qps=10.0, duration=1.0, ingest_rate=5.0
        )
        writing.ingest_sent = 5
        writing.ingest_status_counts = {"200": 4, "409": 1}
        writing.ingest_latencies = [0.002] * 4
        summary = writing.summary()["ingest"]
        assert summary["sent"] == 5
        assert summary["ok"] == 4
        assert writing.ingest_ok == 4
        assert "ingest" in writing.format_report()

    def test_live_run_commits_writes(self, tmp_path):
        service = QueryService(
            ServerConfig(
                workers=4,
                queue_depth=16,
                corpora=(
                    CorpusSpec(
                        name="play",
                        kind="synthetic",
                        path="play",
                        seed=11,
                        scale=2,
                    ),
                ),
                ingest_enabled=True,
                ingest_dir=str(tmp_path / "wal"),
                ingest_fsync=False,
                compaction_enabled=False,
            )
        )
        server = create_server(service, port=0)
        server.serve_in_background()
        seen: list[tuple[list, int]] = []
        try:
            result = run_load(
                "127.0.0.1",
                server.bound_port,
                PLAY_QUERIES,
                corpus="play",
                qps=10.0,
                duration=1.0,
                concurrency=2,
                seed=5,
                ingest_rate=15.0,
                on_ingest_response=lambda ops, status, body: seen.append(
                    (ops, status)
                ),
            )
            assert result.ingest_sent > 0
            assert result.ingest_ok > 0
            assert result.ingest_dropped == 0
            assert len(result.ingest_latencies) == result.ingest_sent
            assert len(seen) == result.ingest_sent
            assert all(status == 200 for _, status in seen)
            documents = service.ingest_info()["corpora"]["play"]["documents"]
            appended = sum(
                1 for ops, _ in seen for op in ops if op["op"] == "append"
            )
            deleted = sum(
                1 for ops, _ in seen for op in ops if op["op"] == "delete"
            )
            assert documents == appended - deleted
        finally:
            server.stop()
            service.close()


class TestIngestRetryAfter:
    def _stub_server(self, ingest_script):
        """An HTTP stub whose ``POST /ingest`` answers from
        ``ingest_script`` — (status, headers, body) tuples, repeating
        the last — while ``POST /query`` always answers 200."""
        import http.server
        import threading

        ingest_calls = []

        class Handler(http.server.BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"

            def do_POST(self):
                self.rfile.read(int(self.headers.get("Content-Length") or 0))
                if self.path == "/ingest":
                    status, headers, body = ingest_script[
                        min(len(ingest_calls), len(ingest_script) - 1)
                    ]
                    ingest_calls.append(status)
                else:
                    status, headers, body = 200, {}, '{"regions": []}'
                payload = body.encode()
                self.send_response(status)
                for key, value in headers.items():
                    self.send_header(key, value)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def log_message(self, *args):
                pass

        server = http.server.ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        threading.Thread(target=server.serve_forever, daemon=True).start()
        return server, ingest_calls

    def test_write_503_retried_after_hint_and_counted(self):
        # A replicated server sheds writes with 503 + Retry-After while
        # replicas lag; the writer must honor the hint, not drop the op.
        server, calls = self._stub_server(
            [
                (503, {"Retry-After": "0.01"}, '{"error": "replica_lagging"}'),
                (200, {}, '{"generation": 2}'),
            ]
        )
        try:
            result = run_load(
                "127.0.0.1",
                server.server_address[1],
                ["speech"],
                qps=1.0,
                duration=0.5,
                concurrency=1,
                ingest_rate=2.0,  # exactly one scheduled write
            )
            assert result.ingest_retried == 1
            assert result.ingest_status_counts == {"200": 1}
            assert calls == [503, 200]
            # Reads and writes report their quantiles separately.
            summary = result.summary()
            assert set(summary["ingest"]["latency_ms"]) == {
                "p50",
                "p95",
                "p99",
                "mean",
            }
            assert summary["ingest"]["retried"] == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_write_retries_exhausted_record_final_status(self):
        server, calls = self._stub_server(
            [(503, {"Retry-After": "0.01"}, '{"error": "replica_lagging"}')]
        )
        try:
            result = run_load(
                "127.0.0.1",
                server.server_address[1],
                ["speech"],
                qps=1.0,
                duration=0.5,
                concurrency=1,
                max_retries=2,
                ingest_rate=2.0,
            )
            assert result.ingest_retried == 2
            assert result.ingest_status_counts == {"503": 1}
            assert len(calls) == 3  # original + two retries
        finally:
            server.shutdown()
            server.server_close()
