"""The load generator: percentile math and a short live-server run."""

import pytest

from repro.server import (
    CorpusSpec,
    LoadResult,
    QueryService,
    ServerConfig,
    create_server,
    percentile,
    run_load,
)
from repro.workloads import PLAY_QUERIES


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 0.99) == 7.0

    def test_nearest_rank(self):
        values = [float(i) for i in range(1, 101)]
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 0.5) == 51.0
        assert percentile(values, 1.0) == 100.0
        assert percentile(values, 0.95) == 95.0


class TestLoadResult:
    def test_summary_math(self):
        result = LoadResult(target_qps=10.0, duration=2.0)
        result.sent = 20
        result.status_counts = {"200": 18, "429": 2}
        result.latencies = [0.01] * 18
        result.cache_hits = 5
        summary = result.summary()
        assert result.completed == 20
        assert summary["achieved_qps"] == 10.0
        assert summary["latency_ms"]["p50"] == 10.0
        assert summary["cache_hits"] == 5
        assert "p99" in result.format_report() or "p99" in str(summary)

    def test_run_load_validates_input(self):
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, {}, qps=10.0)
        with pytest.raises(ValueError):
            run_load("127.0.0.1", 1, PLAY_QUERIES, qps=0)


class TestLiveRun:
    def test_short_run_no_drops_below_saturation(self):
        service = QueryService(
            ServerConfig(
                workers=4,
                queue_depth=16,
                corpora=(
                    CorpusSpec(
                        name="play",
                        kind="synthetic",
                        path="play",
                        seed=11,
                        scale=2,
                    ),
                ),
            )
        )
        server = create_server(service, port=0)
        server.serve_in_background()
        try:
            result = run_load(
                "127.0.0.1",
                server.bound_port,
                PLAY_QUERIES,
                qps=25.0,
                duration=1.0,
                concurrency=2,
            )
            assert result.dropped == 0
            assert result.status_counts.get("200", 0) == result.sent > 0
            # The mix has 5 queries; a cached server repeats answers.
            assert result.cache_hits >= result.sent - 2 * len(PLAY_QUERIES)
            assert result.summary()["latency_ms"]["p99"] >= 0
        finally:
            server.stop()
