"""WorkerPool: execution, bounded admission, shutdown."""

import threading
import time

import pytest

from repro.errors import ServerOverloadedError
from repro.server import WorkerPool


@pytest.fixture
def pool():
    p = WorkerPool(workers=2, queue_depth=2)
    yield p
    p.shutdown(wait=True)


class TestExecution:
    def test_submit_returns_result(self, pool):
        future = pool.submit(lambda a, b: a + b, 2, 3)
        assert future.result(timeout=5) == 5

    def test_exceptions_are_relayed(self, pool):
        def boom():
            raise KeyError("inner")

        future = pool.submit(boom)
        with pytest.raises(KeyError):
            future.result(timeout=5)

    def test_many_jobs_all_complete(self, pool):
        # More jobs than slots: clients that retry on 429 all succeed.
        futures = []
        for i in range(40):
            while True:
                try:
                    futures.append(pool.submit(lambda i=i: i * i))
                    break
                except ServerOverloadedError:
                    time.sleep(0.005)
        assert [f.result(timeout=5) for f in futures] == [
            i * i for i in range(40)
        ]
        assert pool.stats()["completed"] >= 40


class TestAdmission:
    def test_rejects_when_saturated_and_recovers(self):
        pool = WorkerPool(workers=1, queue_depth=1)
        try:
            release = threading.Event()
            running = threading.Event()

            def block():
                running.set()
                release.wait(timeout=10)
                return "done"

            first = pool.submit(block)
            assert running.wait(timeout=5)
            second = pool.submit(block)  # fills the single queue slot
            with pytest.raises(ServerOverloadedError) as excinfo:
                pool.submit(lambda: None)
            assert excinfo.value.retry_after >= 0.1
            assert pool.stats()["rejected"] == 1

            release.set()
            assert first.result(timeout=5) == "done"
            assert second.result(timeout=5) == "done"
            # Capacity freed: admission works again.
            assert pool.submit(lambda: "ok").result(timeout=5) == "ok"
        finally:
            pool.shutdown(wait=True)

    def test_depth_hook_sees_queue_growth(self):
        depths = []
        pool = WorkerPool(
            workers=1, queue_depth=4, on_depth_change=depths.append
        )
        try:
            release = threading.Event()
            futures = [
                pool.submit(lambda: release.wait(timeout=10)) for _ in range(4)
            ]
            release.set()
            for f in futures:
                f.result(timeout=5)
            assert max(depths) >= 1
            assert depths[-1] == 0 or 0 in depths
        finally:
            pool.shutdown(wait=True)


class TestShutdown:
    def test_shutdown_drains_then_rejects(self):
        pool = WorkerPool(workers=2, queue_depth=2)
        futures = [pool.submit(lambda i=i: i) for i in range(4)]
        pool.shutdown(wait=True)
        assert [f.result(timeout=1) for f in futures] == [0, 1, 2, 3]
        with pytest.raises(ServerOverloadedError):
            pool.submit(lambda: None)

    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(workers=1, queue_depth=0)
        pool.shutdown(wait=True)
        pool.shutdown(wait=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(workers=0)
        with pytest.raises(ValueError):
            WorkerPool(workers=1, queue_depth=-1)
