"""End-to-end request tracing: stitching, sampling, SLO wiring.

Drives the real service (in-process and over HTTP) on a sharded tagged
corpus — several concatenated plays, so the partitioner has a forest to
cut and one request genuinely fans out to multiple shard workers.
"""

import http.client
import json
import random
import threading

import pytest

from repro.errors import FaultInjected
from repro.faults.registry import FaultRegistry, FaultSpec, activate, deactivate
from repro.obs import context as trace_context
from repro.server import CorpusSpec, QueryService, ServerConfig, create_server
from repro.server.pool import WorkerPool
from repro.workloads.corpora import generate_play


def multi_play_text(seed=5, plays=4, scale=2):
    rng = random.Random(seed)
    return "\n".join(
        generate_play(
            rng,
            acts=scale,
            scenes_per_act=scale,
            speeches_per_scene=2,
            lines_per_speech=2,
        )
        for _ in range(plays)
    )


@pytest.fixture(scope="module")
def corpus_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("tracing") / "plays.tagged"
    path.write_text(multi_play_text(), encoding="utf-8")
    return path


def make_service(corpus_path, **overrides):
    spec = CorpusSpec(
        name="plays", kind="tagged", path=str(corpus_path), shards=2
    )
    defaults = dict(
        workers=2,
        queue_depth=8,
        corpora=(spec,),
        shards=2,
        tracing=True,
        trace_sample_rate=1.0,
    )
    defaults.update(overrides)
    return QueryService(ServerConfig(**defaults))


@pytest.fixture(scope="module")
def server(corpus_path):
    service = make_service(corpus_path)
    srv = create_server(service, port=0)
    srv.serve_in_background()
    yield srv
    srv.stop()
    service.close()


def request(server, method, path, body=None):
    connection = http.client.HTTPConnection(
        "127.0.0.1", server.bound_port, timeout=10
    )
    try:
        payload = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if payload else {}
        connection.request(method, path, body=payload, headers=headers)
        response = connection.getresponse()
        raw = response.read()
        try:
            decoded = json.loads(raw)
        except json.JSONDecodeError:
            decoded = raw.decode("utf-8")
        return response.status, decoded
    finally:
        connection.close()


def span_names(node, out=None):
    out = out if out is not None else []
    out.append(node["name"])
    for child in node.get("children", ()):
        span_names(child, out)
    return out


class TestStitchedTrace:
    def test_one_trace_crosses_http_pool_shards_and_merge(self, server):
        status, body = request(
            server,
            "POST",
            "/query",
            {"query": "speech dwithin scene", "use_cache": False},
        )
        assert status == 200
        trace_id = body["trace_id"]
        assert trace_id

        status, tree = request(server, "GET", f"/debug/trace/{trace_id}")
        assert status == 200
        assert tree["trace_id"] == trace_id
        root = tree["root"]
        assert root["name"] == "request"
        assert root["attributes"]["status"] == "200"

        names = span_names(root)
        assert "queue.wait" in names
        assert "shard.merge" in names
        assert any(name.startswith("eval.") for name in names)

        # The scatter really fanned out: >= 2 shard.task spans with
        # distinct shard indices, all inside this one request tree.
        shards = {
            span["attributes"]["shard"]
            for span in _walk(root)
            if span["name"] == "shard.task"
        }
        assert len(shards) >= 2

    def test_trace_listing_endpoint(self, server):
        request(
            server,
            "POST",
            "/query",
            {"query": "speech dwithin scene", "use_cache": False},
        )
        status, body = request(
            server, "GET", "/debug/traces?sort=slowest&limit=3"
        )
        assert status == 200
        assert body["stats"]["kept"] >= 1
        assert len(body["traces"]) >= 1
        row = body["traces"][0]
        assert set(row) >= {"trace_id", "duration", "reasons", "spans"}

    def test_unknown_trace_404(self, server):
        status, body = request(server, "GET", "/debug/trace/nope")
        assert status == 404
        assert body["code"] == "trace_not_found"

    def test_error_envelope_carries_trace_id(self, server):
        status, body = request(
            server, "POST", "/query", {"query": "speech within within"}
        )
        assert status == 400
        assert body["trace_id"]
        # The failed request's trace is retrievable too (sampled keep).
        status, _ = request(
            server, "GET", f"/debug/trace/{body['trace_id']}"
        )
        assert status == 200

    def test_exemplar_reaches_prometheus_exposition(self, server):
        _, body = request(
            server,
            "POST",
            "/query",
            {"query": "speech dwithin scene", "use_cache": False},
        )
        status, text = request(
            server, "GET", "/metrics?format=prometheus"
        )
        assert status == 200
        exemplar_lines = [
            line
            for line in text.splitlines()
            if line.startswith("server_request_seconds_bucket")
            and "# {trace_id=" in line
        ]
        assert exemplar_lines

    def test_slo_endpoint(self, server):
        status, body = request(server, "GET", "/slo")
        assert status == 200
        assert body["tracing"] is True
        assert set(body["objectives"]) == {"availability", "latency"}
        availability = body["objectives"]["availability"]
        assert availability["fast"]["samples"] >= 0
        assert "fast_burn_active" in availability


class TestSampling:
    def test_unsampled_clean_request_is_not_retained(self, corpus_path):
        service = make_service(corpus_path, trace_sample_rate=0.0)
        try:
            response = service.execute(
                "speech dwithin scene", use_cache=False
            )
            trace_id = response["trace_id"]
            assert trace_id  # the id is minted regardless of sampling
            assert service.traces.get(trace_id) is None
            assert service.traces.stats()["dropped"] == 1
        finally:
            service.close()

    def test_sampling_gates_eval_detail_not_skeleton(self, corpus_path):
        service = make_service(
            corpus_path, trace_sample_rate=0.0, trace_slow_seconds=1e-9
        )
        try:
            response = service.execute(
                "speech dwithin scene", use_cache=False
            )
            kept = service.traces.get(response["trace_id"])
            assert kept is not None  # tail-kept as slow
            names = [span.name for span in kept.root.walk()]
            assert "shard.merge" in names  # coarse skeleton survives
            assert names.count("shard.task") >= 2
            assert not any(name.startswith("eval.") for name in names)
        finally:
            service.close()

    def test_querylog_records_trace_id(self, corpus_path):
        service = make_service(corpus_path)
        try:
            response = service.execute(
                "speech dwithin scene", use_cache=False
            )
            records = service._handle("plays").engine.query_log.records()
            assert records[-1].trace_id == response["trace_id"]
        finally:
            service.close()


class TestPoolPropagation:
    def test_context_crosses_worker_threads(self):
        pool = WorkerPool(workers=2, queue_depth=4)
        try:
            with trace_context.active(
                trace_context.TraceContext(trace_id="tid-1")
            ):
                future = pool.submit(trace_context.current_trace_id)
            assert future.result(timeout=5) == "tid-1"
        finally:
            pool.shutdown()

    def test_propagation_can_be_disabled(self):
        pool = WorkerPool(workers=1, queue_depth=4, propagate_context=False)
        try:
            with trace_context.active(
                trace_context.TraceContext(trace_id="tid-2")
            ):
                future = pool.submit(trace_context.current_trace_id)
            assert future.result(timeout=5) is None
        finally:
            pool.shutdown()


class TestSLOPressure:
    def drive_errors(self, service, n=8):
        registry = FaultRegistry(seed=3)
        registry.arm(
            FaultSpec("evaluator.step", "error", probability=1.0)
        )
        activate(registry)
        try:
            for _ in range(n):
                with pytest.raises(Exception):
                    service.execute("speech dwithin scene", use_cache=False)
        finally:
            deactivate()

    def test_fast_burn_degrades_the_service(self, corpus_path):
        service = make_service(
            corpus_path,
            tracing=False,
            slo_burn_threshold=2.0,
            slo_min_samples=4,
        )
        try:
            assert service.health.state == "healthy"
            self.drive_errors(service)
            assert service.slo.fast_burn_active()["availability"] is True
            snapshot = service.health.snapshot()
            assert "slo:availability" in snapshot["pressure"]
            assert service.health.state in ("degraded", "unhealthy")
        finally:
            service.close()

    def test_shed_on_fast_burn_forces_unhealthy(self, corpus_path):
        service = make_service(
            corpus_path,
            tracing=False,
            slo_burn_threshold=2.0,
            slo_min_samples=4,
            slo_shed_on_fast_burn=True,
            # keep the rate-based classifier out of the way: the
            # pressure alone must force the state.
            health_min_samples=1000,
        )
        try:
            self.drive_errors(service)
            assert service.health.state == "unhealthy"
        finally:
            service.close()

    def test_burn_clears_and_pressure_lifts(self, corpus_path):
        service = make_service(
            corpus_path,
            tracing=False,
            slo_burn_threshold=2.0,
            slo_min_samples=4,
            slo_fast_window=0.2,
            slo_slow_window=0.2,
        )
        try:
            self.drive_errors(service)
            assert service.slo.fast_burn_active()["availability"] is True
            import time

            time.sleep(0.3)  # both windows drain
            service.slo.poll()
            assert service.slo.fast_burn_active()["availability"] is False
            assert "slo:availability" not in service.health.snapshot()["pressure"]
        finally:
            service.close()


class TestConcurrentTraces:
    def test_parallel_requests_get_distinct_complete_traces(self, corpus_path):
        service = make_service(corpus_path, workers=4, queue_depth=16)
        try:
            ids = []
            lock = threading.Lock()

            def run():
                response = service.execute(
                    "speech dwithin scene", use_cache=False
                )
                with lock:
                    ids.append(response["trace_id"])

            threads = [threading.Thread(target=run) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(set(ids)) == 8
            for trace_id in ids:
                kept = service.traces.get(trace_id)
                assert kept is not None
                names = [span.name for span in kept.root.walk()]
                # No cross-request leakage: each tree has exactly one
                # request root and its own merge.
                assert names.count("request") == 1
                assert "shard.merge" in names
        finally:
            service.close()


def _walk(node):
    yield node
    for child in node.get("children", ()):
        yield from _walk(child)
