"""QueryService: concurrency, caching across reloads, admission, deadlines.

These tests drive the service in-process (no HTTP) on a small synthetic
play corpus; the HTTP adapter has its own tests in ``test_http.py``.
"""

import threading

import pytest

from repro.errors import QueryTimeout, ReproError, ServerOverloadedError
from repro.obs.metrics import (
    SERVER_CACHE_HITS_TOTAL,
    SERVER_REJECTED_TOTAL,
    SERVER_REQUESTS_TOTAL,
    SERVER_TIMEOUTS_TOTAL,
)
from repro.server import CorpusSpec, QueryService, ServerConfig, UnknownCorpusError

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=2)


@pytest.fixture
def service():
    svc = QueryService(ServerConfig(workers=2, queue_depth=4, corpora=(PLAY,)))
    yield svc
    svc.close()


class TestExecute:
    def test_basic_query(self, service):
        response = service.execute("speech dwithin scene")
        assert response["corpus"] == "play"
        assert response["generation"] == 1
        assert response["cached"] is False
        assert response["cardinality"] == len(response["regions"])
        assert response["cardinality"] > 0
        assert response["seconds"] >= response["eval_seconds"] >= 0

    def test_matches_direct_engine_answer(self, service):
        engine = service._handle("play").engine
        expected = [
            [r.left, r.right] for r in engine.query("speech dwithin scene")
        ]
        response = service.execute("speech dwithin scene", use_cache=False)
        assert response["regions"] == expected

    def test_unknown_corpus(self, service):
        with pytest.raises(UnknownCorpusError):
            service.execute("speech", corpus="nope")

    def test_parse_error_is_repro_error(self, service):
        with pytest.raises(ReproError):
            service.execute("speech within within")

    def test_explain_does_not_execute(self, service):
        response = service.execute(
            "line within speech within scene", explain_only=True, optimize=True
        )
        assert "plan" in response
        assert "regions" not in response
        assert response["original_cost"] >= response["optimized_cost"]

    def test_requests_counter_labels(self, service):
        service.execute("speech dwithin scene")
        requests = service.telemetry.metrics.counter(SERVER_REQUESTS_TOTAL)
        assert requests.value(endpoint="query", status="200") == 1


class TestParallelQueries:
    @pytest.fixture
    def service(self):
        # Enough queue capacity that 16 simultaneous submitters all admit.
        svc = QueryService(
            ServerConfig(workers=4, queue_depth=16, corpora=(PLAY,))
        )
        yield svc
        svc.close()

    def test_many_threads_one_corpus_agree_with_serial_answers(self, service):
        queries = [
            "speech dwithin scene",
            "scene within act",
            'speech containing (speaker @ "ROMEO")',
            "line within speech",
        ]
        engine = service._handle("play").engine
        expected = {
            q: [[r.left, r.right] for r in engine.query(q)] for q in queries
        }
        results: dict[int, list] = {}
        errors: list[Exception] = []

        def worker(slot: int) -> None:
            try:
                q = queries[slot % len(queries)]
                # Bypass the cache so every thread exercises the
                # evaluator (and its thread-local stats) concurrently.
                response = service.execute(q, use_cache=False)
                assert response["regions"] == expected[q]
                results[slot] = response["regions"]
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(slot,)) for slot in range(16)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(results) == 16


class TestCacheAcrossReload:
    def test_hit_then_invalidation_on_reload(self, service):
        first = service.execute("speech dwithin scene")
        assert first["cached"] is False

        second = service.execute("speech dwithin scene")
        assert second["cached"] is True
        assert second["regions"] == first["regions"]
        hits = service.telemetry.metrics.counter(SERVER_CACHE_HITS_TOTAL)
        assert hits.total() == 1

        info = service.reload_corpus("play")
        assert info["generation"] == 2
        assert info["cache_invalidated"] >= 1

        third = service.execute("speech dwithin scene")
        assert third["cached"] is False
        assert third["generation"] == 2
        # Same spec and seed: the reloaded corpus answers identically.
        assert third["regions"] == first["regions"]

    def test_normalization_shares_cache_entries(self, service):
        service.execute("speech dwithin scene")
        response = service.execute("(speech dwithin (scene))")
        assert response["cached"] is True

    def test_use_cache_false_skips_storage(self, service):
        service.execute("scene within act", use_cache=False)
        response = service.execute("scene within act", use_cache=False)
        assert response["cached"] is False
        assert len(service.cache) == 0


class TestSaturation:
    def test_429_when_pool_full_and_recovery_after(self):
        service = QueryService(
            ServerConfig(workers=1, queue_depth=1, corpora=(PLAY,))
        )
        try:
            release = threading.Event()
            running = threading.Event()

            def block():
                running.set()
                release.wait(timeout=10)

            blockers = [service.pool.submit(block)]
            assert running.wait(timeout=5)
            blockers.append(service.pool.submit(block))  # fills the queue

            with pytest.raises(ServerOverloadedError) as excinfo:
                service.execute("speech dwithin scene", use_cache=False)
            assert excinfo.value.retry_after > 0
            rejected = service.telemetry.metrics.counter(SERVER_REJECTED_TOTAL)
            assert rejected.value(reason="saturated") == 1
            requests = service.telemetry.metrics.counter(SERVER_REQUESTS_TOTAL)
            assert requests.value(endpoint="query", status="429") == 1

            release.set()
            for future in blockers:
                future.result(timeout=5)
            ok = service.execute("speech dwithin scene")
            assert ok["cardinality"] > 0
        finally:
            release.set()
            service.close()


class TestDeadlines:
    def test_pathological_query_times_out(self, service):
        with pytest.raises(QueryTimeout) as excinfo:
            service.execute(
                "line within speech within scene within act",
                deadline=1e-6,
                use_cache=False,
            )
        assert excinfo.value.budget == pytest.approx(1e-6)
        timeouts = service.telemetry.metrics.counter(SERVER_TIMEOUTS_TOTAL)
        assert timeouts.total() == 1

    def test_deadline_must_be_positive(self, service):
        with pytest.raises(ReproError):
            service.execute("speech", deadline=0)

    def test_deadline_clamped_to_max(self):
        service = QueryService(
            ServerConfig(
                workers=1,
                queue_depth=1,
                default_deadline=1.0,
                max_deadline=2.0,
                corpora=(PLAY,),
            )
        )
        try:
            assert service._clamp_deadline(None) == 1.0
            assert service._clamp_deadline(99.0) == 2.0
            assert service._clamp_deadline(0.5) == 0.5
        finally:
            service.close()


class TestLifecycle:
    def test_healthz_shape(self, service):
        health = service.healthz()
        assert health["status"] == "healthy"
        assert health["corpora"] == 1
        assert health["pool"]["workers"] == 2
        assert health["cache"]["capacity"] == 512

    def test_duplicate_corpus_rejected(self, service):
        with pytest.raises(ReproError):
            service.add_corpus(PLAY)

    def test_closed_service_rejects_queries(self, service):
        service.close()
        with pytest.raises(ServerOverloadedError):
            service.execute("speech")
        assert service.healthz()["status"] == "shutting-down"

    def test_corpora_info(self, service):
        (info,) = service.corpora_info()
        assert info["name"] == "play"
        assert info["generation"] == 1
        assert "scene" in info["region_names"]
        assert info["regions"] > 0
