"""The service write path: ingest commits, generation-window cache
invalidation, compaction, WAL recovery across restarts, and the HTTP
``/ingest`` + ``/compact`` adapters."""

import pytest

from repro.errors import (
    DuplicateDocumentError,
    IngestDisabledError,
    UnknownDocumentError,
)
from repro.server import CorpusSpec, QueryService, ServerConfig, create_server

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=2)


def _config(tmp_path, **overrides) -> ServerConfig:
    settings = dict(
        workers=2,
        queue_depth=8,
        corpora=(PLAY,),
        ingest_enabled=True,
        ingest_dir=str(tmp_path / "wal"),
        ingest_fsync=False,  # these tests measure semantics, not disks
        compaction_enabled=False,  # ticked explicitly where needed
    )
    settings.update(overrides)
    return ServerConfig(**settings)


def _doc(word: str) -> str:
    return (
        f"<speech><speaker>Ingest</speaker>"
        f"<line>{word} at midnight</line></speech>"
    )


def _append(doc_id: str, word: str) -> dict:
    return {"op": "append", "id": doc_id, "text": _doc(word)}


@pytest.fixture
def service(tmp_path):
    svc = QueryService(_config(tmp_path))
    yield svc
    svc.close()


class TestIngestCommit:
    def test_append_publishes_a_new_generation(self, service):
        before = service.execute("speech", use_cache=False)
        response = service.ingest("play", [_append("a", "prophecy")])
        assert response["generation"] == before["generation"] + 1
        assert response["batch_seq"] == 1
        assert response["applied"] == 1
        assert response["documents"] == 1
        after = service.execute("speech", use_cache=False)
        assert after["generation"] == response["generation"]
        assert after["cardinality"] == before["cardinality"] + 1

    def test_update_and_delete_change_the_layout(self, service):
        service.ingest("play", [_append("a", "prophecy"), _append("b", "x")])
        base = service.execute("speech", use_cache=False)["cardinality"]
        service.ingest("play", [{"op": "delete", "id": "b"}])
        assert (
            service.execute("speech", use_cache=False)["cardinality"]
            == base - 1
        )
        response = service.ingest(
            "play", [{"op": "update", "id": "a", "text": _doc("storm")}]
        )
        assert response["tombstones"] == 2

    def test_rejected_batch_commits_nothing(self, service):
        generation = service._handle("play").generation
        with pytest.raises(UnknownDocumentError):
            service.ingest(
                "play", [_append("a", "x"), {"op": "delete", "id": "nope"}]
            )
        assert service._handle("play").generation == generation
        assert service.ingest_info()["corpora"]["play"]["documents"] == 0

    def test_duplicate_append_rejected(self, service):
        service.ingest("play", [_append("a", "x")])
        with pytest.raises(DuplicateDocumentError):
            service.ingest("play", [_append("a", "y")])

    def test_healthz_reports_ingest_state(self, service):
        service.ingest("play", [_append("a", "x")])
        info = service.healthz()["ingest"]
        assert info["enabled"] is True
        assert info["corpora"]["play"]["documents"] == 1
        assert info["corpora"]["play"]["batches"] == 1


class TestIngestDisabled:
    def test_writes_rejected_when_globally_disabled(self, tmp_path):
        service = QueryService(
            ServerConfig(workers=2, corpora=(PLAY,), ingest_enabled=False)
        )
        try:
            with pytest.raises(IngestDisabledError):
                service.ingest("play", [_append("a", "x")])
        finally:
            service.close()


class TestCacheInvalidation:
    def test_ingest_retires_only_aged_out_generations(self, service):
        # keep_generations=2: a commit to generation g keeps g-1 warm.
        cache = service.cache
        cache.put(("play", 1, "plan", False), {"regions": []})
        service.ingest("play", [_append("a", "x")])  # generation 2
        assert ("play", 1, "plan", False) in cache
        service.ingest("play", [_append("b", "y")])  # generation 3
        assert ("play", 1, "plan", False) not in cache

    def test_reload_still_invalidates_the_whole_corpus(self, service):
        first = service.execute("speech")
        assert service.execute("speech")["cached"] is True
        service.ingest("play", [_append("a", "x")])
        service.reload_corpus("play")
        response = service.execute("speech")
        assert response["cached"] is False
        assert response["generation"] > first["generation"]

    def test_stale_generation_served_while_degraded(self, service):
        # The satellite regression: entries from a superseded-but-kept
        # generation must stay servable when degraded mode misses.
        warm = service.execute("speech dwithin scene")  # cached at gen 1
        service.ingest("play", [_append("a", "x")])  # gen 2 misses
        service.health.set_pressure("test", True)
        try:
            response = service.execute("speech dwithin scene")
            assert response["stale"] is True
            assert response["cached"] is True
            assert response["generation"] == warm["generation"]
        finally:
            service.health.set_pressure("test", False)


class TestReloadRebase:
    def test_reload_preserves_ingested_documents(self, service):
        service.ingest("play", [_append("a", "prophecy")])
        before = service.execute("speech", use_cache=False)["cardinality"]
        service.reload_corpus("play")
        after = service.execute("speech", use_cache=False)
        assert after["cardinality"] == before
        assert service.ingest_info()["corpora"]["play"]["documents"] == 1

    def test_reload_drops_deleted_documents_for_good(self, service):
        service.ingest("play", [_append("a", "x"), _append("b", "y")])
        service.ingest("play", [{"op": "delete", "id": "a"}])
        service.reload_corpus("play")
        info = service.ingest_info()["corpora"]["play"]
        assert info["documents"] == 1
        assert info["tombstones"] == 0  # the rebase re-appends survivors


class TestCompaction:
    def test_compact_keeps_answers_and_generation(self, service):
        service.ingest("play", [_append("a", "x")])
        service.ingest("play", [_append("b", "y")])
        service.ingest("play", [{"op": "delete", "id": "a"}])
        before = service.execute("speech", use_cache=False)
        response = service.compact("play")
        assert response["compacted"] is True
        assert response["checkpointed"] is True
        assert response["segments"] == 1
        assert response["tombstones"] == 0
        after = service.execute("speech", use_cache=False)
        # Compaction is pure maintenance: same generation, same answer.
        assert after["generation"] == before["generation"]
        assert after["cardinality"] == before["cardinality"]

    def test_compact_checkpoints_a_nonempty_wal_even_without_merging(
        self, service
    ):
        service.ingest("play", [_append("a", "x")])
        response = service.compact("play")
        assert response["compacted"] is False  # one segment, nothing to merge
        assert response["checkpointed"] is True
        assert service.ingest_info()["corpora"]["play"]["wal_bytes"] == 0

    def test_candidates_need_tombstones_or_enough_small_segments(
        self, tmp_path
    ):
        service = QueryService(
            _config(tmp_path, compaction_min_segments=2)
        )
        try:
            assert service._compaction_candidates() == []
            service.ingest("play", [_append("a", "x")])
            assert service._compaction_candidates() == []
            service.ingest("play", [_append("b", "y")])
            assert service._compaction_candidates() == ["play"]
            service.compact("play")
            assert service._compaction_candidates() == []
            service.ingest("play", [{"op": "delete", "id": "a"}])
            assert service._compaction_candidates() == ["play"]
        finally:
            service.close()

    def test_background_compactor_wiring(self, tmp_path):
        service = QueryService(
            _config(
                tmp_path,
                compaction_enabled=True,
                compaction_interval=60.0,  # ticked by hand below
                compaction_min_segments=2,
            )
        )
        try:
            service.ingest("play", [_append("a", "x")])
            service.ingest("play", [_append("b", "y")])
            assert service.compactor.run_once() == "play"
            assert (
                service.ingest_info()["corpora"]["play"]["compactions"] == 1
            )
        finally:
            service.close()


class TestRestartRecovery:
    def test_wal_replay_restores_documents(self, tmp_path):
        config = _config(tmp_path)
        service = QueryService(config)
        try:
            service.ingest("play", [_append("a", "prophecy")])
            service.ingest("play", [{"op": "update", "id": "a", "text": _doc("storm")}])
            cardinality = service.execute("speech", use_cache=False)[
                "cardinality"
            ]
        finally:
            service.close()
        revived = QueryService(config)
        try:
            info = revived.ingest_info()["corpora"]["play"]
            assert info["documents"] == 1
            assert info["replayed_batches"] == 2
            assert (
                revived.execute("speech", use_cache=False)["cardinality"]
                == cardinality
            )
        finally:
            revived.close()

    def test_checkpoint_bounds_replay(self, tmp_path):
        config = _config(tmp_path)
        service = QueryService(config)
        try:
            service.ingest("play", [_append("a", "x")])
            service.compact("play")  # snapshot + truncate
            service.ingest("play", [_append("b", "y")])
        finally:
            service.close()
        revived = QueryService(config)
        try:
            info = revived.ingest_info()["corpora"]["play"]
            assert info["documents"] == 2
            # Only the post-checkpoint batch needed replaying.
            assert info["replayed_batches"] == 1
            # Sequence numbers continue past everything ever logged.
            assert info["next_batch_seq"] == 3
        finally:
            revived.close()


class TestHttpAdapters:
    @pytest.fixture
    def server(self, service):
        srv = create_server(service, port=0)
        srv.serve_in_background()
        yield srv
        srv.stop()

    def _request(self, server, method, path, body=None):
        import http.client
        import json

        connection = http.client.HTTPConnection(
            "127.0.0.1", server.bound_port, timeout=10
        )
        try:
            payload = json.dumps(body) if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            connection.request(method, path, body=payload, headers=headers)
            response = connection.getresponse()
            return response.status, json.loads(response.read())
        finally:
            connection.close()

    def test_post_ingest_commits(self, server):
        status, body = self._request(
            server,
            "POST",
            "/ingest",
            {"corpus": "play", "ops": [_append("a", "prophecy")]},
        )
        assert status == 200
        assert body["applied"] == 1
        assert body["documents"] == 1

    def test_empty_ops_is_invalid_request(self, server):
        status, body = self._request(
            server, "POST", "/ingest", {"corpus": "play", "ops": []}
        )
        assert status == 400
        assert body["code"] == "invalid_request"

    def test_unknown_document_maps_to_404(self, server):
        status, body = self._request(
            server,
            "POST",
            "/ingest",
            {"corpus": "play", "ops": [{"op": "delete", "id": "nope"}]},
        )
        assert status == 404
        assert body["code"] == "unknown_document"

    def test_duplicate_document_maps_to_409(self, server):
        self._request(
            server,
            "POST",
            "/ingest",
            {"corpus": "play", "ops": [_append("dup", "x")]},
        )
        status, body = self._request(
            server,
            "POST",
            "/ingest",
            {"corpus": "play", "ops": [_append("dup", "y")]},
        )
        assert status == 409
        assert body["code"] == "duplicate_document"

    def test_post_compact(self, server):
        self._request(
            server,
            "POST",
            "/ingest",
            {"corpus": "play", "ops": [_append("a", "x")]},
        )
        status, body = self._request(
            server, "POST", "/compact", {"corpus": "play"}
        )
        assert status == 200
        assert body["checkpointed"] is True

    def test_ingest_disabled_maps_to_400(self, tmp_path):
        service = QueryService(
            ServerConfig(workers=2, corpora=(PLAY,), ingest_enabled=False)
        )
        srv = create_server(service, port=0)
        srv.serve_in_background()
        try:
            status, body = self._request(
                srv,
                "POST",
                "/ingest",
                {"corpus": "play", "ops": [_append("a", "x")]},
            )
            assert status == 400
            assert body["code"] == "ingest_disabled"
        finally:
            srv.stop()
