"""ResultCache: LRU behavior, prefix invalidation, thread safety."""

import threading

import pytest

from repro.server import ResultCache


class TestLRU:
    def test_get_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get(("c", 1, "plan")) is None
        cache.put(("c", 1, "plan"), {"answer": 42})
        assert cache.get(("c", 1, "plan")) == {"answer": 42}
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_eviction_drops_least_recently_used(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh "a"; "b" becomes the LRU entry
        cache.put("c", 3)
        assert "a" in cache
        assert "b" not in cache
        assert "c" in cache
        assert cache.stats.evictions == 1

    def test_put_existing_key_refreshes_without_evicting(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats.evictions == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            ResultCache(0)


class TestInvalidation:
    def test_prefix_invalidation_is_scoped(self):
        cache = ResultCache(8)
        cache.put(("play", 1, "q1"), "r1")
        cache.put(("play", 1, "q2"), "r2")
        cache.put(("play", 2, "q1"), "r3")
        cache.put(("dict", 1, "q1"), "r4")
        assert cache.invalidate(("play",)) == 3
        assert ("dict", 1, "q1") in cache
        assert len(cache) == 1

    def test_generation_scoped_invalidation(self):
        cache = ResultCache(8)
        cache.put(("play", 1, "q1"), "r1")
        cache.put(("play", 2, "q1"), "r2")
        assert cache.invalidate(("play", 1)) == 1
        assert ("play", 2, "q1") in cache

    def test_clear(self):
        cache = ResultCache(8)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert cache.stats.invalidations == 2


class TestConcurrency:
    def test_hammering_from_many_threads_stays_consistent(self):
        cache = ResultCache(16)
        errors = []

        def worker(base: int) -> None:
            try:
                for i in range(300):
                    key = ("c", base, i % 24)
                    cache.put(key, i)
                    cache.get(key)
                    if i % 50 == 0:
                        cache.invalidate(("c", base))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(t,)) for t in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 16
        snapshot = cache.snapshot()
        assert snapshot["capacity"] == 16
        assert snapshot["hits"] + snapshot["misses"] == 6 * 300
