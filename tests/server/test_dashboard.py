"""The ``repro top`` dashboard: quantile math, frame diffs, live loop."""

import io
import json

import pytest

from repro.server.dashboard import (
    bucket_quantile,
    compute_frame,
    render_frame,
    run_top,
)


class TestBucketQuantile:
    def test_empty_is_zero(self):
        assert bucket_quantile({}, 0.5) == 0.0
        assert bucket_quantile({"0.1": 0, "+inf": 0}, 0.5) == 0.0

    def test_interpolates_inside_a_bucket(self):
        # 10 observations in (0, 0.1]: the median interpolates halfway.
        assert bucket_quantile({"0.1": 10}, 0.5) == pytest.approx(0.05)

    def test_walks_buckets_in_order(self):
        buckets = {"0.1": 5, "1.0": 5, "+inf": 0}
        assert bucket_quantile(buckets, 0.25) == pytest.approx(0.05)
        # rank 7.5 of 10 -> half way through the (0.1, 1.0] bucket
        assert bucket_quantile(buckets, 0.75) == pytest.approx(0.55)

    def test_inf_bucket_reports_last_finite_bound(self):
        buckets = {"0.1": 1, "1.0": 1, "+inf": 8}
        assert bucket_quantile(buckets, 0.99) == pytest.approx(1.0)


def sample(time, requests_200=0, requests_500=0, hits=0, misses=0,
           shard_tasks=0, buckets=None, uptime=10.0):
    counters = {
        "server_requests_total": {
            "endpoint=query,status=200": requests_200,
            "endpoint=query,status=500": requests_500,
        },
        "server_cache_hits_total": {"": hits},
        "server_cache_misses_total": {"": misses},
        "shard_tasks_total": {"phase=final": shard_tasks},
    }
    histograms = {
        "server_request_seconds": {
            "endpoint=query": {
                "count": sum((buckets or {}).values()),
                "sum": 0.0,
                "buckets": buckets or {},
            }
        }
    }
    return {
        "time": time,
        "metrics": {"metrics": {"counters": counters, "gauges": {},
                                "histograms": histograms}},
        "healthz": {"status": "healthy", "uptime_seconds": uptime},
        "slo": {
            "objectives": {
                "availability": {
                    "fast": {"burn": 0.5},
                    "slow": {"burn": 0.2},
                    "burn_threshold": 10.0,
                    "fast_burn_active": False,
                }
            }
        },
        "traces": {
            "traces": [
                {
                    "trace_id": "abc",
                    "duration": 0.2,
                    "endpoint": "query",
                    "status": "200",
                    "reasons": ["slow"],
                }
            ]
        },
    }


class TestComputeFrame:
    def test_rates_come_from_deltas(self):
        prev = sample(100.0, requests_200=50, hits=10, misses=10,
                      shard_tasks=100, buckets={"0.1": 50})
        cur = sample(102.0, requests_200=70, requests_500=0, hits=20,
                     misses=10, shard_tasks=140, buckets={"0.1": 70})
        frame = compute_frame(prev, cur)
        assert frame["interval"] == pytest.approx(2.0)
        assert frame["qps"] == pytest.approx(10.0)
        assert frame["error_rate"] == 0.0
        assert frame["cache_hit_rate"] == pytest.approx(1.0)  # 10 of 10 new
        assert frame["shard_fanout"] == pytest.approx(2.0)  # 40 tasks / 20
        assert frame["latency_ms"]["p50"] == pytest.approx(50.0)

    def test_error_rate_counts_5xx(self):
        prev = sample(100.0, requests_200=10)
        cur = sample(101.0, requests_200=18, requests_500=2)
        frame = compute_frame(prev, cur)
        assert frame["error_rate"] == pytest.approx(0.2)

    def test_first_frame_uses_cumulative_over_uptime(self):
        cur = sample(100.0, requests_200=50, uptime=5.0,
                     buckets={"0.1": 50})
        frame = compute_frame(None, cur)
        assert frame["qps"] == pytest.approx(10.0)
        assert frame["latency_ms"]["p50"] > 0

    def test_unreachable_server(self):
        frame = compute_frame(None, {"time": 1.0, "metrics": None})
        assert frame["reachable"] is False
        assert "unreachable" in render_frame(frame)

    def test_slo_and_traces_surface(self):
        frame = compute_frame(None, sample(100.0, requests_200=1))
        assert frame["slo"][0]["name"] == "availability"
        assert frame["slowest_traces"][0]["trace_id"] == "abc"
        text = render_frame(frame)
        assert "availability" in text
        assert "abc" in text
        assert "fan-out" not in text or frame["shard_fanout"] is not None


class TestLiveLoop:
    @pytest.fixture(scope="class")
    def server(self):
        from repro.server import (
            CorpusSpec,
            QueryService,
            ServerConfig,
            create_server,
        )

        spec = CorpusSpec(
            name="play", kind="synthetic", path="play", seed=11, scale=2
        )
        service = QueryService(
            ServerConfig(workers=2, corpora=(spec,), tracing=True,
                         trace_sample_rate=1.0)
        )
        srv = create_server(service, port=0)
        srv.serve_in_background()
        yield srv
        srv.stop()
        service.close()

    def test_json_frames_against_live_server(self, server):
        server.service.execute("speech dwithin scene", use_cache=False)
        out = io.StringIO()
        run_top(
            "127.0.0.1",
            server.bound_port,
            interval=0.05,
            iterations=2,
            json_output=True,
            stream=out,
        )
        frames = [json.loads(line) for line in out.getvalue().splitlines()]
        assert len(frames) == 2
        assert frames[0]["reachable"] is True
        assert frames[0]["health"] == "healthy"
        assert frames[0]["qps"] >= 0

    def test_rendered_dashboard_against_live_server(self, server):
        out = io.StringIO()
        run_top(
            "127.0.0.1",
            server.bound_port,
            interval=0.05,
            iterations=1,
            stream=out,
        )
        text = out.getvalue()
        assert "repro top" in text
        assert "objective" in text

    def test_down_server_renders_unreachable(self):
        out = io.StringIO()
        run_top(
            "127.0.0.1", 1, interval=0.05, iterations=1, stream=out
        )
        assert "unreachable" in out.getvalue()
