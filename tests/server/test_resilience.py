"""The serving layer under failure: corruption recovery, breaker,
health state machine, stale serving, shedding, and worker death."""

import random
import time

import pytest

from repro.engine.session import Engine
from repro.engine.storage import save_instance
from repro.errors import (
    CorpusUnavailableError,
    CorruptIndexError,
    FaultInjected,
    ServiceUnhealthyError,
    WorkerCrashedError,
)
from repro.faults import FaultSpec, injected_faults
from repro.obs.metrics import MetricsRegistry
from repro.server import CorpusSpec, QueryService, ServerConfig
from repro.server.health import DEGRADED, HEALTHY, UNHEALTHY, HealthMonitor
from repro.workloads.corpora import generate_play

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=2)


def _indexed_corpus(tmp_path, name="play"):
    """A kind=index corpus with a source fallback on disk."""
    text = generate_play(
        random.Random(5), acts=1, scenes_per_act=2, speeches_per_scene=3
    )
    source = tmp_path / f"{name}.tagged"
    source.write_text(text, encoding="utf-8")
    index = tmp_path / f"{name}.json"
    save_instance(Engine.from_tagged_text(text).instance, index)
    return CorpusSpec(
        name=name,
        kind="index",
        path=str(index),
        source=str(source),
        source_format="tagged",
    )


def _corrupt_file(path):
    raw = bytearray(path.read_bytes())
    for i in range(0, len(raw), 61):
        raw[i] ^= 0xFF
    path.write_bytes(bytes(raw))


class TestCorruptionRecovery:
    def test_corrupt_index_quarantined_and_rebuilt_from_source(self, tmp_path):
        spec = _indexed_corpus(tmp_path)
        _corrupt_file(tmp_path / "play.json")
        service = QueryService(ServerConfig(workers=1, corpora=(spec,)))
        try:
            # The service came up anyway, serving the rebuilt engine.
            response = service.execute("speech dwithin scene", use_cache=False)
            assert response["cardinality"] > 0
            # The damaged file was moved aside and a fresh one saved.
            assert (tmp_path / "play.json.quarantined").exists()
            from repro.engine.storage import load_instance

            load_instance(tmp_path / "play.json")  # now valid again
            counters = service.metrics_snapshot()["metrics"]["counters"]
            assert sum(counters.get("index_rebuilds_total", {}).values()) == 1
        finally:
            service.close()

    def test_corrupt_index_without_source_fails(self, tmp_path):
        spec = _indexed_corpus(tmp_path)
        spec = CorpusSpec(name="play", kind="index", path=spec.path)
        _corrupt_file(tmp_path / "play.json")
        with pytest.raises(CorruptIndexError):
            QueryService(
                ServerConfig(
                    workers=1,
                    corpora=(spec,),
                    retry_base_delay=0.001,
                    retry_max_delay=0.002,
                )
            )

    def test_transient_load_fault_survived_by_retry(self):
        with injected_faults(
            FaultSpec("index.build", "error", max_fires=1),
            metrics=MetricsRegistry(),
        ):
            service = QueryService(
                ServerConfig(
                    workers=1,
                    corpora=(PLAY,),
                    retry_base_delay=0.001,
                    retry_max_delay=0.002,
                )
            )
        try:
            assert service.execute("speech", use_cache=False)["cardinality"] > 0
            counters = service.metrics_snapshot()["metrics"]["counters"]
            assert sum(counters.get("retry_attempts_total", {}).values()) >= 1
        finally:
            service.close()


class TestCircuitBreaker:
    def make_service(self):
        return QueryService(
            ServerConfig(
                workers=1,
                corpora=(PLAY,),
                breaker_threshold=2,
                breaker_reset=0.05,
                retry_attempts=1,
                retry_base_delay=0.001,
            )
        )

    def test_reload_failures_trip_breaker_then_recover(self):
        service = self.make_service()
        try:
            breaker = service._handle("play").breaker
            with injected_faults(
                FaultSpec("index.build", "error"), metrics=MetricsRegistry()
            ):
                for _ in range(2):
                    with pytest.raises(FaultInjected):
                        service.reload_corpus("play")
                assert breaker.state == "open"
                # Open breaker: reloads fail fast with a retry hint...
                with pytest.raises(CorpusUnavailableError) as excinfo:
                    service.reload_corpus("play")
                assert excinfo.value.retry_after > 0
                assert excinfo.value.code == "corpus_unavailable"
                # ...and the service is at least degraded (pressure).
                assert service.health.state == DEGRADED
                # Queries still serve the last good engine throughout.
                assert (
                    service.execute("speech", use_cache=False)["cardinality"]
                    > 0
                )
            # Faults cleared: the half-open probe closes the breaker.
            time.sleep(0.06)
            result = service.reload_corpus("play")
            assert result["generation"] == 2
            assert breaker.state == "closed"
            assert breaker.trips == 1
            assert service.health.state == HEALTHY
        finally:
            service.close()


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestHealthMonitor:
    def make(self, **kwargs):
        clock = _Clock()
        monitor = HealthMonitor(
            window_seconds=kwargs.pop("window_seconds", 10.0),
            degraded_threshold=0.2,
            unhealthy_threshold=0.5,
            min_samples=4,
            probe_interval=2,
            clock=clock,
            **kwargs,
        )
        return monitor, clock

    def test_starts_healthy_and_needs_min_samples(self):
        monitor, _ = self.make()
        monitor.record_failure()
        monitor.record_failure()
        # Two failures, but below min_samples: still healthy.
        assert monitor.state == HEALTHY

    def test_degrades_then_unhealthy_then_heals_with_time(self):
        monitor, clock = self.make(window_seconds=5.0)
        for _ in range(3):
            monitor.record_success()
        monitor.record_failure()  # 1/4 = 25% >= degraded
        assert monitor.state == DEGRADED
        monitor.record_failure()
        monitor.record_failure()  # 3/6 = 50% >= unhealthy
        assert monitor.state == UNHEALTHY
        # The window slides past the failures: healthy again.
        clock.now = 6.0
        assert monitor.state == HEALTHY
        assert monitor.states_seen() == [HEALTHY, DEGRADED, UNHEALTHY, HEALTHY]

    def test_pressure_forces_degraded_without_samples(self):
        monitor, _ = self.make()
        monitor.set_pressure("breaker:play", True)
        assert monitor.state == DEGRADED
        monitor.set_pressure("breaker:play", False)
        assert monitor.state == HEALTHY

    def test_unhealthy_severity_pressure_sheds(self):
        monitor, _ = self.make()
        monitor.set_pressure("slo:availability", True, severity=UNHEALTHY)
        assert monitor.state == UNHEALTHY
        assert any(monitor.should_shed() for _ in range(3))
        monitor.set_pressure("slo:availability", False)
        assert monitor.state == HEALTHY

    def test_strongest_pressure_wins(self):
        monitor, _ = self.make()
        monitor.set_pressure("breaker:play", True)  # degraded severity
        monitor.set_pressure("slo:availability", True, severity=UNHEALTHY)
        assert monitor.state == UNHEALTHY
        monitor.set_pressure("slo:availability", False)
        assert monitor.state == DEGRADED

    def test_pressure_severity_validated(self):
        monitor, _ = self.make()
        with pytest.raises(ValueError):
            monitor.set_pressure("x", True, severity="on-fire")

    def test_shedding_only_when_unhealthy_with_probe_trickle(self):
        monitor, _ = self.make()
        assert not monitor.should_shed()
        for _ in range(2):
            monitor.record_success()
        for _ in range(4):
            monitor.record_failure()
        assert monitor.state == UNHEALTHY
        decisions = [monitor.should_shed() for _ in range(4)]
        assert True in decisions  # load is shed...
        assert False in decisions  # ...but probes get through


class TestDegradedServing:
    @pytest.fixture
    def service(self):
        svc = QueryService(
            ServerConfig(workers=2, queue_depth=4, corpora=(PLAY,))
        )
        yield svc
        svc.close()

    def test_stale_entry_served_when_cache_faults_while_degraded(
        self, service
    ):
        warm = service.execute("speech dwithin scene")
        assert warm["cached"] is False
        service.health.set_pressure("test", True)
        try:
            with injected_faults(
                FaultSpec("cache.get", "error"), metrics=MetricsRegistry()
            ):
                response = service.execute("speech dwithin scene")
            assert response["stale"] is True
            assert response["cached"] is True
            assert response["regions"] == warm["regions"]
            counters = service.metrics_snapshot()["metrics"]["counters"]
            assert (
                sum(counters.get("server_stale_served_total", {}).values())
                == 1
            )
        finally:
            service.health.set_pressure("test", False)

    def test_optimizer_skipped_while_degraded(self, service):
        service.health.set_pressure("test", True)
        try:
            response = service.execute(
                "line within speech within scene",
                optimize=True,
                use_cache=False,
            )
            # The optimizer pass was skipped: no plan cost fields beyond
            # the evaluation itself, and the answer is still correct.
            expected = service.execute(
                "line within speech within scene", use_cache=False
            )
            assert response["regions"] == expected["regions"]
        finally:
            service.health.set_pressure("test", False)

    def test_unhealthy_service_sheds_with_503(self):
        service = QueryService(
            ServerConfig(
                workers=1,
                corpora=(PLAY,),
                health_min_samples=4,
                unhealthy_threshold=0.5,
                probe_interval=2,
            )
        )
        try:
            for _ in range(6):
                service.health.record_failure()
            assert service.health.state == UNHEALTHY
            outcomes = []
            for _ in range(4):
                try:
                    service.execute("speech", use_cache=False)
                    outcomes.append("served")
                except ServiceUnhealthyError as exc:
                    assert exc.retry_after > 0
                    outcomes.append("shed")
            assert "shed" in outcomes
            assert "served" in outcomes  # the probe trickle
            counters = service.metrics_snapshot()["metrics"]["counters"]
            assert sum(counters.get("server_shed_total", {}).values()) >= 1
        finally:
            service.close()


class TestWorkerDeath:
    def test_single_kill_is_transparent_to_the_client(self):
        service = QueryService(
            ServerConfig(workers=2, corpora=(PLAY,), dispatch_retries=2)
        )
        try:
            with injected_faults(
                FaultSpec("pool.worker", "kill", max_fires=1),
                metrics=MetricsRegistry(),
            ):
                response = service.execute("speech", use_cache=False)
            assert response["cardinality"] > 0
            stats = service.pool.stats()
            assert stats["worker_deaths"] == 1
            assert stats["workers"] == 2  # a replacement was spawned
        finally:
            service.close()

    def test_kills_exhaust_dispatch_retries(self):
        service = QueryService(
            ServerConfig(workers=2, corpora=(PLAY,), dispatch_retries=1)
        )
        try:
            with injected_faults(
                FaultSpec("pool.worker", "kill"), metrics=MetricsRegistry()
            ):
                with pytest.raises(WorkerCrashedError) as excinfo:
                    service.execute("speech", use_cache=False)
            assert excinfo.value.code == "worker_crashed"
            # The pool recovered: replacements serve the next query.
            assert service.execute("speech", use_cache=False)["cardinality"] > 0
        finally:
            service.close()


class TestHealthz:
    def test_healthz_reports_resilience_state(self):
        service = QueryService(ServerConfig(workers=1, corpora=(PLAY,)))
        try:
            health = service.healthz()
            assert health["status"] == "healthy"
            assert health["health"]["state"] == "healthy"
            assert "play" in health["breakers"]
            assert health["breakers"]["play"]["state"] == "closed"
            assert health["faults"] is None
            with injected_faults(
                FaultSpec("cache.get", "error"), metrics=MetricsRegistry()
            ):
                assert service.healthz()["faults"]["armed"]
        finally:
            service.close()
