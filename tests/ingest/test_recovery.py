"""The WAL crash-recovery property: kill the writer at *every* record
boundary via the ``storage.write`` fault point, replay, and hold the
recovered corpus bit-identical to a rebuilt-from-scratch oracle.

The durability contract under test: a batch is acknowledged iff its
commit record is durable, so after any crash the recovered state must
contain exactly the acknowledged batches — no committed mutation lost,
no uncommitted mutation applied.
"""

import pytest

from repro.engine.storage import instance_to_dict
from repro.engine.tagged import parse_tagged_text
from repro.errors import FaultInjected
from repro.faults.registry import FaultSpec, injected_faults
from repro.ingest import LiveCorpus, WriteAheadLog

BASE = (
    "<document>\n"
    "<speech><speaker>First</speaker><line>crown and throne</line></speech>\n"
    "</document>"
)


def _doc(word: str) -> str:
    return (
        f"<speech><speaker>Ingest</speaker>"
        f"<line>{word} at midnight</line></speech>"
    )


#: A scripted mutation history covering every op kind, including a
#: batch that both deletes and appends.
BATCHES = [
    [
        {"op": "append", "id": "a", "text": _doc("prophecy")},
        {"op": "append", "id": "b", "text": _doc("dagger")},
    ],
    [{"op": "update", "id": "a", "text": _doc("storm")}],
    [
        {"op": "delete", "id": "b"},
        {"op": "append", "id": "c", "text": _doc("ghost")},
    ],
    [{"op": "append", "id": "d", "text": _doc("banquet")}],
]

#: Each batch writes one record per op plus a commit record.
TOTAL_RECORDS = sum(len(batch) + 1 for batch in BATCHES)


def _live() -> LiveCorpus:
    return LiveCorpus(parse_tagged_text(BASE).instance, BASE)


def _run_writer(tmp_path, boundary: int):
    """Apply the scripted history, crashing at record ``boundary``
    (``boundary == TOTAL_RECORDS`` is the crash-free control run).
    Returns the acknowledged ``(seq, batch)`` list and the live state
    the writer reached — the service applies a batch only after the WAL
    acknowledged it, so this is exactly what queries could have seen.
    """
    wal = WriteAheadLog(tmp_path, "play", fsync=True)
    live = _live()
    acked = []
    spec = FaultSpec(
        "storage.write",
        "error",
        probability=1.0,
        skip_fires=boundary,
        max_fires=1,
    )
    with injected_faults(spec) as registry:
        for batch in BATCHES:
            try:
                seq = wal.append_batch(batch)
            except FaultInjected:
                break  # the crash: nothing after this instant happened
            live.apply(batch)
            acked.append((seq, batch))
        if boundary < TOTAL_RECORDS:
            assert registry.fires("storage.write") == 1
    return acked, live


@pytest.mark.parametrize("boundary", range(TOTAL_RECORDS + 1))
def test_crash_at_every_record_boundary_loses_nothing_committed(
    tmp_path, boundary
):
    acked, live = _run_writer(tmp_path, boundary)

    # Recovery: reopen the log cold and replay committed batches only.
    replayed = WriteAheadLog(tmp_path, "play").replay()
    assert replayed == acked

    recovered = _live()
    for _seq, batch in replayed:
        recovered.apply(batch)

    # The recovered corpus is exactly the acknowledged state ...
    assert instance_to_dict(recovered.instance) == instance_to_dict(
        live.instance
    )
    # ... and bit-identical to a full re-parse of its combined text.
    assert instance_to_dict(recovered.instance) == instance_to_dict(
        recovered.oracle_instance()
    )


def test_sequence_numbers_never_collide_after_a_crash(tmp_path):
    # Crash on batch 2's commit record (the 5th overall): its op record
    # reached disk, but the batch was never acknowledged.
    acked, _live_state = _run_writer(tmp_path, 4)
    assert [seq for seq, _ in acked] == [1]
    wal = WriteAheadLog(tmp_path, "play")
    # Batch 2 burned its sequence number even though it never
    # committed; the retry gets a fresh one and replay stays ordered.
    assert wal.next_seq == 3
    retry_seq = wal.append_batch(BATCHES[1])
    assert retry_seq == wal.last_seq
    assert [seq for seq, _ in wal.replay()] == [1, retry_seq]


def test_recovery_through_checkpoint_plus_tail(tmp_path):
    wal = WriteAheadLog(tmp_path, "play", fsync=True)
    live = _live()
    for batch in BATCHES[:2]:
        wal.append_batch(batch)
        live.apply(batch)
    # Checkpoint, then keep writing: recovery must fold the snapshot
    # first and replay only the tail past its watermark.
    wal.save_snapshot(live.state(through_batch=wal.last_seq))
    wal.truncate()
    for batch in BATCHES[2:]:
        wal.append_batch(batch)
        live.apply(batch)

    cold = WriteAheadLog(tmp_path, "play")
    snapshot = cold.load_snapshot()
    recovered = LiveCorpus.from_state(
        snapshot, parse_tagged_text(BASE).instance, BASE
    )
    tail = cold.replay(after=int(snapshot["through_batch"]))
    assert len(tail) == len(BATCHES[2:])
    for _seq, batch in tail:
        recovered.apply(batch)
    assert instance_to_dict(recovered.instance) == instance_to_dict(
        live.instance
    )


def test_crash_during_checkpoint_preserves_the_log(tmp_path):
    wal = WriteAheadLog(tmp_path, "play", fsync=True)
    live = _live()
    for batch in BATCHES:
        wal.append_batch(batch)
        live.apply(batch)
    with injected_faults(FaultSpec("storage.write", "error", probability=1.0)):
        with pytest.raises(FaultInjected):
            wal.save_snapshot(live.state(through_batch=wal.last_seq))
    # The failed checkpoint left no snapshot and the full log intact:
    # recovery replays everything as if the checkpoint never started.
    cold = WriteAheadLog(tmp_path, "play")
    assert cold.load_snapshot() is None
    recovered = _live()
    for _seq, batch in cold.replay():
        recovered.apply(batch)
    assert instance_to_dict(recovered.instance) == instance_to_dict(
        live.instance
    )
