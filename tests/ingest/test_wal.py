"""WriteAheadLog: durable round-trips, torn tails, checksums, and the
checkpoint (snapshot + truncate) protocol."""

import json

import pytest

from repro.errors import CorruptIndexError
from repro.ingest import WriteAheadLog, wal_checksum

BATCH_A = [{"op": "append", "id": "a", "text": "<line>alpha</line>"}]
BATCH_B = [
    {"op": "append", "id": "b", "text": "<line>beta</line>"},
    {"op": "update", "id": "a", "text": "<line>alpha two</line>"},
]
BATCH_C = [{"op": "delete", "id": "b"}]


def _wal(tmp_path, **kwargs):
    return WriteAheadLog(tmp_path, "test", **kwargs)


class TestAppendReplay:
    def test_round_trip_preserves_batches_and_order(self, tmp_path):
        wal = _wal(tmp_path)
        assert wal.append_batch(BATCH_A) == 1
        assert wal.append_batch(BATCH_B) == 2
        replayed = _wal(tmp_path).replay()
        assert replayed == [(1, BATCH_A), (2, BATCH_B)]

    def test_replay_after_skips_the_watermark(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_batch(BATCH_A)
        wal.append_batch(BATCH_B)
        wal.append_batch(BATCH_C)
        assert _wal(tmp_path).replay(after=2) == [(3, BATCH_C)]

    def test_next_seq_continues_across_reopen(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_batch(BATCH_A)
        wal.append_batch(BATCH_B)
        reopened = _wal(tmp_path)
        assert reopened.next_seq == 3
        assert reopened.last_seq == 2

    def test_fresh_log_is_empty(self, tmp_path):
        wal = _wal(tmp_path)
        assert wal.next_seq == 1
        assert wal.last_seq == 0
        assert wal.replay() == []
        assert wal.size_bytes() == 0

    def test_fsync_disabled_still_replays(self, tmp_path):
        wal = _wal(tmp_path, fsync=False)
        wal.append_batch(BATCH_A)
        assert _wal(tmp_path).replay() == [(1, BATCH_A)]


class TestTornTail:
    def test_truncated_final_line_drops_only_that_batch(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_batch(BATCH_A)
        wal.append_batch(BATCH_B)
        raw = wal.path.read_text(encoding="utf-8")
        lines = raw.splitlines()
        # Tear the commit record of batch 2 in half (crash mid-write).
        torn = "\n".join(lines[:-1]) + "\n" + lines[-1][: len(lines[-1]) // 2]
        wal.path.write_text(torn, encoding="utf-8")
        reopened = _wal(tmp_path)
        assert reopened.replay() == [(1, BATCH_A)]
        # Batch 2's intact op records still burn its sequence number.
        assert reopened.next_seq == 3

    def test_checksum_corruption_fences_the_rest_of_the_log(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_batch(BATCH_A)
        wal.append_batch(BATCH_B)
        lines = wal.path.read_text(encoding="utf-8").splitlines()
        # Flip one hex digit inside batch 2's first record checksum:
        # still valid JSON, but the record no longer verifies, and a
        # single-writer log treats everything after it as suspect.
        target = lines[len(BATCH_A) + 1]
        record = json.loads(target)
        checksum = record["checksum"]
        record["checksum"] = ("0" if checksum[0] != "0" else "1") + checksum[1:]
        lines[len(BATCH_A) + 1] = json.dumps(
            record, sort_keys=True, separators=(",", ":")
        )
        wal.path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        assert _wal(tmp_path).replay() == [(1, BATCH_A)]

    def test_commit_without_all_its_ops_is_torn(self, tmp_path):
        wal = _wal(tmp_path)
        # Handcraft a batch whose commit record claims two ops but whose
        # file only carries one — a torn middle the checksums cannot see.
        records = [
            {"seq": 1, "kind": "op", "index": 0, "op": BATCH_B[0]},
            {"seq": 1, "kind": "commit", "ops": 2},
        ]
        with open(wal.path, "a", encoding="utf-8") as handle:
            for record in records:
                record["checksum"] = wal_checksum(record)
                handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
        assert _wal(tmp_path).replay() == []

    def test_garbage_line_stops_reading(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_batch(BATCH_A)
        with open(wal.path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
        assert _wal(tmp_path).replay() == [(1, BATCH_A)]


class TestCheckpoint:
    def test_snapshot_round_trip(self, tmp_path):
        wal = _wal(tmp_path)
        state = {"through_batch": 4, "docs": [["a", "<line>alpha</line>"]]}
        wal.save_snapshot(state)
        loaded = wal.load_snapshot()
        assert loaded["through_batch"] == 4
        assert loaded["docs"] == [["a", "<line>alpha</line>"]]

    def test_snapshot_requires_a_watermark(self, tmp_path):
        with pytest.raises(ValueError):
            _wal(tmp_path).save_snapshot({"docs": []})

    def test_missing_snapshot_is_none(self, tmp_path):
        assert _wal(tmp_path).load_snapshot() is None

    def test_corrupt_snapshot_raises(self, tmp_path):
        wal = _wal(tmp_path)
        wal.snapshot_path.write_text("{broken", encoding="utf-8")
        with pytest.raises(CorruptIndexError):
            wal.load_snapshot()

    def test_tampered_snapshot_fails_its_checksum(self, tmp_path):
        wal = _wal(tmp_path)
        wal.save_snapshot({"through_batch": 1, "docs": []})
        data = json.loads(wal.snapshot_path.read_text(encoding="utf-8"))
        data["through_batch"] = 99  # rewrite history
        wal.snapshot_path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(CorruptIndexError):
            wal.load_snapshot()

    def test_truncate_empties_log_but_keeps_the_watermark(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_batch(BATCH_A)
        wal.append_batch(BATCH_B)
        wal.save_snapshot({"through_batch": wal.last_seq, "docs": []})
        wal.truncate()
        assert wal.size_bytes() == 0
        reopened = _wal(tmp_path)
        assert reopened.replay(after=2) == []
        # Sequence numbers never rewind past the checkpoint.
        assert reopened.next_seq == 3

    def test_crash_between_snapshot_and_truncate_is_harmless(self, tmp_path):
        wal = _wal(tmp_path)
        wal.append_batch(BATCH_A)
        wal.append_batch(BATCH_B)
        wal.save_snapshot({"through_batch": 2, "docs": []})
        # No truncate: the overlapping batches are still in the file,
        # but replay past the watermark does not re-apply them.
        reopened = _wal(tmp_path)
        through = reopened.load_snapshot()["through_batch"]
        assert reopened.replay(after=through) == []
        reopened.append_batch(BATCH_C)
        assert _wal(tmp_path).replay(after=through) == [(3, BATCH_C)]
