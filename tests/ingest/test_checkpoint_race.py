"""WAL checkpoints racing the compactor: no acked batch may be lost.

``QueryService.compact`` merges segments, checkpoints the assembled
state, and truncates the WAL — all while ``ingest`` keeps appending
batches from other threads.  The invariant under test: however the
checkpoint/truncate interleaves with commits, a recovery over the same
ingest directory reconstructs exactly the acknowledged writes — a
batch committed concurrently with a truncation must land either in the
checkpoint snapshot or in the surviving WAL tail, never in neither.
"""

import threading

from repro.engine.storage import instance_to_dict
from repro.ingest import LiveCorpus
from repro.server import CorpusSpec, QueryService, ServerConfig

PLAY = CorpusSpec(name="play", kind="synthetic", path="play", seed=11, scale=1)


def _config(tmp_path, **overrides) -> ServerConfig:
    settings = dict(
        workers=2,
        queue_depth=8,
        corpora=(PLAY,),
        ingest_enabled=True,
        ingest_dir=str(tmp_path / "wal"),
        ingest_fsync=False,  # semantics under test, not disks
        compaction_enabled=False,  # the test drives compaction itself
    )
    settings.update(overrides)
    return ServerConfig(**settings)


def _append(doc_id: str, word: str) -> dict:
    return {
        "op": "append",
        "id": doc_id,
        "text": f"<speech><speaker>Race</speaker>"
        f"<line>{word} at midnight</line></speech>",
    }


class TestCheckpointCompactorRace:
    def test_concurrent_checkpoints_never_drop_an_acked_batch(self, tmp_path):
        config = _config(tmp_path)
        service = QueryService(config)
        base = service._handle("play").engine
        mirror = LiveCorpus(base.instance, base.text)

        writes = 60
        acked: list[list[dict]] = []
        compactions = {"count": 0}
        stop = threading.Event()

        def compactor() -> None:
            # Checkpoint + truncate as fast as the lock allows, so
            # truncations land between (and race with) commits.
            while not stop.is_set():
                service.compact("play")
                compactions["count"] += 1

        thread = threading.Thread(target=compactor, daemon=True)
        thread.start()
        try:
            for i in range(writes):
                ops = [_append(f"race-{i}", f"word{i}")]
                service.ingest("play", ops)
                acked.append(ops)  # single writer: ack order = apply order
        finally:
            stop.set()
            thread.join(timeout=10.0)
            service.close()

        assert compactions["count"] >= 2  # the race actually happened
        for ops in acked:
            mirror.apply(ops)

        # Recovery over the same directory must see every acked batch:
        # whatever the last checkpoint missed must still be in the WAL.
        recovered = QueryService(config)
        try:
            handle = recovered._handle("play")
            info = recovered.ingest_info()["corpora"]["play"]
            assert info["documents"] == writes
            assert instance_to_dict(handle.engine.instance) == (
                instance_to_dict(mirror.instance)
            )
        finally:
            recovered.close()

    def test_checkpoint_mid_stream_replays_only_the_tail(self, tmp_path):
        config = _config(tmp_path)
        service = QueryService(config)
        try:
            for i in range(4):
                service.ingest("play", [_append(f"head-{i}", "alpha")])
            result = service.compact("play")
            assert result["checkpointed"] is True
            for i in range(3):
                service.ingest("play", [_append(f"tail-{i}", "omega")])
        finally:
            service.close()

        recovered = QueryService(config)
        try:
            info = recovered.ingest_info()["corpora"]["play"]
            # Only the three post-checkpoint batches replay; the first
            # four come out of the snapshot.
            assert info["replayed_batches"] == 3
            assert info["documents"] == 7
        finally:
            recovered.close()
