"""LiveCorpus: the bit-identity oracle, batch validation, compaction,
and checkpoint state round-trips."""

import pytest

from repro.engine.storage import instance_to_dict
from repro.engine.tagged import parse_tagged_text
from repro.errors import (
    DuplicateDocumentError,
    IngestError,
    UnknownDocumentError,
)
from repro.ingest import LiveCorpus

BASE = (
    "<document>\n"
    "<speech><speaker>First</speaker><line>crown and throne</line></speech>\n"
    "</document>"
)


def _doc(word: str) -> str:
    return (
        f"<speech><speaker>Ingest</speaker>"
        f"<line>{word} at midnight</line></speech>"
    )


def _append(doc_id: str, word: str) -> dict:
    return {"op": "append", "id": doc_id, "text": _doc(word)}


def _live() -> LiveCorpus:
    return LiveCorpus(parse_tagged_text(BASE).instance, BASE)


def _assert_bit_identical(live: LiveCorpus) -> None:
    """The invariant everything hangs on: the incrementally assembled
    instance equals a full re-parse of the combined text."""
    assert instance_to_dict(live.instance) == instance_to_dict(
        live.oracle_instance()
    )


class TestBitIdentity:
    def test_append_fast_path(self):
        live = _live()
        live.apply([_append("a", "prophecy"), _append("b", "dagger")])
        live.apply([_append("c", "ghost")])
        assert live.document_count == 3
        assert live.segment_count == 2
        _assert_bit_identical(live)

    def test_update_reassembles(self):
        live = _live()
        live.apply([_append("a", "prophecy"), _append("b", "dagger")])
        live.apply([{"op": "update", "id": "a", "text": _doc("storm")}])
        # The update tombstones the old entry and re-appends at the end.
        assert live.document_ids == ["b", "a"]
        assert live.tombstone_count == 1
        _assert_bit_identical(live)

    def test_delete_reassembles(self):
        live = _live()
        live.apply([_append("a", "prophecy"), _append("b", "dagger")])
        live.apply([{"op": "delete", "id": "a"}])
        assert live.document_ids == ["b"]
        assert live.tombstone_count == 1
        _assert_bit_identical(live)

    def test_baseless_corpus(self):
        live = LiveCorpus()
        live.apply([_append("a", "prophecy")])
        live.apply([{"op": "update", "id": "a", "text": _doc("storm")}])
        _assert_bit_identical(live)

    def test_documents_lists_survivors_in_layout_order(self):
        live = _live()
        live.apply([_append("a", "prophecy"), _append("b", "dagger")])
        live.apply([_append("c", "ghost")])
        live.apply([{"op": "delete", "id": "b"}])
        assert live.documents() == [
            ("a", _doc("prophecy")),
            ("c", _doc("ghost")),
        ]

    def test_combined_text_matches_layout(self):
        live = _live()
        live.apply([_append("a", "prophecy")])
        assert live.combined_text() == (
            BASE + "\n<document>\n" + _doc("prophecy") + "\n</document>"
        )


class TestValidation:
    def test_empty_batch_rejected(self):
        with pytest.raises(IngestError):
            _live().prepare([])

    def test_non_object_op_rejected(self):
        with pytest.raises(IngestError):
            _live().prepare(["append"])

    def test_unknown_op_kind_rejected(self):
        with pytest.raises(IngestError):
            _live().prepare([{"op": "upsert", "id": "a", "text": _doc("x")}])

    def test_missing_id_rejected(self):
        with pytest.raises(IngestError):
            _live().prepare([{"op": "append", "text": _doc("x")}])

    def test_duplicate_append_rejected(self):
        live = _live()
        live.apply([_append("a", "prophecy")])
        with pytest.raises(DuplicateDocumentError):
            live.prepare([_append("a", "again")])

    def test_same_id_twice_in_one_batch_rejected(self):
        with pytest.raises(DuplicateDocumentError):
            _live().prepare([_append("a", "x"), _append("a", "y")])

    def test_update_unknown_document_rejected(self):
        with pytest.raises(UnknownDocumentError):
            _live().prepare([{"op": "update", "id": "nope", "text": _doc("x")}])

    def test_delete_unknown_document_rejected(self):
        with pytest.raises(UnknownDocumentError):
            _live().prepare([{"op": "delete", "id": "nope"}])

    def test_reserved_document_tag_rejected(self):
        with pytest.raises(IngestError):
            _live().prepare(
                [{"op": "append", "id": "a", "text": "<document>x</document>"}]
            )

    def test_unparsable_text_rejected(self):
        with pytest.raises(IngestError):
            _live().prepare(
                [{"op": "append", "id": "a", "text": "<speech>unclosed"}]
            )

    def test_empty_text_rejected(self):
        with pytest.raises(IngestError):
            _live().prepare([{"op": "append", "id": "a", "text": "  "}])

    def test_batch_is_all_or_nothing(self):
        # A batch that fails validation mid-way leaves no trace: prepare
        # never mutates, and the failed commit never happens.
        live = _live()
        live.apply([_append("a", "prophecy")])
        before = instance_to_dict(live.instance)
        with pytest.raises(UnknownDocumentError):
            live.prepare([_append("b", "dagger"), {"op": "delete", "id": "x"}])
        assert live.document_count == 1
        assert live.segment_count == 1
        assert instance_to_dict(live.instance) == before

    def test_appends_only_flag(self):
        live = _live()
        live.apply([_append("a", "prophecy")])
        assert live.prepare([_append("b", "x")]).appends_only is True
        assert (
            live.prepare([{"op": "delete", "id": "a"}]).appends_only is False
        )


class TestCompaction:
    def test_nothing_to_do_returns_none(self):
        live = _live()
        assert live.compact() is None
        live.apply([_append("a", "prophecy")])
        assert live.compact() is None  # one segment, no tombstones

    def test_merges_segments_and_drops_tombstones(self):
        live = _live()
        live.apply([_append("a", "prophecy"), _append("b", "dagger")])
        live.apply([_append("c", "ghost")])
        live.apply([{"op": "delete", "id": "b"}])
        before = instance_to_dict(live.instance)
        summary = live.compact()
        assert summary == {
            "merged_segments": 2,
            "dropped_tombstones": 1,
            "live_documents": 2,
        }
        assert live.segment_count == 1
        assert live.tombstone_count == 0
        assert live.document_ids == ["a", "c"]
        # Survivors keep their order, so the layout — and every query
        # answer — is unchanged: compaction never bumps the generation.
        assert instance_to_dict(live.instance) == before
        _assert_bit_identical(live)

    def test_compacting_away_everything_leaves_no_segments(self):
        live = _live()
        live.apply([_append("a", "prophecy")])
        live.apply([{"op": "delete", "id": "a"}])
        summary = live.compact()
        assert summary["live_documents"] == 0
        assert live.segment_count == 0
        assert instance_to_dict(live.instance) == instance_to_dict(
            parse_tagged_text(BASE).instance
        )

    def test_small_segment_count(self):
        live = _live()
        live.apply([_append("a", "prophecy")])
        live.apply([_append("b", "dagger"), _append("c", "ghost")])
        assert live.small_segment_count(1) == 1
        assert live.small_segment_count(2) == 2


class TestCheckpointState:
    def test_state_round_trip_is_bit_identical(self):
        live = _live()
        live.apply([_append("a", "prophecy"), _append("b", "dagger")])
        live.apply([{"op": "update", "id": "a", "text": _doc("storm")}])
        live.apply([{"op": "delete", "id": "b"}])
        state = live.state(through_batch=3)
        assert state["through_batch"] == 3
        restored = LiveCorpus.from_state(
            state, parse_tagged_text(BASE).instance, BASE
        )
        assert restored.document_ids == live.document_ids
        assert restored.tombstone_count == 0  # checkpoints fold tombstones
        assert instance_to_dict(restored.instance) == instance_to_dict(
            live.instance
        )

    def test_empty_state_round_trip(self):
        live = _live()
        restored = LiveCorpus.from_state(
            live.state(through_batch=0),
            parse_tagged_text(BASE).instance,
            BASE,
        )
        assert restored.document_count == 0
        assert instance_to_dict(restored.instance) == instance_to_dict(
            live.instance
        )
