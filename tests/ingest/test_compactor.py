"""BackgroundCompactor: one corpus per tick, health yields, lifecycle."""

import time

import pytest

from repro.ingest import BackgroundCompactor


class _Health:
    def __init__(self, state: str = "healthy"):
        self.state = state


class TestRunOnce:
    def test_no_candidates_does_nothing(self):
        compactor = BackgroundCompactor(lambda: [], lambda name: None)
        assert compactor.run_once() is None
        assert compactor.ticks == 1
        assert compactor.runs == 0

    def test_compacts_only_the_first_candidate(self):
        compacted = []
        compactor = BackgroundCompactor(
            lambda: ["alpha", "beta"], compacted.append
        )
        assert compactor.run_once() == "alpha"
        assert compacted == ["alpha"]  # one corpus per tick, never two
        assert compactor.runs == 1

    def test_yields_while_not_healthy(self):
        health = _Health("degraded")
        compacted = []
        compactor = BackgroundCompactor(
            lambda: ["alpha"], compacted.append, health=health
        )
        assert compactor.run_once() is None
        assert compactor.yields == 1
        assert compacted == []
        # Query load recovered: maintenance resumes.
        health.state = "healthy"
        assert compactor.run_once() == "alpha"
        assert compacted == ["alpha"]

    def test_missing_health_monitor_means_always_go(self):
        compactor = BackgroundCompactor(lambda: ["alpha"], lambda name: None)
        assert compactor.run_once() == "alpha"
        assert compactor.yields == 0


class TestLifecycle:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            BackgroundCompactor(lambda: [], lambda name: None, interval=0)

    def test_thread_ticks_and_survives_compaction_errors(self):
        def compact(name: str) -> None:
            raise RuntimeError("disk on fire")

        compactor = BackgroundCompactor(
            lambda: ["alpha"], compact, interval=0.01
        )
        compactor.start()
        compactor.start()  # idempotent
        try:
            deadline = time.monotonic() + 2.0
            while compactor.ticks < 3 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            compactor.close()
        # The loop kept ticking through the failing compaction.
        assert compactor.ticks >= 3

    def test_close_without_start_is_fine(self):
        BackgroundCompactor(lambda: [], lambda name: None).close()
