"""A tour of the paper's theory, executed.

Walks through the formal results with running code:

1.  Proposition 3.3 — translate a query to a restricted FMFT formula,
    evaluate both sides on the same instance, watch them agree.
2.  Theorem 3.5 — build the 3-CNF reduction and decide a formula's
    satisfiability through region-algebra emptiness.
3.  Theorem 5.1 / Figure 2 — refute a candidate expression for ``⊃_d``
    with the alternating-nesting tower.
4.  Theorem 5.3 / Figure 3 — refute a candidate for ``BI`` with the
    4k+1 family and the reduce step.
5.  Proposition 6.1 — solve a vertex-cover instance by solving the
    minimal-set problem its reduction produces.

Run with::

    python examples/theory_tour.py
"""

from repro.algebra import evaluate, parse, to_text
from repro.fmft import (
    CNF,
    Literal,
    algebra_to_formula,
    assignment_to_instance,
    brute_force_satisfiable,
    cnf_to_expression,
    model_from_instance,
    satisfying_words,
)
from repro.properties import (
    refute_both_included,
    refute_direct_inclusion,
)
from repro.rig import minimal_set_bruteforce, vertex_cover_to_minimal_set
from repro.workloads import figure_2_instance, random_instance


def proposition_3_3() -> None:
    print("=" * 60)
    print("Proposition 3.3: algebra == restricted FMFT")
    import random

    instance = random_instance(random.Random(1), max_nodes=20, patterns=("p",))
    query = parse('R0 containing (R1 @ "p")')
    formula = algebra_to_formula(query)
    model, region_of_word = model_from_instance(instance, patterns=("p",))
    algebra_side = set(evaluate(query, instance))
    logic_side = {region_of_word[w] for w in satisfying_words(formula, model)}
    print(f"  query          : {to_text(query, unicode_ops=True)}")
    print(f"  algebra result : {sorted(r.as_tuple() for r in algebra_side)}")
    print(f"  formula result : {sorted(r.as_tuple() for r in logic_side)}")
    assert algebra_side == logic_side


def theorem_3_5() -> None:
    print("=" * 60)
    print("Theorem 3.5: SAT via region-algebra emptiness")
    # (x1 ∨ ¬x2) ∧ (¬x1 ∨ x2) — satisfiable.
    cnf = CNF(
        2,
        (
            (Literal(1, True), Literal(2, False)),
            (Literal(1, False), Literal(2, True)),
        ),
    )
    expr = cnf_to_expression(cnf)
    print(f"  reduction size: {len(to_text(expr))} chars of algebra")
    assignment = brute_force_satisfiable(cnf)
    assert assignment is not None
    witness = assignment_to_instance(cnf, assignment)
    print(f"  assignment {assignment} -> e(I) non-empty: {bool(evaluate(expr, witness))}")


def theorem_5_1() -> None:
    print("=" * 60)
    print("Theorem 5.1: no core expression computes B dcontaining A")
    candidate = parse("B containing A")
    witness = refute_direct_inclusion(candidate)
    assert witness is not None
    got = evaluate(candidate, witness)
    want = evaluate("B dcontaining A", witness)
    print(f"  candidate 'B containing A' refuted on a {len(witness)}-region tower:")
    print(f"    candidate selects {len(got)} regions, the operator {len(want)}")
    tower = figure_2_instance(8)
    print(f"  (Figure 2 family: alternating tower, depth {tower.nesting_depth()})")


def theorem_5_3() -> None:
    print("=" * 60)
    print("Theorem 5.3: no core expression computes bi(C, B, A)")
    candidate = parse("C containing (B before A)")
    witness = refute_both_included(candidate)
    assert witness is not None
    got = evaluate(candidate, witness)
    want = evaluate("bi(C, B, A)", witness)
    print(f"  candidate 'C containing (B before A)' refuted:")
    print(f"    candidate selects {len(got)} C-regions, the operator {len(want)}")


def proposition_6_1() -> None:
    print("=" * 60)
    print("Proposition 6.1: vertex cover == minimal interference set")
    vertices = ["u", "v", "w", "z"]
    edges = [("u", "v"), ("v", "w"), ("w", "z"), ("u", "w")]
    rig, chain = vertex_cover_to_minimal_set(vertices, edges)
    minimal = minimal_set_bruteforce(rig, chain)
    print(f"  graph edges   : {edges}")
    print(f"  minimal set   : {sorted(minimal)} (a minimum vertex cover)")
    assert all(u in minimal or v in minimal for u, v in edges)


def main() -> None:
    proposition_3_3()
    theorem_3_5()
    theorem_5_1()
    theorem_5_3()
    proposition_6_1()
    print("=" * 60)
    print("All theory checks passed.")


if __name__ == "__main__":
    main()
