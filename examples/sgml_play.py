"""Structured-document retrieval over a generated play corpus.

Demonstrates the document-database side of the paper: an SGML-like
corpus with acts/scenes/speeches, content+structure queries, the
both-included operator for same-unit ordering (the "most common kind of
request for traditional document-based text retrieval systems",
Section 5.2), schema discovery (deriving the RIG/ROG from the corpus),
and index persistence.

Run with::

    python examples/sgml_play.py
"""

import random
import tempfile
from pathlib import Path

from repro import Engine
from repro.rig import rig_from_instances, rog_from_instances
from repro.workloads import generate_play


def main() -> None:
    rng = random.Random(7)
    text = generate_play(rng, acts=3, scenes_per_act=3, speeches_per_scene=6)
    engine = Engine.from_tagged_text(text)
    print("Corpus statistics:", engine.statistics())

    # Content queries scoped by structure.
    romeo_speeches = engine.query('speech containing (speaker @ "ROMEO")')
    print(f"\nROMEO has {len(romeo_speeches)} speeches")

    love_scenes = engine.query('scene containing (line @ "love")')
    print(f'{len(love_scenes)} scenes mention "love"')

    # Same-unit ordering: ROMEO speaks before JULIET in the same scene.
    pairs = engine.query('bi(scene, speaker @ "ROMEO", speaker @ "JULIET")')
    print(f"ROMEO precedes JULIET in {len(pairs)} scene(s)")

    # Naive ordering leaks across scene boundaries — compare:
    leaky = engine.query(
        'scene containing (speaker @ "ROMEO" before speaker @ "JULIET")'
    )
    print(f"(the naive order query would claim {len(leaky)})")

    # First speech of every scene: direct inclusion + order.
    openers = engine.query("speech dwithin scene except (speech after speech)")
    print(f"{len(openers)} scene-opening speeches")

    # Schema discovery: derive the RIG/ROG this corpus satisfies.
    rig = rig_from_instances([engine.instance])
    rog = rog_from_instances([engine.instance])
    print(f"\nDerived RIG: {len(rig.edges)} edges, acyclic={rig.is_acyclic()}")
    print(f"Derived ROG: {len(rog.edges)} edges")
    print("RIG edges:", ", ".join(f"{a}→{b}" for a, b in sorted(rig.edges)))

    # Persist and reopen the index.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "play.index.json"
        engine.save(path)
        reopened = Engine.load(path)
        assert reopened.query('speech containing (speaker @ "ROMEO")') == romeo_speeches
        print(f"\nIndex persisted and reloaded from {path.name}: OK")


if __name__ == "__main__":
    main()
