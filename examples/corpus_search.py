"""Document-collection retrieval with the corpus layer.

Builds a small collection of plays, runs cross-document and
document-scoped queries (the "distinguished unit" of Section 5.2),
uses PAT word queries (bare patterns are match points), and shows
keyword-in-context output — the classic text-retrieval workflow on top
of the region algebra.

Run with::

    python examples/corpus_search.py
"""

import random

from repro.engine import Corpus
from repro.workloads import generate_play


def main() -> None:
    rng = random.Random(99)
    corpus = Corpus()
    for i in range(4):
        corpus.add(
            generate_play(rng, acts=2, scenes_per_act=2, speeches_per_scene=5),
            name=f"play-{i + 1}",
        )
    engine = corpus.engine()
    print(f"Indexed {len(corpus)} documents,", engine.statistics()["total"], "regions")

    # Word queries: a bare pattern is its match points.
    love_points = corpus.query('"love"')
    print(f'\n"love" occurs {len(love_points)} times across the collection')
    print("per document:", corpus.count_by_document(love_points))

    # Which documents have ROMEO speaking at all?
    romeo_docs = list(corpus.documents_matching('speech containing (speaker @ "ROMEO")'))
    print("documents with ROMEO:", ", ".join(romeo_docs))

    # Document-scoped ordering: ROMEO before JULIET in the same document.
    ordered = corpus.query('bi(document, speaker @ "ROMEO", speaker @ "JULIET")')
    print(f"ROMEO precedes JULIET in {len(ordered)} document(s)")

    # Proximity-flavoured word query: "love" occurring inside a line that
    # sits in a scene which also mentions "night".
    rich_lines = corpus.query('line containing "love" within (scene containing "night")')
    print(f'{len(rich_lines)} "love" lines in night scenes')

    # Keyword in context.
    print('\nKWIC for "night":')
    for point, snippet in engine.keyword_in_context("night", width=18)[:5]:
        print(f"  [{point.left:6d}] …{snippet}…")


if __name__ == "__main__":
    main()
