"""Quickstart: index a tagged document and query its structure.

Run with::

    python examples/quickstart.py
"""

from repro import Engine

DOCUMENT = """\
<report>
  <section>
    <title> Annual summary </title>
    <para> Revenue grew while costs fell. </para>
    <section>
      <title> Regional detail </title>
      <para> The northern region led revenue growth. </para>
    </section>
  </section>
  <section>
    <title> Outlook </title>
    <para> Costs are expected to fall further. </para>
  </section>
</report>
"""


def main() -> None:
    engine = Engine.from_tagged_text(DOCUMENT)

    print("Region names:", ", ".join(engine.region_names))
    print("Statistics:", engine.statistics())
    print()

    # Content + structure: sections whose own text mentions revenue.
    sections = engine.query('section containing (para @ "revenue")')
    print(f'{len(sections)} section(s) contain a paragraph with "revenue":')
    for region in sorted(sections, key=lambda r: r.left):
        first_line = engine.extract(region).splitlines()[1].strip()
        print("  ", first_line)

    # Word-index match points (the PAT word query).
    points = engine.match_points("costs*")
    print(f'\n"costs*" occurs at {len(points)} match points')

    # Direct inclusion distinguishes a section's own title from nested ones.
    own_titles = engine.query("title dwithin section")
    print(f"{len(own_titles)} titles sit directly in their section:")
    for region in sorted(own_titles, key=lambda r: r.left):
        print("  ", engine.extract(region))

    # Views make composite queries reusable.
    engine.define_view("RevenueSections", 'section containing (para @ "revenue")')
    nested = engine.query("section within RevenueSections")
    print(f"\n{len(nested)} section(s) nested inside revenue sections")


if __name__ == "__main__":
    main()
