"""The paper's running example: querying program source structure.

Follows Sections 2.2 and 5.1/5.2 of Consens & Milo end to end: index a
program file with the Figure 1 region structure, run the equivalent
chain queries e1/e2, let the RIG optimizer discover the rewrite, and
contrast plain inclusion with direct inclusion and both-included.

Run with::

    python examples/source_code_queries.py
"""

from repro import Engine

SOURCE = """\
program Payroll {
    var total;
    var x;
    proc ComputeTax {
        var x;
        var rate;
        proc RoundCents {
            var x;
        }
    }
    proc PrintReport {
        var y;
        var x;
    }
}
"""


def main() -> None:
    engine = Engine.from_source(SOURCE)
    print("Indexed", engine.statistics()["total"], "regions")
    print()

    # --- Section 2.2: e1 and e2 retrieve the names of all procedures. ---
    e1 = "Name within Proc_header within Proc within Program"
    e2 = "Name within Proc_header within Program"
    names_e1 = engine.query(e1)
    names_e2 = engine.query(e2)
    assert names_e1 == names_e2
    print("Procedure names:", ", ".join(sorted(engine.extract_all(names_e1))))

    plan = engine.explain(e1)
    print("\nOptimizer plan for e1:")
    print(plan)

    # --- Section 5.1: procedures *defining* variable x. ---
    anywhere = engine.query('Proc containing Proc_body containing (Var @ "x")')
    directly = engine.query('Proc dcontaining Proc_body dcontaining (Var @ "x")')
    print("\nProcs containing a definition of x anywhere below them:")
    for region in sorted(anywhere, key=lambda r: r.left):
        print("  ", engine.extract(region).split("{")[0].strip())
    print("Procs DEFINING x (direct inclusion):")
    for region in sorted(directly, key=lambda r: r.left):
        print("  ", engine.extract(region).split("{")[0].strip())

    # --- Section 5.2: bodies defining x before rate. ---
    ordered = engine.query('bi(Proc_body, Var @ "x", Var @ "rate")')
    print(f"\n{len(ordered)} procedure body defines x before rate")

    # The naive order query leaks across procedure boundaries:
    leaky = engine.query('Proc_body containing (Var @ "x" before Var @ "y")')
    strict = engine.query('bi(Proc_body, Var @ "x", Var @ "y")')
    print(
        f"x-before-y: naive query selects {len(leaky)} bodies, "
        f"both-included selects {len(strict)}"
    )


if __name__ == "__main__":
    main()
