"""Dictionary lookup: the OED-style corpus PAT was built for.

Gonnet's original PAT reports (cited by the paper) indexed the Oxford
English Dictionary.  This example builds a synthetic dictionary with
the same shape — entries, headwords, nested senses, dated quotations —
and runs the kinds of structural lookups lexicographers ask, finishing
with the optimizer stack: explain, static RIG pruning, and profiled
evaluation.

Run with::

    python examples/dictionary_lookup.py
"""

import random

from repro import Engine
from repro.algebra.profile import profile
from repro.optimize import prune_with_rig
from repro.rig import rig_from_instances
from repro.algebra import parse, to_text
from repro.workloads import generate_dictionary


def main() -> None:
    rng = random.Random(1666)
    engine = Engine.from_tagged_text(generate_dictionary(rng, entries=15))
    print("Index:", engine.statistics()["regions"])

    # Entries whose quotations cite Chaucer.
    chaucer = engine.query('entry containing (author @ "Chaucer")')
    print(f"\n{len(chaucer)} entr(ies) quote Chaucer")

    # Headwords of verb entries — structure + content.
    verbs = engine.query('headword within (entry containing (pos @ "verb"))')
    print("verb headwords:", ", ".join(
        t.replace("<headword>", "").replace("</headword>", "").strip()
        for t in sorted(engine.extract_all(verbs))
    ))

    # Sub-senses: senses nested inside senses (dictionary self-nesting).
    sub_senses = engine.query("sense within sense")
    print(f"{len(sub_senses)} sub-sense(s)")

    # Top-level senses only: direct inclusion.
    top_senses = engine.query("sense dwithin entry")
    print(f"{len(top_senses)} top-level sense(s)")

    # Entries where a quotation precedes a sub-sense (editorial order).
    ordered = engine.query("bi(entry, quotation, sense within sense)")
    print(f"{len(ordered)} entr(ies) have a quotation before a sub-sense")

    # Schema discovery + static pruning: a query the schema refutes.
    rig = rig_from_instances([engine.instance])
    impossible = parse("headword containing entry")
    pruned = prune_with_rig(impossible, rig)
    print(f"\nstatic pruning: '{to_text(impossible)}' -> '{to_text(pruned)}'")

    # Profiled evaluation.
    print("\nprofile of the Chaucer lookup:")
    print(profile('entry containing (author @ "Chaucer")', engine.instance))


if __name__ == "__main__":
    main()
