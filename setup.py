"""Setup shim: lets ``pip install -e .`` work offline.

The environment has no ``wheel`` package, so PEP 660 editable installs
(which build a wheel) fail; this shim enables the legacy
``setup.py develop`` code path.  All project metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
