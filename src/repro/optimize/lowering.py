"""Schema-driven lowering of the extended operators into the core algebra.

Propositions 5.2 and 5.4 make the extended operators expressible under
boundedness assumptions, and Section 2.2's schema graphs supply exactly
those bounds:

* a RIG bounds a name's *self-nesting* (``1`` unless the name lies on a
  cycle), enabling the Prop 5.2 layered expansion of ``⊃_d``/``⊂_d``;
* an acyclic ROG bounds the length of every ``<``-chain — the number of
  pairwise non-overlapping regions — enabling the Prop 5.4 expansion of
  ``BI``.

:func:`lower_extended_operators` rewrites whatever the schema can
justify and leaves the rest untouched (a cyclic witness means the
operator is genuinely inexpressible there — Theorems 5.1/5.3).  The
result is equivalent to the input on every instance satisfying the
given graphs, which the tests verify against the native operators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra import ast as A
from repro.algebra.expand import (
    expand_both_included,
    expand_directly_included,
    expand_directly_including,
)
from repro.rig.graph import RegionInclusionGraph
from repro.rig.rog import RegionOrderGraph

__all__ = ["LoweringResult", "lower_extended_operators"]


@dataclass
class LoweringResult:
    """The lowered expression plus what was (not) lowered and why."""

    expression: A.Expr
    lowered: list[str] = field(default_factory=list)
    skipped: list[str] = field(default_factory=list)

    @property
    def is_core(self) -> bool:
        return A.is_core(self.expression)


def _self_nesting_bound_for(
    expr: A.Expr, rig: RegionInclusionGraph
) -> int | None:
    """A self-nesting bound for an expression's result, from the RIG.

    Exact for name references; for compound expressions the bound of the
    whole RIG applies only when the RIG is acyclic (nesting depth is
    then bounded by the longest path).
    """
    if isinstance(expr, A.NameRef):
        if expr.name not in rig:
            return 1  # empty on every conforming instance
        return rig.self_nesting_bound(expr.name)
    if isinstance(expr, A.Select):
        return _self_nesting_bound_for(expr.child, rig)
    if rig.is_acyclic():
        return max(rig.longest_path_length(), 1)
    return None


def lower_extended_operators(
    expr: A.Expr,
    rig: RegionInclusionGraph,
    rog: RegionOrderGraph | None = None,
) -> LoweringResult:
    """Rewrite ``⊃_d``/``⊂_d``/``BI`` nodes into core algebra where the
    schema graphs bound them; see the module docstring."""
    result = LoweringResult(expression=expr)
    all_names = tuple(rig.names)

    def visit(e: A.Expr) -> A.Expr:
        for i, child in enumerate(A.children(e)):
            new = visit(child)
            if new != child:
                e = A.replace_child(e, i, new)
        if isinstance(e, A.DirectlyIncluding):
            bound = _self_nesting_bound_for(e.left, rig)
            if bound is None:
                result.skipped.append(
                    "dcontaining: left side has unbounded self-nesting"
                )
                return e
            result.lowered.append(f"dcontaining via Prop 5.2 (bound {bound})")
            return expand_directly_including(e.left, e.right, all_names, bound)
        if isinstance(e, A.DirectlyIncluded):
            bound = _self_nesting_bound_for(e.right, rig)
            if bound is None:
                result.skipped.append(
                    "dwithin: right side has unbounded self-nesting"
                )
                return e
            result.lowered.append(f"dwithin via Prop 5.2 (bound {bound})")
            return expand_directly_included(e.left, e.right, all_names, bound)
        if isinstance(e, A.BothIncluded):
            if rog is None or not rog.is_acyclic():
                result.skipped.append(
                    "bi: no acyclic ROG to bound non-overlapping regions"
                )
                return e
            width = max(rog.longest_path_length(), 1)
            result.lowered.append(f"bi via Prop 5.4 (width {width})")
            return expand_both_included(e.source, e.first, e.second, width)
        return e

    result.expression = visit(expr)
    return result
