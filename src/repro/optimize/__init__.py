"""Query optimization: rewrites, equivalence testing, cost-based search."""

from repro.optimize.equivalence import EquivalenceVerdict, check_equivalence
from repro.optimize.lowering import LoweringResult, lower_extended_operators
from repro.optimize.optimizer import OptimizationResult, optimize
from repro.optimize.rewrite import (
    simplify,
    simplify_chains,
    simplify_deep,
    simplify_inclusion_chain,
)
from repro.optimize.static import NameBounds, infer_name_bounds, prune_with_rig

__all__ = [
    "simplify",
    "simplify_deep",
    "simplify_chains",
    "simplify_inclusion_chain",
    "check_equivalence",
    "EquivalenceVerdict",
    "optimize",
    "OptimizationResult",
    "LoweringResult",
    "lower_extended_operators",
    "NameBounds",
    "infer_name_bounds",
    "prune_with_rig",
]
