"""The query optimizer: cheapest equivalent expression.

Section 3's recipe: with a price function where every operation adds
cost, optimize ``e`` by searching the (finite) space of cheaper
expressions for an equivalent one.  The search is expensive in general —
emptiness/equivalence testing is Co-NP-hard (Theorem 3.5) — so the
optimizer is layered:

1. **Polynomial pass** — instance-independent identities plus the
   RIG-aware inclusion-chain simplification (the tractable class of
   Section 5.1 / [CM94]).
2. **Exhaustive pass** (optional, bounded) — enumerate candidate
   expressions cheaper than the current best over the same names and
   patterns, and keep the cheapest one that passes the layered
   equivalence test.  Exponential in the bound; this is the knob the
   E4 benchmark turns to exhibit the hardness wall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING

from repro.algebra import ast as A
from repro.algebra.cost import CostModel, operation_count
from repro.algebra.enumerate import enumerate_expressions
from repro.obs.trace import maybe_span
from repro.optimize.equivalence import check_equivalence
from repro.optimize.rewrite import simplify_chains, simplify_deep
from repro.rig.graph import RegionInclusionGraph
from repro.rig.rog import RegionOrderGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.trace import Tracer

__all__ = ["OptimizationResult", "optimize"]


@dataclass(frozen=True)
class OptimizationResult:
    """The optimizer's output, with provenance for each improvement."""

    expression: A.Expr
    original_cost: float
    optimized_cost: float
    steps: tuple[str, ...] = field(default_factory=tuple)

    @property
    def improved(self) -> bool:
        return self.optimized_cost < self.original_cost


def optimize(
    expr: A.Expr,
    rig: RegionInclusionGraph | None = None,
    cost_model: CostModel | None = None,
    exhaustive: bool = False,
    max_candidate_ops: int | None = None,
    equivalence_nodes: int = 4,
    seed: int = 0,
    rog: "RegionOrderGraph | None" = None,
    tracer: "Tracer | None" = None,
    metrics: "MetricsRegistry | None" = None,
) -> OptimizationResult:
    """Optimize ``expr``; see the module docstring for the passes.

    With ``exhaustive`` the bounded search runs over expressions of at
    most ``max_candidate_ops`` operations (default: one less than the
    current best) and equivalence is certified by the layered test of
    :mod:`repro.optimize.equivalence` w.r.t. ``rig``.

    A ``tracer`` gets one span per rewrite pass (``rule.identities``,
    ``rule.chains``, ``rule.prune``, ``rule.exhaustive``) under an
    ``optimize`` root; a ``metrics`` registry records the call into
    ``optimize_seconds`` and counts applied rewrites in
    ``optimizer_rule_fires_total{rule=...}``.  Both default to absent
    and cost nothing then.
    """
    price = cost_model.price if cost_model is not None else operation_count
    original_cost = price(expr)
    steps: list[str] = []
    started = perf_counter()

    def fired(rule: str) -> None:
        steps.append(rule)
        if metrics is not None:
            from repro.obs.metrics import OPTIMIZER_RULE_FIRES_TOTAL

            metrics.counter(OPTIMIZER_RULE_FIRES_TOTAL).inc(rule=rule)

    with maybe_span(tracer, "optimize", original_cost=original_cost) as root:
        with maybe_span(tracer, "rule.identities"):
            best = simplify_deep(expr)
        if best != expr:
            fired("algebraic identities")
        if rig is not None:
            with maybe_span(tracer, "rule.chains"):
                chained = simplify_chains(best, rig)
            if chained != best:
                fired("RIG chain simplification")
                best = chained
            from repro.optimize.static import prune_with_rig

            with maybe_span(tracer, "rule.prune"):
                pruned = prune_with_rig(best, rig, rog)
            if pruned != best:
                fired("RIG static pruning")
                best = pruned

        if exhaustive:
            names = sorted(A.region_names(best)) or ["R"]
            patterns = sorted(A.pattern_names(best))
            budget = (
                max_candidate_ops
                if max_candidate_ops is not None
                else max(A.size(best) - 1, 0)
            )
            with maybe_span(tracer, "rule.exhaustive", budget=budget):
                for candidate in enumerate_expressions(names, budget, patterns):
                    if price(candidate) >= price(best):
                        continue
                    verdict = check_equivalence(
                        best,
                        candidate,
                        rig=rig,
                        max_nodes=equivalence_nodes,
                        seed=seed,
                    )
                    if verdict.equivalent:
                        best = candidate
                        fired("exhaustive search")

        optimized_cost = price(best)
        if root is not None:
            root.set("optimized_cost", optimized_cost)
            root.set("rewrites", len(steps))
    if metrics is not None:
        from repro.obs.metrics import OPTIMIZE_SECONDS

        metrics.histogram(OPTIMIZE_SECONDS).observe(perf_counter() - started)

    return OptimizationResult(
        expression=best,
        original_cost=original_cost,
        optimized_cost=optimized_cost,
        steps=tuple(steps),
    )
