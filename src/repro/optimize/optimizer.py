"""The query optimizer: cheapest equivalent expression.

Section 3's recipe: with a price function where every operation adds
cost, optimize ``e`` by searching the (finite) space of cheaper
expressions for an equivalent one.  The search is expensive in general —
emptiness/equivalence testing is Co-NP-hard (Theorem 3.5) — so the
optimizer is layered:

1. **Polynomial pass** — instance-independent identities plus the
   RIG-aware inclusion-chain simplification (the tractable class of
   Section 5.1 / [CM94]).
2. **Exhaustive pass** (optional, bounded) — enumerate candidate
   expressions cheaper than the current best over the same names and
   patterns, and keep the cheapest one that passes the layered
   equivalence test.  Exponential in the bound; this is the knob the
   E4 benchmark turns to exhibit the hardness wall.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra import ast as A
from repro.algebra.cost import CostModel, operation_count
from repro.algebra.enumerate import enumerate_expressions
from repro.optimize.equivalence import check_equivalence
from repro.optimize.rewrite import simplify_chains, simplify_deep
from repro.rig.graph import RegionInclusionGraph
from repro.rig.rog import RegionOrderGraph

__all__ = ["OptimizationResult", "optimize"]


@dataclass(frozen=True)
class OptimizationResult:
    """The optimizer's output, with provenance for each improvement."""

    expression: A.Expr
    original_cost: float
    optimized_cost: float
    steps: tuple[str, ...] = field(default_factory=tuple)

    @property
    def improved(self) -> bool:
        return self.optimized_cost < self.original_cost


def optimize(
    expr: A.Expr,
    rig: RegionInclusionGraph | None = None,
    cost_model: CostModel | None = None,
    exhaustive: bool = False,
    max_candidate_ops: int | None = None,
    equivalence_nodes: int = 4,
    seed: int = 0,
    rog: "RegionOrderGraph | None" = None,
) -> OptimizationResult:
    """Optimize ``expr``; see the module docstring for the passes.

    With ``exhaustive`` the bounded search runs over expressions of at
    most ``max_candidate_ops`` operations (default: one less than the
    current best) and equivalence is certified by the layered test of
    :mod:`repro.optimize.equivalence` w.r.t. ``rig``.
    """
    price = cost_model.price if cost_model is not None else operation_count
    original_cost = price(expr)
    steps: list[str] = []

    best = simplify_deep(expr)
    if best != expr:
        steps.append("algebraic identities")
    if rig is not None:
        chained = simplify_chains(best, rig)
        if chained != best:
            steps.append("RIG chain simplification")
            best = chained
        from repro.optimize.static import prune_with_rig

        pruned = prune_with_rig(best, rig, rog)
        if pruned != best:
            steps.append("RIG static pruning")
            best = pruned

    if exhaustive:
        names = sorted(A.region_names(best)) or ["R"]
        patterns = sorted(A.pattern_names(best))
        budget = (
            max_candidate_ops
            if max_candidate_ops is not None
            else max(A.size(best) - 1, 0)
        )
        for candidate in enumerate_expressions(names, budget, patterns):
            if price(candidate) >= price(best):
                continue
            verdict = check_equivalence(
                best,
                candidate,
                rig=rig,
                max_nodes=equivalence_nodes,
                seed=seed,
            )
            if verdict.equivalent:
                best = candidate
                steps.append("exhaustive search")

    return OptimizationResult(
        expression=best,
        original_cost=original_cost,
        optimized_cost=price(best),
        steps=tuple(steps),
    )
