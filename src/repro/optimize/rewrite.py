"""Rewrite rules and RIG-aware chain simplification.

Two layers of rewriting:

* :func:`simplify` — algebraic identities valid on every instance
  (idempotence, annihilation, empty-set propagation).  These never need
  a RIG.
* :func:`simplify_inclusion_chain` / :func:`simplify_chains` — the
  Section 2.2 optimization: inside a right-grouped inclusion chain
  ``R₁ ⊂ (R₂ ⊂ (… ⊂ Rₙ))`` a middle name ``R_i`` may be dropped when,
  w.r.t. the RIG, every nesting chain from ``R_{i+1}`` down to
  ``R_{i-1}`` must pass through an ``R_i`` region:

  - every RIG walk ``R_{i+1} → R_{i-1}`` of length ≥ 2 visits ``R_i``,
    and
  - there is no direct edge ``R_{i+1} → R_{i-1}`` (which would permit a
    chain with nothing in between).

  Under those conditions the instance-forest path between the two
  witnesses must contain an ``R_i`` region, so the dropped test is
  implied; conversely the longer chain trivially implies the shorter.
  This is the polynomial-time optimization of *inclusion expressions*
  the paper attributes to [CM94] — the worked example is
  ``Name ⊂ Proc_header ⊂ Proc ⊂ Program ≡ Name ⊂ Proc_header ⊂
  Program`` under the Figure 1 RIG.

  ``⊃``-chains are handled symmetrically (walks run from the outer
  name down to the inner one).
"""

from __future__ import annotations

from repro.algebra import ast as A
from repro.rig.graph import RegionInclusionGraph

__all__ = ["simplify", "simplify_deep", "simplify_inclusion_chain", "simplify_chains"]


def simplify(expr: A.Expr) -> A.Expr:
    """Apply instance-independent identities bottom-up, to fixpoint."""
    while True:
        rewritten = _simplify_once(expr)
        if rewritten == expr:
            return expr
        expr = rewritten


def _simplify_once(expr: A.Expr) -> A.Expr:
    kids = A.children(expr)
    if kids:
        new_kids = tuple(_simplify_once(k) for k in kids)
        if new_kids != kids:
            for i, kid in enumerate(new_kids):
                expr = A.replace_child(expr, i, kid)
    empty = A.Empty()
    if isinstance(expr, A.Union):
        if expr.left == expr.right:
            return expr.left
        if expr.left == empty:
            return expr.right
        if expr.right == empty:
            return expr.left
    elif isinstance(expr, A.Intersection):
        if expr.left == expr.right:
            return expr.left
        if empty in (expr.left, expr.right):
            return empty
    elif isinstance(expr, A.Difference):
        if expr.left == expr.right or expr.left == empty:
            return empty
        if expr.right == empty:
            return expr.left
    elif isinstance(expr, A.BinaryOp):  # the structural semi-joins
        if empty in (expr.left, expr.right):
            return empty
    elif isinstance(expr, A.Select):
        if expr.child == empty:
            return empty
        if isinstance(expr.child, A.Select) and expr.child.pattern == expr.pattern:
            return expr.child
    elif isinstance(expr, A.BothIncluded):
        if empty in (expr.source, expr.first, expr.second):
            return empty
    return expr


# ----------------------------------------------------------------------
# The extended rule library (cost-reducing identities).
# ----------------------------------------------------------------------

_SEMI_JOINS = (
    A.Including,
    A.IncludedIn,
    A.Preceding,
    A.Following,
    A.DirectlyIncluding,
    A.DirectlyIncluded,
)


def _apply_rules(expr: A.Expr) -> A.Expr:
    """One bottom-up pass of the cost-reducing identities.

    Every rule is an equivalence on *all* instances (soundness is swept
    in the test suite against enumerated probe instances):

    * selection pushdown — ``σ_p`` commutes with the output side of
      every operator: ``σ_p(e₁ − e₂) = σ_p(e₁) − e₂``,
      ``σ_p(e₁ ∘ e₂) = σ_p(e₁) ∘ e₂`` for every semi-join ∘, and
      ``σ_p(BI(r, s, t)) = BI(σ_p(r), s, t)`` — the filter runs on the
      smaller intermediate;
    * semi-join idempotence — ``(e ∘ S) ∘ S = e ∘ S``;
    * difference-of-difference — ``e − (e − f) = e ∩ f``;
    * boolean absorption — ``e ∩ (e ∪ f) = e`` and ``e ∪ (e ∩ f) = e``
      (either operand order).
    """
    kids = A.children(expr)
    if kids:
        new_kids = tuple(_apply_rules(k) for k in kids)
        for i, kid in enumerate(new_kids):
            if kid != kids[i]:
                expr = A.replace_child(expr, i, kid)
    if isinstance(expr, A.Select):
        child = expr.child
        if isinstance(child, (A.Difference, A.Intersection)):
            return type(child)(A.Select(expr.pattern, child.left), child.right)
        if isinstance(child, _SEMI_JOINS):
            return type(child)(A.Select(expr.pattern, child.left), child.right)
        if isinstance(child, A.BothIncluded):
            return A.BothIncluded(
                A.Select(expr.pattern, child.source), child.first, child.second
            )
    if isinstance(expr, _SEMI_JOINS):
        left = expr.left
        if isinstance(left, type(expr)) and left.right == expr.right:
            return left
    if isinstance(expr, A.Difference):
        right = expr.right
        if isinstance(right, A.Difference) and right.left == expr.left:
            return A.Intersection(expr.left, right.right)
    if isinstance(expr, A.Intersection):
        for a, b in ((expr.left, expr.right), (expr.right, expr.left)):
            if isinstance(b, A.Union) and a in (b.left, b.right):
                return a
    if isinstance(expr, A.Union):
        for a, b in ((expr.left, expr.right), (expr.right, expr.left)):
            if isinstance(b, A.Intersection) and a in (b.left, b.right):
                return a
    return expr


def simplify_deep(expr: A.Expr) -> A.Expr:
    """:func:`simplify` plus the extended rule library, to fixpoint.

    The cheap identities run first so that e.g. ``σ_p(e ∩ e)`` collapses
    to ``σ_p(e)`` before selection pushdown would split it.
    """
    while True:
        rewritten = simplify(expr)
        rewritten = simplify(_apply_rules(rewritten))
        if rewritten == expr:
            return expr
        expr = rewritten


def _chain_names(expr: A.Expr, op: type[A.BinaryOp]) -> list[str] | None:
    """Decompose a right-grouped chain of name references, if it is one."""
    names: list[str] = []
    node = expr
    while isinstance(node, op) and isinstance(node.left, A.NameRef):
        names.append(node.left.name)
        node = node.right
    if isinstance(node, A.NameRef) and len(names) >= 1:
        names.append(node.name)
        return names
    return None


def _droppable(rig: RegionInclusionGraph, upper: str, middle: str, lower: str) -> bool:
    """May the test for ``middle`` be dropped between ``upper ⊃ … ⊃ lower``?

    Requires every RIG walk from ``upper`` to ``lower`` with non-empty
    interior to pass through ``middle``, and no direct edge — otherwise
    an instance could nest ``lower`` under ``upper`` with no ``middle``.
    """
    if upper not in rig or lower not in rig or middle not in rig:
        return False
    if rig.has_edge(upper, lower):
        return False
    return not rig.paths_avoiding(upper, lower, {middle})


def simplify_inclusion_chain(
    names: list[str], rig: RegionInclusionGraph, op: type[A.BinaryOp] = A.IncludedIn
) -> list[str]:
    """Drop every droppable middle name from an inclusion chain.

    ``names`` is the chain in query order (``[R₁, …, Rₙ]``); for ``⊂``
    chains nesting runs upward (``R_{i+1}`` contains ``R_i``), for ``⊃``
    chains downward.  Greedy left-to-right elimination to fixpoint; each
    test is a reachability check, so the whole pass is polynomial — the
    tractable optimization class of Section 5.1.
    """
    chain = list(names)
    changed = True
    while changed:
        changed = False
        # Try outer names first: on the Figure 1 example this drops Proc
        # and reproduces the paper's e2 exactly.
        for i in range(len(chain) - 2, 0, -1):
            if op is A.IncludedIn:
                upper, middle, lower = chain[i + 1], chain[i], chain[i - 1]
            else:
                upper, middle, lower = chain[i - 1], chain[i], chain[i + 1]
            if _droppable(rig, upper, middle, lower):
                del chain[i]
                changed = True
                break
    return chain


def simplify_chains(expr: A.Expr, rig: RegionInclusionGraph) -> A.Expr:
    """Rewrite every maximal inclusion chain in ``expr`` w.r.t. ``rig``."""
    for op in (A.IncludedIn, A.Including):
        names = _chain_names(expr, op)
        if names is not None and len(names) >= 3:
            shorter = simplify_inclusion_chain(names, rig, op)
            if shorter != names:
                return A.including_chain(shorter, op)
            return expr
    kids = A.children(expr)
    for i, kid in enumerate(kids):
        new_kid = simplify_chains(kid, rig)
        if new_kid != kid:
            expr = A.replace_child(expr, i, new_kid)
    return expr
