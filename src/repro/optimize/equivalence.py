"""Expression equivalence testing (Definition 2.5 / Theorem 3.4).

Two expressions are equivalent (w.r.t. a RIG ``G``) when they agree on
every instance (satisfying ``G``).  The paper's test —
``(e₁ − e₂) ∪ (e₂ − e₁)`` empty for all instances — is realized here as
a layered procedure:

1. a fast randomized refuter over larger random instances (a found
   witness is definitive: *not* equivalent);
2. exhaustive bounded-model search (Theorem 3.4's decision procedure,
   with the bounded-model substitution documented in DESIGN.md).

``EquivalenceVerdict`` records which layer decided and with what
confidence: ``equivalent`` is exact up to the bound; Theorem 3.5 is why
no cheap exact test exists.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Literal

from repro.algebra import ast as A
from repro.core.instance import Instance
from repro.fmft.satisfiability import (
    find_inequivalence_witness,
    random_inequivalence_witness,
)
from repro.rig.graph import RegionInclusionGraph

__all__ = ["EquivalenceVerdict", "check_equivalence"]


@dataclass(frozen=True)
class EquivalenceVerdict:
    """Outcome of an equivalence check.

    ``equivalent`` is ``False`` exactly when ``witness`` is an instance
    on which the expressions disagree; otherwise the expressions agreed
    on every instance searched, and ``method`` says how far the search
    went.
    """

    equivalent: bool
    method: Literal["randomized", "bounded", "exhausted"]
    witness: Instance | None = None


def check_equivalence(
    first: A.Expr,
    second: A.Expr,
    rig: RegionInclusionGraph | None = None,
    max_nodes: int = 4,
    random_trials: int = 100,
    seed: int = 0,
) -> EquivalenceVerdict:
    """Layered equivalence test; see the module docstring."""
    if first == second:
        return EquivalenceVerdict(True, "exhausted")
    rng = random.Random(seed)
    if rig is None:
        witness = random_inequivalence_witness(
            first, second, rng, trials=random_trials
        )
        if witness is not None:
            return EquivalenceVerdict(False, "randomized", witness)
    else:
        witness = _random_rig_witness(first, second, rig, rng, random_trials)
        if witness is not None:
            return EquivalenceVerdict(False, "randomized", witness)
    witness = find_inequivalence_witness(
        first, second, max_nodes=max_nodes, rig=rig
    )
    if witness is not None:
        return EquivalenceVerdict(False, "bounded", witness)
    return EquivalenceVerdict(True, "exhausted")


def _random_rig_witness(
    first: A.Expr,
    second: A.Expr,
    rig: RegionInclusionGraph,
    rng: random.Random,
    trials: int,
) -> Instance | None:
    from repro.algebra.evaluator import evaluate
    from repro.workloads.generators import rig_constrained_instance

    roots = [
        name for name in rig.names if not rig.predecessors(name)
    ] or list(rig.names)
    patterns = sorted(A.pattern_names(first) | A.pattern_names(second))
    for _ in range(trials):
        instance = rig_constrained_instance(
            rng, rig, roots=roots, patterns=patterns
        )
        if evaluate(first, instance) != evaluate(second, instance):
            return instance
    return None
