"""Static analysis of expressions against a RIG (and optionally a ROG).

Theorem 3.6 shows emptiness is decidable *relative to a RIG*; full
decision is Co-NP-hard (Theorem 3.5), but a sound polynomial
approximation goes a long way in an optimizer.  This module infers, for
every sub-expression, an upper bound on the region *names* its result
can draw from on any instance satisfying the schema graphs:

* ``R_i`` can only produce ``R_i`` regions;
* the set operations combine name bounds set-theoretically (a region
  carries exactly one name, so ``∩`` intersects bounds);
* ``e₁ ⊃ e₂`` keeps only names that can reach a right-side name through
  one or more RIG edges (nesting chains are RIG walks); ``⊂`` uses the
  reverse reachability; the direct operators use single edges;
* with a ROG, ``<``/``>`` keep only names that can reach (be reached
  from) a right-side name through ROG walks — possible precedence is
  exactly ROG reachability;
* ``BI`` needs both witnesses reachable below the source name and, with
  a ROG, a possible precedence between them.

An empty bound proves the sub-expression empty on every conforming
instance; :func:`prune_with_rig` rewrites such sub-expressions to
``empty`` and re-simplifies.  Soundness (never changing results on
instances satisfying the graphs) is property-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.algebra import ast as A
from repro.optimize.rewrite import simplify
from repro.rig.graph import RegionInclusionGraph
from repro.rig.rog import RegionOrderGraph

__all__ = ["NameBounds", "infer_name_bounds", "prune_with_rig"]


@dataclass(frozen=True)
class NameBounds:
    """An upper bound on the names an expression's result can use."""

    names: frozenset[str]

    @property
    def is_empty(self) -> bool:
        return not self.names


class _Reachability:
    """Transitive one-or-more-edge reachability over a schema graph."""

    def __init__(self, graph: nx.DiGraph):
        self._down: dict[str, frozenset[str]] = {
            node: frozenset(nx.descendants(graph, node)) for node in graph.nodes
        }
        self._graph = graph

    def can_reach(self, source: str, target: str) -> bool:
        return target in self._down.get(source, frozenset())

    def has_edge(self, source: str, target: str) -> bool:
        return self._graph.has_edge(source, target)


def infer_name_bounds(
    expr: A.Expr,
    rig: RegionInclusionGraph,
    rog: RegionOrderGraph | None = None,
) -> NameBounds:
    """The name bound of ``expr`` on instances satisfying the graphs.

    A name absent from the RIG has an empty region set on every
    conforming instance (Definition 2.4 as implemented by
    :meth:`RegionInclusionGraph.satisfied_by`), so it survives as a
    plain leaf bound but can never witness a structural relationship.
    """
    inclusion = _Reachability(rig.as_networkx())
    order = _Reachability(rog.as_networkx()) if rog is not None else None

    def visit(e: A.Expr) -> frozenset[str]:
        if isinstance(e, A.NameRef):
            return frozenset({e.name})
        if isinstance(e, A.Empty):
            return frozenset()
        if isinstance(e, A.Select):
            return visit(e.child)
        if isinstance(e, A.Union):
            return visit(e.left) | visit(e.right)
        if isinstance(e, A.Intersection):
            return visit(e.left) & visit(e.right)
        if isinstance(e, A.Difference):
            return visit(e.left)
        if isinstance(e, A.Including):
            left, right = visit(e.left), visit(e.right)
            return frozenset(
                a for a in left if any(inclusion.can_reach(a, b) for b in right)
            )
        if isinstance(e, A.IncludedIn):
            left, right = visit(e.left), visit(e.right)
            return frozenset(
                a for a in left if any(inclusion.can_reach(b, a) for b in right)
            )
        if isinstance(e, A.DirectlyIncluding):
            left, right = visit(e.left), visit(e.right)
            return frozenset(
                a for a in left if any(inclusion.has_edge(a, b) for b in right)
            )
        if isinstance(e, A.DirectlyIncluded):
            left, right = visit(e.left), visit(e.right)
            return frozenset(
                a for a in left if any(inclusion.has_edge(b, a) for b in right)
            )
        if isinstance(e, A.Preceding):
            left, right = visit(e.left), visit(e.right)
            if not right:
                return frozenset()
            if order is None:
                return left
            return frozenset(
                a for a in left if any(order.can_reach(a, b) for b in right)
            )
        if isinstance(e, A.Following):
            left, right = visit(e.left), visit(e.right)
            if not right:
                return frozenset()
            if order is None:
                return left
            return frozenset(
                a for a in left if any(order.can_reach(b, a) for b in right)
            )
        if isinstance(e, A.BothIncluded):
            source = visit(e.source)
            first, second = visit(e.first), visit(e.second)
            out = set()
            for a in source:
                below_first = [b for b in first if inclusion.can_reach(a, b)]
                below_second = [c for c in second if inclusion.can_reach(a, c)]
                if not below_first or not below_second:
                    continue
                if order is not None and not any(
                    order.can_reach(b, c)
                    for b in below_first
                    for c in below_second
                ):
                    continue
                out.add(a)
            return frozenset(out)
        raise TypeError(f"cannot analyze {type(e).__name__}")

    return NameBounds(visit(expr))


def prune_with_rig(
    expr: A.Expr,
    rig: RegionInclusionGraph,
    rog: RegionOrderGraph | None = None,
) -> A.Expr:
    """Replace provably-empty sub-expressions with ``empty``.

    A polynomial, RIG-relative fragment of the Theorem 3.6 emptiness
    test; the result is equivalent to the input on every instance
    satisfying the graphs.
    """

    def visit(e: A.Expr) -> A.Expr:
        if infer_name_bounds(e, rig, rog).is_empty:
            return A.Empty()
        out = e
        for i, child in enumerate(A.children(e)):
            new = visit(child)
            if new != child:
                out = A.replace_child(out, i, new)
        return out

    return simplify(visit(expr))
