"""Core substrate: regions, region sets, instances, forests, word indexes.

These are the data types everything else in the library builds on; see
Section 2 of the paper for the definitions they implement.
"""

from repro.core.forest import Forest
from repro.core.instance import Instance
from repro.core.patterns import (
    GlobPattern,
    LiteralPattern,
    Pattern,
    PrefixPattern,
    parse_pattern,
)
from repro.core.region import Region, bounding_region, span_of
from repro.core.regionset import RegionSet
from repro.core.wordindex import (
    LabelWordIndex,
    TextWordIndex,
    Token,
    WordIndex,
    tokenize,
)

__all__ = [
    "Region",
    "RegionSet",
    "Instance",
    "Forest",
    "WordIndex",
    "TextWordIndex",
    "LabelWordIndex",
    "Token",
    "tokenize",
    "Pattern",
    "LiteralPattern",
    "PrefixPattern",
    "GlobPattern",
    "parse_pattern",
    "span_of",
    "bounding_region",
]
