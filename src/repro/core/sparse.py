"""Sparse-table range-minimum queries.

Built in ``O(n log n)``, answers ``min(values[i:j])`` in ``O(1)``.  The
indexed evaluator uses this for the ``both-included`` operator, whose
containment windows are two-sided and therefore not answerable with the
prefix/suffix extreme tables that suffice for ``⊃``/``⊂``.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["RangeMin"]


class RangeMin:
    """Immutable range-minimum structure over a sequence of integers."""

    __slots__ = ("_table", "_length")

    def __init__(self, values: Sequence[int]):
        self._length = len(values)
        table: list[list[int]] = [list(values)]
        width = 1
        while 2 * width <= self._length:
            previous = table[-1]
            row = [
                min(previous[i], previous[i + width])
                for i in range(self._length - 2 * width + 1)
            ]
            table.append(row)
            width *= 2
        self._table = table

    def query(self, lo: int, hi: int) -> int | None:
        """``min(values[lo:hi])`` or ``None`` when the range is empty."""
        lo = max(lo, 0)
        hi = min(hi, self._length)
        if lo >= hi:
            return None
        span = hi - lo
        level = span.bit_length() - 1
        width = 1 << level
        row = self._table[level]
        return min(row[lo], row[hi - width])
