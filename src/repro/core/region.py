"""Text regions and the structural predicates of the region algebra.

A *region* is a substring of the indexed text, identified by the positions
of its two endpoints (paper, Section 2.1).  Positions are integers;
endpoints are inclusive, so the region ``Region(3, 7)`` covers text
positions 3 through 7.  A *match point* (an entry of the word index) is a
degenerate region whose endpoints coincide.

The predicates defined here follow Definition 2.3 of the paper exactly:

* ``r.includes(s)`` — the paper's ``r ⊃ s`` — strict inclusion:
  ``(left(r) < left(s) and right(r) >= right(s))`` or
  ``(left(r) <= left(s) and right(r) > right(s))``.
* ``r.precedes(s)`` — the paper's ``r < s`` — ``right(r) < left(s)``.

These are the only two primitive relations the algebra can observe; the
exact endpoint positions are never exposed by any operator, which is what
makes the forest representation of Section 3 faithful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import InvalidRegionError

__all__ = ["Region", "span_of", "bounding_region"]


@dataclass(frozen=True, slots=True, order=True)
class Region:
    """A text region ``[left, right]`` with inclusive integer endpoints.

    Regions are immutable and totally ordered by ``(left, right)``; this is
    the canonical storage order used by :class:`repro.core.RegionSet`.
    """

    left: int
    right: int

    def __post_init__(self) -> None:
        if not isinstance(self.left, int) or not isinstance(self.right, int):
            raise InvalidRegionError(
                f"region endpoints must be integers, got ({self.left!r}, {self.right!r})"
            )
        if self.left > self.right:
            raise InvalidRegionError(
                f"region left endpoint {self.left} exceeds right endpoint {self.right}"
            )

    # ------------------------------------------------------------------
    # Primitive structural predicates (Definition 2.3).
    # ------------------------------------------------------------------

    def includes(self, other: "Region") -> bool:
        """``self ⊃ other``: strict inclusion per the paper.

        Containment where at least one endpoint is strictly inside.  Equal
        regions do *not* include each other.
        """
        return (self.left < other.left and self.right >= other.right) or (
            self.left <= other.left and self.right > other.right
        )

    def included_in(self, other: "Region") -> bool:
        """``self ⊂ other``: the converse of :meth:`includes`."""
        return other.includes(self)

    def precedes(self, other: "Region") -> bool:
        """``self < other``: this region ends before the other begins."""
        return self.right < other.left

    def follows(self, other: "Region") -> bool:
        """``self > other``: the converse of :meth:`precedes`."""
        return other.right < self.left

    # ------------------------------------------------------------------
    # Derived relations (useful for validation and the forest view).
    # ------------------------------------------------------------------

    def disjoint_from(self, other: "Region") -> bool:
        """True when the two regions share no position."""
        return self.right < other.left or other.right < self.left

    def overlaps(self, other: "Region") -> bool:
        """True when the regions share a position but neither includes the
        other and they are not equal.  Hierarchical instances never contain
        overlapping regions (Section 2.1)."""
        if self == other:
            return False
        if self.disjoint_from(other):
            return False
        return not (self.includes(other) or other.includes(self))

    def contains_point(self, position: int) -> bool:
        """True when ``position`` lies inside this region (inclusive)."""
        return self.left <= position <= self.right

    def hierarchy_compatible(self, other: "Region") -> bool:
        """True when the pair may coexist in a hierarchical instance:
        disjoint, or one strictly includes the other."""
        if self == other:
            return False
        return (
            self.disjoint_from(other)
            or self.includes(other)
            or other.includes(self)
        )

    # ------------------------------------------------------------------
    # Convenience.
    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """Number of positions covered (inclusive endpoints)."""
        return self.right - self.left + 1

    def is_match_point(self) -> bool:
        """True for degenerate regions marking a single position."""
        return self.left == self.right

    def shifted(self, offset: int) -> "Region":
        """A copy translated by ``offset`` positions."""
        return Region(self.left + offset, self.right + offset)

    def as_tuple(self) -> tuple[int, int]:
        return (self.left, self.right)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.left},{self.right}]"


def span_of(regions: Iterable[Region]) -> Region | None:
    """The tightest region covering every region in ``regions``.

    Returns ``None`` for an empty iterable.
    """
    left: int | None = None
    right: int | None = None
    for r in regions:
        left = r.left if left is None else min(left, r.left)
        right = r.right if right is None else max(right, r.right)
    if left is None or right is None:
        return None
    return Region(left, right)


def bounding_region(regions: Iterable[Region], pad: int = 1) -> Region | None:
    """A region strictly including every region in ``regions``.

    Useful when synthesizing documents: the returned region extends ``pad``
    positions beyond the span on both sides, so it *strictly* includes each
    input region.  Returns ``None`` for an empty iterable.
    """
    span = span_of(regions)
    if span is None:
        return None
    if pad < 1:
        raise InvalidRegionError("bounding_region pad must be >= 1")
    return Region(span.left - pad, span.right + pad)
