"""The direct-inclusion forest of a hierarchical region collection.

Section 3 of the paper observes that a hierarchical instance, viewed
through the relations the algebra can test (inclusion and precedence),
is an ordered forest: *direct inclusion* (no region strictly in between)
is the parent relation, and precedence is the sibling/document order.
This module materializes that forest once per instance and answers the
structural questions the rest of the library needs:

* ``parent_of`` / ``children_of`` / ``ancestors_of`` / ``subtree_of``,
* the *direct* operators ``⊃_d``/``⊂_d`` of Section 5.1 (a region
  directly includes another iff it is its parent here),
* the layer decomposition used by the Section 6 while-programs,
* pre-order numbering, which later becomes the ``{0,1}*`` embedding of
  the FMFT models (Definition 3.2).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.core.region import Region
from repro.core.regionset import RegionSet

__all__ = ["Forest"]


class Forest:
    """An ordered forest over regions, built with a single stack sweep."""

    __slots__ = ("_order", "_parent", "_children", "_index", "_depth")

    def __init__(
        self,
        order: tuple[Region, ...],
        parent: list[int | None],
        children: list[list[int]],
    ):
        self._order = order
        self._parent = parent
        self._children = children
        self._index = {region: i for i, region in enumerate(order)}
        self._depth: list[int] = [0] * len(order)
        for i, p in enumerate(parent):
            self._depth[i] = 0 if p is None else self._depth[p] + 1

    @classmethod
    def from_regions(cls, regions: Iterable[Region]) -> "Forest":
        """Build the forest for a hierarchical collection of regions.

        Sorting by ``(left, -right)`` visits regions in pre-order: every
        region appears after all its ancestors, so a stack of currently
        open regions yields each region's parent directly.
        """
        order = tuple(sorted(regions, key=lambda r: (r.left, -r.right)))
        parent: list[int | None] = [None] * len(order)
        children: list[list[int]] = [[] for _ in order]
        stack: list[int] = []
        for i, region in enumerate(order):
            while stack and not order[stack[-1]].includes(region):
                stack.pop()
            if stack:
                parent[i] = stack[-1]
                children[stack[-1]].append(i)
            stack.append(i)
        return cls(order, parent, children)

    def appended(self, regions: Iterable[Region]) -> "Forest":
        """A new forest with ``regions`` appended *after* every existing
        region (the caller guarantees every new left endpoint lies past
        every existing right endpoint, as :meth:`Instance.appended`
        validates).

        No new region can attach below an existing one, so the old
        ``parent``/``children``/``depth`` entries are reused verbatim
        (the shared child lists are never mutated — appended regions
        only ever parent other appended regions) and the stack sweep
        runs over the new suffix alone.  This keeps the live-ingestion
        commit path's forest warm-up proportional to the new segment
        instead of the whole corpus.
        """
        new_order = sorted(regions, key=lambda r: (r.left, -r.right))
        if not new_order:
            return self
        base = len(self._order)
        order = self._order + tuple(new_order)
        parent = list(self._parent)
        children = list(self._children)
        index = dict(self._index)
        depth = list(self._depth)
        stack: list[int] = []
        for offset, region in enumerate(new_order):
            i = base + offset
            while stack and not order[stack[-1]].includes(region):
                stack.pop()
            if stack:
                parent.append(stack[-1])
                children[stack[-1]].append(i)
                depth.append(depth[stack[-1]] + 1)
            else:
                parent.append(None)
                depth.append(0)
            children.append([])
            index[region] = i
            stack.append(i)
        clone = Forest.__new__(Forest)
        clone._order = order
        clone._parent = parent
        clone._children = children
        clone._index = index
        clone._depth = depth
        return clone

    # ------------------------------------------------------------------
    # Basic structure.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, region: object) -> bool:
        return region in self._index

    @property
    def preorder(self) -> tuple[Region, ...]:
        """All regions in pre-order (document order, outermost first)."""
        return self._order

    def roots(self) -> list[Region]:
        return [r for i, r in enumerate(self._order) if self._parent[i] is None]

    def parent_of(self, region: Region) -> Region | None:
        """The region that *directly includes* ``region``, if any."""
        p = self._parent[self._index[region]]
        return None if p is None else self._order[p]

    def children_of(self, region: Region) -> list[Region]:
        """The regions directly included in ``region``, in document order."""
        return [self._order[c] for c in self._children[self._index[region]]]

    def depth_of(self, region: Region) -> int:
        """Root regions have depth 0."""
        return self._depth[self._index[region]]

    def ancestors_of(self, region: Region) -> list[Region]:
        """Proper ancestors, innermost first."""
        out: list[Region] = []
        p = self._parent[self._index[region]]
        while p is not None:
            out.append(self._order[p])
            p = self._parent[p]
        return out

    def subtree_of(self, region: Region) -> list[Region]:
        """``region`` and everything it includes, in pre-order."""
        out: list[Region] = []
        stack = [self._index[region]]
        while stack:
            i = stack.pop()
            out.append(self._order[i])
            stack.extend(reversed(self._children[i]))
        return out

    def descendants_of(self, region: Region) -> list[Region]:
        """Everything strictly included in ``region``, in pre-order."""
        return self.subtree_of(region)[1:]

    def sibling_rank(self, region: Region) -> int:
        """Position among the region's siblings (0-based, document order)."""
        i = self._index[region]
        p = self._parent[i]
        siblings = (
            [j for j, q in enumerate(self._parent) if q is None]
            if p is None
            else self._children[p]
        )
        return siblings.index(i)

    def child_path(self, region: Region) -> tuple[int, ...]:
        """Sibling ranks from the root down to ``region``.

        This is the path that the FMFT embedding encodes into ``{0,1}*``.
        """
        chain = [region] + self.ancestors_of(region)
        return tuple(self.sibling_rank(r) for r in reversed(chain))

    def iter_edges(self) -> Iterator[tuple[Region, Region]]:
        """All (parent, child) direct-inclusion pairs."""
        for i, p in enumerate(self._parent):
            if p is not None:
                yield self._order[p], self._order[i]

    # ------------------------------------------------------------------
    # Direct operators (Section 5.1) and layers (Section 6).
    # ------------------------------------------------------------------

    def directly_including(self, r_set: RegionSet, s_set: RegionSet) -> RegionSet:
        """``R ⊃_d S``: the R-regions that are parents of some S-region.

        Direct inclusion quantifies over *all* regions of the instance
        ("no other region resides in between"), which is exactly the
        parent relation of this forest.
        """
        parents = set()
        for s in s_set:
            if s in self._index:
                p = self.parent_of(s)
                if p is not None:
                    parents.add(p)
        return RegionSet(r for r in r_set if r in parents)

    def directly_included(self, r_set: RegionSet, s_set: RegionSet) -> RegionSet:
        """``R ⊂_d S``: the R-regions whose parent is an S-region."""
        out = []
        for r in r_set:
            if r in self._index:
                p = self.parent_of(r)
                if p is not None and p in s_set:
                    out.append(r)
        return RegionSet(out)

    def layers(self) -> list[RegionSet]:
        """Regions grouped by depth: ``layers()[0]`` is the outermost layer.

        The Section 6 programs peel these layers one at a time; the number
        of layers is the nesting depth of the instance.
        """
        if not self._order:
            return []
        buckets: list[list[Region]] = [[] for _ in range(max(self._depth) + 1)]
        for i, region in enumerate(self._order):
            buckets[self._depth[i]].append(region)
        return [RegionSet(b) for b in buckets]

    def max_depth(self) -> int:
        """The nesting depth (number of layers); 0 for an empty forest."""
        return max(self._depth) + 1 if self._order else 0
