"""Region index instances (Definition 2.1) with hierarchy validation.

An :class:`Instance` maps each region *name* to a set of regions and
carries a word index realizing ``W(r, p)``.  Following Section 2.1 we
enforce the hierarchical restriction: every region belongs to exactly one
region set, and any two regions are either disjoint or one strictly
includes the other.  (Two distinct regions with identical endpoints would
be neither, so intervals are globally unique and a region is identified
by its interval.)

Instances are immutable; the deletion/reduction machinery of Section 4
produces *new* instances via :meth:`Instance.without_regions`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import LabelWordIndex, WordIndex
from repro.errors import HierarchyError, UnknownRegionNameError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.forest import Forest

__all__ = ["Instance"]


def _as_region_set(value: RegionSet | Iterable[Region]) -> RegionSet:
    return value if isinstance(value, RegionSet) else RegionSet(value)


class Instance:
    """An instance of a region index: named region sets plus a word index."""

    __slots__ = ("_sets", "_names", "_word_index", "_all", "_name_of", "_forest")

    def __init__(
        self,
        sets: Mapping[str, RegionSet | Iterable[Region]],
        word_index: WordIndex | None = None,
        validate: bool = True,
    ):
        self._sets: dict[str, RegionSet] = {
            name: _as_region_set(regions) for name, regions in sets.items()
        }
        self._names: tuple[str, ...] = tuple(self._sets)
        self._word_index: WordIndex = (
            word_index if word_index is not None else LabelWordIndex()
        )
        self._name_of: dict[Region, str] = {}
        for name, region_set in self._sets.items():
            for region in region_set:
                if region in self._name_of:
                    raise HierarchyError(
                        f"region {region} appears in both "
                        f"{self._name_of[region]!r} and {name!r}"
                    )
                self._name_of[region] = name
        self._all: RegionSet = RegionSet(self._name_of)
        self._forest: "Forest | None" = None
        if validate:
            self.validate_hierarchy()

    # ------------------------------------------------------------------
    # Validation.
    # ------------------------------------------------------------------

    def validate_hierarchy(self) -> None:
        """Raise :class:`HierarchyError` unless the instance is hierarchical.

        A single stack sweep in ``(left, -right)`` order: after popping the
        regions that end before the current one starts, the stack top (if
        any) must strictly include the current region; otherwise the two
        overlap.
        """
        stack: list[Region] = []
        previous: Region | None = None
        for region in sorted(self._all, key=lambda r: (r.left, -r.right)):
            if previous == region:  # impossible given set semantics, kept for clarity
                raise HierarchyError(f"duplicate region {region}")
            while stack and stack[-1].right < region.left:
                stack.pop()
            if stack and not stack[-1].includes(region):
                raise HierarchyError(
                    f"regions {stack[-1]} and {region} overlap without nesting"
                )
            stack.append(region)
            previous = region

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------

    @property
    def names(self) -> tuple[str, ...]:
        """The region names of the index, in declaration order."""
        return self._names

    @property
    def word_index(self) -> WordIndex:
        return self._word_index

    def region_set(self, name: str) -> RegionSet:
        try:
            return self._sets[name]
        except KeyError:
            raise UnknownRegionNameError(name, self._names) from None

    def all_regions(self) -> RegionSet:
        """Every region of the instance, across all names."""
        return self._all

    def name_of(self, region: Region) -> str:
        """The (unique) region name whose set contains ``region``."""
        try:
            return self._name_of[region]
        except KeyError:
            raise UnknownRegionNameError(f"region {region} not in instance") from None

    def __contains__(self, region: object) -> bool:
        return isinstance(region, Region) and region in self._name_of

    def __len__(self) -> int:
        return len(self._all)

    def matches(self, region: Region, pattern: str) -> bool:
        """The word-index predicate ``W(region, pattern)``."""
        return self._word_index.matches(region, pattern)

    def forest(self) -> "Forest":
        """The direct-inclusion forest over all regions (cached)."""
        if self._forest is None:
            from repro.core.forest import Forest

            self._forest = Forest.from_regions(self._all)
        return self._forest

    def nesting_depth(self) -> int:
        """The maximum nesting depth across all regions."""
        return self._all.max_nesting_depth()

    # ------------------------------------------------------------------
    # Derivation of new instances (Section 4 machinery).
    # ------------------------------------------------------------------

    def without_regions(self, removed: Iterable[Region]) -> "Instance":
        """A copy with the given regions deleted from their sets.

        The word index is restricted to the surviving regions when it is a
        :class:`LabelWordIndex`; a text-backed index is a function of the
        underlying text and is shared unchanged.
        """
        drop = set(removed)
        sets = {
            name: RegionSet(r for r in region_set if r not in drop)
            for name, region_set in self._sets.items()
        }
        word_index = self._word_index
        if isinstance(word_index, LabelWordIndex):
            survivors = [r for r in self._all if r not in drop]
            word_index = word_index.restricted_to(survivors)
        return Instance(sets, word_index, validate=False)

    def restricted_to(self, kept: Iterable[Region]) -> "Instance":
        """A copy keeping only the given regions."""
        keep = set(kept)
        return self.without_regions(r for r in self._all if r not in keep)

    def appended(
        self,
        additions: Mapping[str, Iterable[Region]],
        word_index: WordIndex,
    ) -> "Instance":
        """A copy with new regions appended wholly *after* every existing
        region, carrying a replacement word index.

        This is the live-ingestion segment-append fast path: when a new
        document segment lands at the end of the corpus text, every
        existing region set simply gains a sorted tail, the combined
        region universe stays sorted by concatenation, and hierarchy
        validation reduces to checking that the new regions start past
        the old extent (the appended regions themselves come from a
        parse that already validated their nesting).  Cost is
        ``O(new regions + touched region sets)`` instead of a full
        re-validation sweep.

        ``additions`` maps region names to regions sorted by
        ``(left, right)``; every new left endpoint must exceed every
        existing right endpoint.
        """
        flat: list[Region] = []
        for regions in additions.values():
            flat.extend(regions)
        if not flat:
            if word_index is self._word_index:
                return self
            flat = []
        flat.sort(key=lambda r: (r.left, r.right))
        if flat and self._rights_max() >= flat[0].left:
            raise HierarchyError(
                f"appended region {flat[0]} does not lie after the "
                "existing extent"
            )
        clone = Instance.__new__(Instance)
        clone._word_index = word_index
        clone._sets = dict(self._sets)
        clone._name_of = dict(self._name_of)
        for name, regions in additions.items():
            new = sorted(regions, key=lambda r: (r.left, r.right))
            if not new:
                continue
            for region in new:
                if region in clone._name_of:
                    raise HierarchyError(
                        f"region {region} appears in both "
                        f"{clone._name_of[region]!r} and {name!r}"
                    )
                clone._name_of[region] = name
            existing = clone._sets.get(name)
            if existing is None:
                clone._sets[name] = RegionSet._from_sorted(new)
            else:
                clone._sets[name] = RegionSet._from_sorted(
                    list(existing) + new
                )
        clone._names = (
            tuple(sorted(clone._sets))
            if len(clone._sets) != len(self._sets)
            else self._names
        )
        clone._all = RegionSet._from_sorted(list(self._all) + flat)
        # An already-materialized forest extends incrementally: the new
        # regions all lie past the old extent, so the old structure is
        # reused and only the appended suffix is swept.  Cold instances
        # keep lazy construction.
        clone._forest = (
            None if self._forest is None else self._forest.appended(flat)
        )
        return clone

    def _rights_max(self) -> int:
        """The maximum right endpoint over all regions (−1 when empty)."""
        rights = self._all._rights
        return max(rights) if rights else -1

    def shifted(self, offset: int) -> "Instance":
        """A copy with every region translated by ``offset`` positions.

        The algebra only observes relative nesting and order, so every
        query result on the shifted instance is the shifted result — the
        position-independence that justifies the Section 3 forest view.
        (Metamorphic tests rely on this.)  Only label-backed word
        indexes can be shifted; a text-backed index is anchored to its
        text.
        """
        sets = {
            name: RegionSet(r.shifted(offset) for r in region_set)
            for name, region_set in self._sets.items()
        }
        word_index = self._word_index
        if isinstance(word_index, LabelWordIndex):
            word_index = word_index.renamed(
                {r: r.shifted(offset) for r in self._all}
            )
        else:
            raise HierarchyError(
                "only instances with label word indexes can be shifted"
            )
        return Instance(sets, word_index, validate=False)

    # ------------------------------------------------------------------
    # Equality (used heavily by the theory tests).
    # ------------------------------------------------------------------

    def _label_signature(self) -> object:
        if isinstance(self._word_index, LabelWordIndex):
            return frozenset(
                (region, patterns)
                for region, patterns in self._word_index.items()
                if patterns and region in self._name_of
            )
        return id(self._word_index)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return (
            self._sets == other._sets
            and self._label_signature() == other._label_signature()
        )

    def __hash__(self) -> int:
        return hash(
            (
                tuple(sorted((n, s) for n, s in self._sets.items())),
                self._label_signature(),
            )
        )

    def __repr__(self) -> str:  # pragma: no cover - display helper
        parts = ", ".join(f"{name}:{len(s)}" for name, s in self._sets.items())
        return f"Instance({parts})"
