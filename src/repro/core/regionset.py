"""Immutable, sorted sets of regions with set-at-a-time operators.

:class:`RegionSet` is the carrier type of the region algebra
(Definition 2.2/2.3).  It stores regions sorted by ``(left, right)`` with
duplicates removed, which is the representation the PAT engine's
efficiency rests on: every structural semi-join below runs in
``O((n + m) log m)`` using binary search plus prefix/suffix extreme
tables, instead of the naive ``O(n * m)`` pairwise scan.

Two implementations of each structural operator are provided:

* the *indexed* ones (``including``, ``included_in``, ``preceding``,
  ``following``) used by the production evaluator, and
* ``*_naive`` variants that transcribe Definition 2.3 literally and serve
  as the semantic oracle for the test suite.

The correctness argument for the indexed containment joins: with ``S``
sorted by left endpoint, ``r ⊃ s`` holds for some ``s ∈ S`` iff

* (A) some ``s`` has ``left(s) > left(r)`` and ``right(s) <= right(r)``, or
* (B) some ``s`` has ``left(s) >= left(r)`` and ``right(s) < right(r)``,

and each disjunct asks whether the *minimum* right endpoint over a suffix
of the sorted order clears a threshold — a suffix-minimum query.  The
``⊂`` join is symmetric with prefix-maximum queries.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterable, Iterator

from repro.core.region import Region

__all__ = ["RegionSet"]


def _suffix_min(values: list[int]) -> list[int]:
    """``out[i] = min(values[i:])``; one extra sentinel at the end."""
    out = [0] * (len(values) + 1)
    out[len(values)] = _POS_INF
    for i in range(len(values) - 1, -1, -1):
        out[i] = values[i] if values[i] < out[i + 1] else out[i + 1]
    return out


def _prefix_max(values: list[int]) -> list[int]:
    """``out[i] = max(values[:i])``; ``out[0]`` is a sentinel."""
    out = [0] * (len(values) + 1)
    out[0] = _NEG_INF
    for i, v in enumerate(values):
        out[i + 1] = v if v > out[i] else out[i]
    return out


_POS_INF = float("inf")
_NEG_INF = float("-inf")


class RegionSet:
    """An immutable set of :class:`Region` kept in ``(left, right)`` order.

    Construction deduplicates and sorts; all operators return new sets.
    Instances are hashable and comparable, so they can be used as oracle
    values in property-based tests.
    """

    __slots__ = ("_regions", "_lefts", "_rights", "_suffix_min_right", "_prefix_max_right")

    def __init__(self, regions: Iterable[Region] = ()):
        items = sorted(set(regions))
        self._regions: tuple[Region, ...] = tuple(items)
        self._lefts: list[int] = [r.left for r in items]
        self._rights: list[int] = [r.right for r in items]
        # Extreme tables are built lazily: most intermediate results are
        # consumed by set operations that never need them.
        self._suffix_min_right: list[int] | None = None
        self._prefix_max_right: list[int] | None = None

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "RegionSet":
        return _EMPTY

    @classmethod
    def _from_sorted(cls, items: list[Region]) -> "RegionSet":
        """Internal: build from already ``(left, right)``-sorted,
        duplicate-free regions, skipping the constructor's sort.

        The live-ingestion append path concatenates an existing sorted
        set with new regions that all lie strictly after it, so the
        result is sorted by construction and re-sorting would waste the
        O(new) guarantee.  Callers are responsible for the precondition.
        """
        out = cls.__new__(cls)
        out._regions = tuple(items)
        out._lefts = [r.left for r in items]
        out._rights = [r.right for r in items]
        out._suffix_min_right = None
        out._prefix_max_right = None
        return out

    @classmethod
    def of(cls, *pairs: tuple[int, int]) -> "RegionSet":
        """Build a set from ``(left, right)`` tuples — test/demo shorthand."""
        return cls(Region(left, right) for left, right in pairs)

    @classmethod
    def _from_sorted(cls, regions: list[Region]) -> "RegionSet":
        """Wrap a list already in ``(left, right)`` order with no duplicates.

        The shard merge produces exactly that (per-shard results are
        sorted and span-disjoint), so this skips the ``sorted(set(...))``
        of ``__init__``.  Callers must uphold the invariant.
        """
        out = cls.__new__(cls)
        out._regions = tuple(regions)
        out._lefts = [r.left for r in regions]
        out._rights = [r.right for r in regions]
        out._suffix_min_right = None
        out._prefix_max_right = None
        return out

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._regions)

    def __iter__(self) -> Iterator[Region]:
        return iter(self._regions)

    def __contains__(self, region: object) -> bool:
        if not isinstance(region, Region):
            return False
        i = bisect_left(self._regions, region)
        return i < len(self._regions) and self._regions[i] == region

    def __bool__(self) -> bool:
        return bool(self._regions)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionSet):
            return NotImplemented
        return self._regions == other._regions

    def __hash__(self) -> int:
        return hash(self._regions)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        inner = ", ".join(str(r) for r in self._regions[:8])
        if len(self._regions) > 8:
            inner += f", … ({len(self._regions)} total)"
        return f"RegionSet({inner})"

    @property
    def regions(self) -> tuple[Region, ...]:
        """The regions in canonical ``(left, right)`` order."""
        return self._regions

    # ------------------------------------------------------------------
    # Set-theoretic operations (Definition 2.3, first group).
    # ------------------------------------------------------------------

    def union(self, other: "RegionSet") -> "RegionSet":
        if not other:
            return self
        if not self:
            return other
        return RegionSet(self._regions + other._regions)

    def intersection(self, other: "RegionSet") -> "RegionSet":
        if not self or not other:
            return _EMPTY
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return RegionSet(r for r in small if r in large)

    def difference(self, other: "RegionSet") -> "RegionSet":
        if not self:
            return _EMPTY
        if not other:
            return self
        return RegionSet(r for r in self if r not in other)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # ------------------------------------------------------------------
    # Indexed structural semi-joins (Definition 2.3, second group).
    # ------------------------------------------------------------------

    def _ensure_suffix_min(self) -> list[int]:
        if self._suffix_min_right is None:
            self._suffix_min_right = _suffix_min(self._rights)
        return self._suffix_min_right

    def _ensure_prefix_max(self) -> list[int]:
        if self._prefix_max_right is None:
            self._prefix_max_right = _prefix_max(self._rights)
        return self._prefix_max_right

    def _contains_region_inside(self, r: Region) -> bool:
        """Does this set contain some ``s`` with ``r ⊃ s``?"""
        suffix = self._ensure_suffix_min()
        # (A) left(s) > left(r) and right(s) <= right(r)
        i = bisect_right(self._lefts, r.left)
        if suffix[i] <= r.right:
            return True
        # (B) left(s) >= left(r) and right(s) < right(r)
        j = bisect_left(self._lefts, r.left)
        return suffix[j] < r.right

    def _contains_region_outside(self, r: Region) -> bool:
        """Does this set contain some ``s`` with ``r ⊂ s``?"""
        prefix = self._ensure_prefix_max()
        # (A) left(s) < left(r) and right(s) >= right(r)
        i = bisect_left(self._lefts, r.left)
        if prefix[i] >= r.right:
            return True
        # (B) left(s) <= left(r) and right(s) > right(r)
        j = bisect_right(self._lefts, r.left)
        return prefix[j] > r.right

    def including(self, other: "RegionSet") -> "RegionSet":
        """``R ⊃ S = {r ∈ R : ∃ s ∈ S, r ⊃ s}``."""
        if not self or not other:
            return _EMPTY
        return RegionSet(r for r in self if other._contains_region_inside(r))

    def included_in(self, other: "RegionSet") -> "RegionSet":
        """``R ⊂ S = {r ∈ R : ∃ s ∈ S, r ⊂ s}``."""
        if not self or not other:
            return _EMPTY
        return RegionSet(r for r in self if other._contains_region_outside(r))

    def preceding(self, other: "RegionSet") -> "RegionSet":
        """``R < S = {r ∈ R : ∃ s ∈ S, r < s}``.

        ``r < s`` means ``right(r) < left(s)``, so ``r`` qualifies exactly
        when the *maximum* left endpoint in ``S`` exceeds ``right(r)``.
        """
        if not self or not other:
            return _EMPTY
        max_left = other._lefts[-1]
        return RegionSet(r for r in self if r.right < max_left)

    def following(self, other: "RegionSet") -> "RegionSet":
        """``R > S = {r ∈ R : ∃ s ∈ S, r > s}``.

        ``r`` qualifies exactly when the *minimum* right endpoint in ``S``
        is below ``left(r)``.
        """
        if not self or not other:
            return _EMPTY
        min_right = min(other._rights)
        return RegionSet(r for r in self if min_right < r.left)

    # ------------------------------------------------------------------
    # Naive oracle variants (Definition 2.3 transcribed literally).
    # ------------------------------------------------------------------

    def _semi_join_naive(
        self, other: "RegionSet", predicate: Callable[[Region, Region], bool]
    ) -> "RegionSet":
        return RegionSet(
            r for r in self if any(predicate(r, s) for s in other)
        )

    def including_naive(self, other: "RegionSet") -> "RegionSet":
        return self._semi_join_naive(other, Region.includes)

    def included_in_naive(self, other: "RegionSet") -> "RegionSet":
        return self._semi_join_naive(other, Region.included_in)

    def preceding_naive(self, other: "RegionSet") -> "RegionSet":
        return self._semi_join_naive(other, Region.precedes)

    def following_naive(self, other: "RegionSet") -> "RegionSet":
        return self._semi_join_naive(other, Region.follows)

    # ------------------------------------------------------------------
    # Selection and misc helpers.
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[Region], bool]) -> "RegionSet":
        """Keep the regions satisfying ``predicate`` (used for ``σ_p``)."""
        return RegionSet(r for r in self if predicate(r))

    def spanning(self, position: int) -> "RegionSet":
        """The regions containing text position ``position``."""
        return RegionSet(r for r in self if r.contains_point(position))

    def top_layer(self) -> "RegionSet":
        """``R - (R ⊂ R)``: the maximal (outermost) regions of the set.

        This is the layer-peeling step of the Section 6 while-programs.
        """
        return self.difference(self.included_in(self))

    def max_nesting_depth(self) -> int:
        """Length of the longest chain of strictly nested regions in the set.

        Computed with a stack sweep over ``(left, -right)`` order, which
        visits every enclosing region before the regions it includes.
        """
        depth = 0
        stack: list[Region] = []
        for r in sorted(self._regions, key=lambda t: (t.left, -t.right)):
            while stack and not stack[-1].includes(r):
                stack.pop()
            stack.append(r)
            depth = max(depth, len(stack))
        return depth


_EMPTY = RegionSet()
