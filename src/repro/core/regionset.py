"""Immutable, sorted sets of regions with set-at-a-time operators.

:class:`RegionSet` is the carrier type of the region algebra
(Definition 2.2/2.3).  Internally a set is a *struct of arrays*: two
parallel int lists ``_lefts``/``_rights`` sorted by ``(left, right)``
with duplicates removed.  That flat layout is what the PAT engine's
efficiency rests on — every structural semi-join below runs in
``O((n + m) log m)`` using binary search plus prefix/suffix extreme
tables, and the :mod:`repro.vm` kernels consume the arrays directly
without touching per-region Python objects.

The tuple of :class:`Region` objects (the *object view*) is materialised
lazily on first access through :attr:`regions` / iteration, so existing
region-at-a-time callers keep working unchanged while array-to-array
pipelines never pay for it.

Two implementations of each structural operator are provided:

* the *indexed* ones (``including``, ``included_in``, ``preceding``,
  ``following``) used by the production evaluator, and
* ``*_naive`` variants that transcribe Definition 2.3 literally and serve
  as the semantic oracle for the test suite.

The correctness argument for the indexed containment joins: with ``S``
sorted by left endpoint, ``r ⊃ s`` holds for some ``s ∈ S`` iff

* (A) some ``s`` has ``left(s) > left(r)`` and ``right(s) <= right(r)``, or
* (B) some ``s`` has ``left(s) >= left(r)`` and ``right(s) < right(r)``,

and each disjunct asks whether the *minimum* right endpoint over a suffix
of the sorted order clears a threshold — a suffix-minimum query.  The
``⊂`` join is symmetric with prefix-maximum queries.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Iterable, Iterator

from repro.core.region import Region

__all__ = ["RegionSet"]


def _suffix_min(values: list[int]) -> list[int]:
    """``out[i] = min(values[i:])``; one extra sentinel at the end."""
    out = [0] * (len(values) + 1)
    out[len(values)] = _POS_INF
    for i in range(len(values) - 1, -1, -1):
        out[i] = values[i] if values[i] < out[i + 1] else out[i + 1]
    return out


def _prefix_max(values: list[int]) -> list[int]:
    """``out[i] = max(values[:i])``; ``out[0]`` is a sentinel."""
    out = [0] * (len(values) + 1)
    out[0] = _NEG_INF
    for i, v in enumerate(values):
        out[i + 1] = v if v > out[i] else out[i]
    return out


def _layer_peel(lefts: list[int], rights: list[int]) -> tuple[list[int], list[int]]:
    """One array sweep computing ``R - (R ⊂ R)`` over sorted endpoint arrays.

    Walking in ``(left, right)`` order, a region is outermost iff its
    right endpoint exceeds every right endpoint seen at strictly smaller
    lefts (a later region can never include an earlier one), and within a
    run of equal lefts only the last — maximal-right — element can be
    outermost (it strictly includes the rest of the run).
    """
    out_l: list[int] = []
    out_r: list[int] = []
    n = len(lefts)
    best = _NEG_INF  # max right endpoint over strictly smaller lefts
    i = 0
    while i < n:
        left = lefts[i]
        j = i
        while j + 1 < n and lefts[j + 1] == left:
            j += 1
        right = rights[j]
        if right > best:
            out_l.append(left)
            out_r.append(right)
            best = right
        i = j + 1
    return out_l, out_r


_POS_INF = float("inf")
_NEG_INF = float("-inf")


class RegionSet:
    """An immutable set of :class:`Region` kept in ``(left, right)`` order.

    Construction deduplicates and sorts; all operators return new sets.
    Instances are hashable and comparable, so they can be used as oracle
    values in property-based tests.
    """

    __slots__ = ("_regions", "_lefts", "_rights", "_suffix_min_right", "_prefix_max_right")

    def __init__(self, regions: Iterable[Region] = ()):
        items = sorted(set(regions))
        self._regions: tuple[Region, ...] | None = tuple(items)
        self._lefts: list[int] = [r.left for r in items]
        self._rights: list[int] = [r.right for r in items]
        # Extreme tables are built lazily: most intermediate results are
        # consumed by set operations that never need them.
        self._suffix_min_right: list[int] | None = None
        self._prefix_max_right: list[int] | None = None

    # ------------------------------------------------------------------
    # Construction helpers.
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "RegionSet":
        return _EMPTY

    @classmethod
    def _from_sorted(cls, regions: list[Region]) -> "RegionSet":
        """Wrap a list already in ``(left, right)`` order with no duplicates.

        The shard merge and the live-ingestion append path both produce
        exactly that (per-shard results are sorted and span-disjoint;
        appended regions all lie strictly after the existing set), so
        this skips the ``sorted(set(...))`` of ``__init__``.  Callers
        must uphold the invariant.
        """
        out = cls.__new__(cls)
        out._regions = tuple(regions)
        out._lefts = [r.left for r in regions]
        out._rights = [r.right for r in regions]
        out._suffix_min_right = None
        out._prefix_max_right = None
        return out

    @classmethod
    def _from_arrays(cls, lefts: list[int], rights: list[int]) -> "RegionSet":
        """Wrap parallel endpoint arrays already sorted and duplicate-free.

        This is the :mod:`repro.vm` kernel output path: no Region objects
        are created until someone asks for the object view.  Callers must
        uphold the ``(left, right)``-sorted, no-duplicates invariant.
        """
        out = cls.__new__(cls)
        out._regions = None
        out._lefts = lefts
        out._rights = rights
        out._suffix_min_right = None
        out._prefix_max_right = None
        return out

    @classmethod
    def of(cls, *pairs: tuple[int, int]) -> "RegionSet":
        """Build a set from ``(left, right)`` tuples — test/demo shorthand."""
        return cls(Region(left, right) for left, right in pairs)

    # ------------------------------------------------------------------
    # Container protocol.
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._lefts)

    def __iter__(self) -> Iterator[Region]:
        return iter(self.regions)

    def __contains__(self, region: object) -> bool:
        if not isinstance(region, Region):
            return False
        lefts = self._lefts
        rights = self._rights
        n = len(lefts)
        i = bisect_left(lefts, region.left)
        # Within a run of equal lefts the rights are ascending.
        while i < n and lefts[i] == region.left:
            if rights[i] == region.right:
                return True
            if rights[i] > region.right:
                return False
            i += 1
        return False

    def __bool__(self) -> bool:
        return bool(self._lefts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RegionSet):
            return NotImplemented
        return self._lefts == other._lefts and self._rights == other._rights

    def __hash__(self) -> int:
        return hash((tuple(self._lefts), tuple(self._rights)))

    def __repr__(self) -> str:  # pragma: no cover - display helper
        regions = self.regions
        inner = ", ".join(str(r) for r in regions[:8])
        if len(regions) > 8:
            inner += f", … ({len(regions)} total)"
        return f"RegionSet({inner})"

    @property
    def regions(self) -> tuple[Region, ...]:
        """The regions in canonical ``(left, right)`` order.

        Materialised lazily from the endpoint arrays: sets produced by
        the array kernels never build Region objects unless a caller
        actually walks them.
        """
        if self._regions is None:
            self._regions = tuple(map(Region, self._lefts, self._rights))
        return self._regions

    # ------------------------------------------------------------------
    # Set-theoretic operations (Definition 2.3, first group).
    # ------------------------------------------------------------------

    def union(self, other: "RegionSet") -> "RegionSet":
        if not other:
            return self
        if not self:
            return other
        return RegionSet(self.regions + other.regions)

    def intersection(self, other: "RegionSet") -> "RegionSet":
        if not self or not other:
            return _EMPTY
        small, large = (self, other) if len(self) <= len(other) else (other, self)
        return RegionSet(r for r in small if r in large)

    def difference(self, other: "RegionSet") -> "RegionSet":
        if not self:
            return _EMPTY
        if not other:
            return self
        return RegionSet(r for r in self if r not in other)

    __or__ = union
    __and__ = intersection
    __sub__ = difference

    # ------------------------------------------------------------------
    # Indexed structural semi-joins (Definition 2.3, second group).
    # ------------------------------------------------------------------

    def _ensure_suffix_min(self) -> list[int]:
        if self._suffix_min_right is None:
            self._suffix_min_right = _suffix_min(self._rights)
        return self._suffix_min_right

    def _ensure_prefix_max(self) -> list[int]:
        if self._prefix_max_right is None:
            self._prefix_max_right = _prefix_max(self._rights)
        return self._prefix_max_right

    def _contains_region_inside(self, r: Region) -> bool:
        """Does this set contain some ``s`` with ``r ⊃ s``?"""
        suffix = self._ensure_suffix_min()
        # (A) left(s) > left(r) and right(s) <= right(r)
        i = bisect_right(self._lefts, r.left)
        if suffix[i] <= r.right:
            return True
        # (B) left(s) >= left(r) and right(s) < right(r)
        j = bisect_left(self._lefts, r.left)
        return suffix[j] < r.right

    def _contains_region_outside(self, r: Region) -> bool:
        """Does this set contain some ``s`` with ``r ⊂ s``?"""
        prefix = self._ensure_prefix_max()
        # (A) left(s) < left(r) and right(s) >= right(r)
        i = bisect_left(self._lefts, r.left)
        if prefix[i] >= r.right:
            return True
        # (B) left(s) <= left(r) and right(s) > right(r)
        j = bisect_right(self._lefts, r.left)
        return prefix[j] > r.right

    def including(self, other: "RegionSet") -> "RegionSet":
        """``R ⊃ S = {r ∈ R : ∃ s ∈ S, r ⊃ s}``."""
        if not self or not other:
            return _EMPTY
        return RegionSet(r for r in self if other._contains_region_inside(r))

    def included_in(self, other: "RegionSet") -> "RegionSet":
        """``R ⊂ S = {r ∈ R : ∃ s ∈ S, r ⊂ s}``."""
        if not self or not other:
            return _EMPTY
        return RegionSet(r for r in self if other._contains_region_outside(r))

    def preceding(self, other: "RegionSet") -> "RegionSet":
        """``R < S = {r ∈ R : ∃ s ∈ S, r < s}``.

        ``r < s`` means ``right(r) < left(s)``, so ``r`` qualifies exactly
        when the *maximum* left endpoint in ``S`` exceeds ``right(r)``.
        """
        if not self or not other:
            return _EMPTY
        max_left = other._lefts[-1]
        return RegionSet(r for r in self if r.right < max_left)

    def following(self, other: "RegionSet") -> "RegionSet":
        """``R > S = {r ∈ R : ∃ s ∈ S, r > s}``.

        ``r`` qualifies exactly when the *minimum* right endpoint in ``S``
        is below ``left(r)``.
        """
        if not self or not other:
            return _EMPTY
        min_right = min(other._rights)
        return RegionSet(r for r in self if min_right < r.left)

    # ------------------------------------------------------------------
    # Naive oracle variants (Definition 2.3 transcribed literally).
    # ------------------------------------------------------------------

    def _semi_join_naive(
        self, other: "RegionSet", predicate: Callable[[Region, Region], bool]
    ) -> "RegionSet":
        return RegionSet(
            r for r in self if any(predicate(r, s) for s in other)
        )

    def including_naive(self, other: "RegionSet") -> "RegionSet":
        return self._semi_join_naive(other, Region.includes)

    def included_in_naive(self, other: "RegionSet") -> "RegionSet":
        return self._semi_join_naive(other, Region.included_in)

    def preceding_naive(self, other: "RegionSet") -> "RegionSet":
        return self._semi_join_naive(other, Region.precedes)

    def following_naive(self, other: "RegionSet") -> "RegionSet":
        return self._semi_join_naive(other, Region.follows)

    # ------------------------------------------------------------------
    # Selection and misc helpers.
    # ------------------------------------------------------------------

    def select(self, predicate: Callable[[Region], bool]) -> "RegionSet":
        """Keep the regions satisfying ``predicate`` (used for ``σ_p``)."""
        return RegionSet(r for r in self if predicate(r))

    def spanning(self, position: int) -> "RegionSet":
        """The regions containing text position ``position``."""
        return RegionSet(r for r in self if r.contains_point(position))

    def top_layer(self) -> "RegionSet":
        """``R - (R ⊂ R)``: the maximal (outermost) regions of the set.

        This is the layer-peeling step of the Section 6 while-programs,
        computed with a single O(n) sweep over the endpoint arrays.
        """
        if not self:
            return _EMPTY
        lefts, rights = _layer_peel(self._lefts, self._rights)
        return RegionSet._from_arrays(lefts, rights)

    def max_nesting_depth(self) -> int:
        """Length of the longest chain of strictly nested regions in the set.

        Computed with a stack sweep over ``(left, -right)`` order, which
        visits every enclosing region before the regions it includes.
        """
        depth = 0
        stack: list[Region] = []
        for r in sorted(self.regions, key=lambda t: (t.left, -t.right)):
            while stack and not stack[-1].includes(r):
                stack.pop()
            stack.append(r)
            depth = max(depth, len(stack))
        return depth


_EMPTY = RegionSet()
