"""The pattern language behind the selection operator ``σ_p``.

The paper deliberately abstracts over the pattern language: the word index
is a binary predicate ``W(r, p)`` stating that the text stored in region
``r`` contains a match of pattern ``p`` (Section 2.1).  This module supplies
a concrete, PAT-flavoured pattern language for indexes built from real
text:

* ``word``      — a literal token match (``σ_"x"``),
* ``pref*``     — a prefix match, PAT's most common idiom,
* anything containing ``*`` or ``?`` elsewhere — a glob over tokens.

Pattern strings are parsed once with :func:`parse_pattern`; synthetic
instances (whose word index is an explicit labelling) bypass this module
entirely and treat pattern strings as opaque labels.
"""

from __future__ import annotations

import fnmatch
import re
from dataclasses import dataclass

from repro.errors import PatternError

__all__ = [
    "Pattern",
    "LiteralPattern",
    "PrefixPattern",
    "GlobPattern",
    "parse_pattern",
]


@dataclass(frozen=True, slots=True)
class Pattern:
    """Base class for parsed patterns.  ``source`` is the original string."""

    source: str

    def matches_token(self, token: str) -> bool:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class LiteralPattern(Pattern):
    """Matches a token exactly (case-sensitive, as in PAT)."""

    def matches_token(self, token: str) -> bool:
        return token == self.source


@dataclass(frozen=True, slots=True)
class PrefixPattern(Pattern):
    """Matches tokens starting with ``prefix`` (the PAT ``word*`` idiom)."""

    prefix: str = ""

    def matches_token(self, token: str) -> bool:
        return token.startswith(self.prefix)


@dataclass(frozen=True, slots=True)
class GlobPattern(Pattern):
    """Matches tokens against a shell-style glob (``*`` and ``?``)."""

    regex: "re.Pattern[str] | None" = None

    def matches_token(self, token: str) -> bool:
        assert self.regex is not None
        return self.regex.fullmatch(token) is not None


def parse_pattern(source: str) -> Pattern:
    """Parse a pattern string into its most specific :class:`Pattern` form.

    Raises :class:`~repro.errors.PatternError` for empty patterns or
    patterns that match every token (a bare ``*`` would defeat the point of
    the word index, and PAT rejects it too).
    """
    if not source:
        raise PatternError("empty pattern")
    if source == "*":
        raise PatternError("pattern '*' would match every token")
    has_glob = any(ch in source for ch in "*?")
    if not has_glob:
        return LiteralPattern(source)
    if source.endswith("*") and not any(ch in source[:-1] for ch in "*?"):
        return PrefixPattern(source, prefix=source[:-1])
    return GlobPattern(source, regex=re.compile(fnmatch.translate(source)))
