"""Word indexes: the predicate ``W(r, p)`` of Definition 2.1.

Two interchangeable implementations are provided behind the small
:class:`WordIndex` protocol:

* :class:`TextWordIndex` — built from tokenized text; ``W(r, p)`` holds
  when some occurrence of a token matching ``p`` lies (non-strictly)
  inside ``r``.  This is the index a real engine maintains.
* :class:`LabelWordIndex` — an explicit labelling of regions with the
  pattern strings they satisfy.  The theory of Sections 3-5 treats the
  word index abstractly (Def 3.2 condition 4), and the synthetic
  instances used by the counter-example constructions and generators
  need exactly this freedom.

Both support :meth:`~WordIndex.matches`; the text-backed index
additionally exposes the *match points* of a pattern (the entries of the
PAT word index) as a :class:`~repro.core.RegionSet`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Iterable, Mapping, Protocol, runtime_checkable

from repro.core.patterns import Pattern, parse_pattern
from repro.core.region import Region
from repro.core.regionset import RegionSet

__all__ = ["WordIndex", "TextWordIndex", "LabelWordIndex", "Token", "tokenize"]


Token = tuple[str, int, int]
"""A token occurrence: ``(text, left, right)`` with inclusive endpoints."""


def tokenize(text: str) -> list[Token]:
    """Split ``text`` into maximal runs of non-space characters.

    Positions are character offsets; a token occupies the inclusive span of
    its characters.  This is deliberately simple — structured-document
    parsers in :mod:`repro.engine` pre-process markup before tokenizing.
    """
    tokens: list[Token] = []
    start: int | None = None
    for i, ch in enumerate(text):
        if ch.isspace():
            if start is not None:
                tokens.append((text[start:i], start, i - 1))
                start = None
        elif start is None:
            start = i
    if start is not None:
        tokens.append((text[start:], start, len(text) - 1))
    return tokens


@runtime_checkable
class WordIndex(Protocol):
    """The minimal interface the evaluator needs: the predicate ``W``."""

    def matches(self, region: Region, pattern: str) -> bool:
        """``W(region, pattern)`` — does the region satisfy the pattern?"""
        ...


class TextWordIndex:
    """An inverted index over token occurrences in a text.

    ``matches(r, p)`` asks whether *some* occurrence of a token matching
    ``p`` lies inside ``r``.  Occurrences of each distinct token are kept
    sorted by left endpoint with a suffix-minimum table of right
    endpoints, so each containment probe is ``O(log n)``.
    """

    def __init__(self, tokens: Iterable[Token]):
        by_token: dict[str, list[tuple[int, int]]] = {}
        for text, left, right in tokens:
            by_token.setdefault(text, []).append((left, right))
        self._occurrences: dict[str, tuple[list[int], list[int], list[int]]] = {}
        for text, occs in by_token.items():
            occs.sort()
            lefts = [l for l, _ in occs]
            rights = [r for _, r in occs]
            suffix = rights[:]
            for i in range(len(suffix) - 2, -1, -1):
                if suffix[i + 1] < suffix[i]:
                    suffix[i] = suffix[i + 1]
            self._occurrences[text] = (lefts, rights, suffix)
        self._vocabulary = sorted(self._occurrences)
        self._pattern_cache: dict[str, Pattern] = {}

    @classmethod
    def from_text(cls, text: str) -> "TextWordIndex":
        return cls(tokenize(text))

    # ------------------------------------------------------------------

    @property
    def vocabulary(self) -> list[str]:
        """The distinct tokens, sorted."""
        return list(self._vocabulary)

    def _parsed(self, pattern: str) -> Pattern:
        parsed = self._pattern_cache.get(pattern)
        if parsed is None:
            parsed = parse_pattern(pattern)
            self._pattern_cache[pattern] = parsed
        return parsed

    def _matching_tokens(self, pattern: str) -> list[str]:
        parsed = self._parsed(pattern)
        # Prefix patterns can use the sorted vocabulary directly.
        from repro.core.patterns import LiteralPattern, PrefixPattern

        if isinstance(parsed, LiteralPattern):
            return [pattern] if pattern in self._occurrences else []
        if isinstance(parsed, PrefixPattern):
            lo = bisect_left(self._vocabulary, parsed.prefix)
            hi = bisect_left(self._vocabulary, parsed.prefix + "￿")
            return self._vocabulary[lo:hi]
        return [t for t in self._vocabulary if parsed.matches_token(t)]

    def match_points(self, pattern: str) -> RegionSet:
        """All occurrence regions of tokens matching ``pattern``.

        These are the PAT *match points* — usable as an ordinary region
        set operand (e.g. for proximity queries with ``<`` and ``>``).
        """
        out: list[Region] = []
        for token in self._matching_tokens(pattern):
            lefts, rights, _ = self._occurrences[token]
            out.extend(Region(l, r) for l, r in zip(lefts, rights))
        return RegionSet(out)

    def matches(self, region: Region, pattern: str) -> bool:
        """``W(region, pattern)``: an occurrence lies inside ``region``."""
        for token in self._matching_tokens(pattern):
            lefts, _, suffix = self._occurrences[token]
            i = bisect_left(lefts, region.left)
            hi = bisect_right(lefts, region.right)
            if i < hi and suffix[i] <= region.right:
                return True
        return False

    def extended(self, tokens: Iterable[Token]) -> "TextWordIndex":
        """A new index with ``tokens`` appended *after* every existing
        occurrence (every new left endpoint must be strictly greater
        than every existing one).

        This is the segment-append fast path of live ingestion: because
        the new occurrences sit wholly to the right, the per-token
        sorted lists extend in place and every existing suffix-minimum
        value is already correct (``min`` over a suffix cannot drop when
        only larger right endpoints are appended).  Untouched tokens
        share their occurrence tuples with ``self``; the result is a
        fully independent, immutable index built in
        ``O(new tokens + touched vocabulary)``.
        """
        by_token: dict[str, list[tuple[int, int]]] = {}
        for text, left, right in tokens:
            by_token.setdefault(text, []).append((left, right))
        clone = TextWordIndex.__new__(TextWordIndex)
        clone._occurrences = dict(self._occurrences)
        clone._pattern_cache = {}
        fresh = []
        for text, occs in by_token.items():
            occs.sort()
            existing = clone._occurrences.get(text)
            if existing is not None and (
                occs[0][0] <= existing[0][-1]
                or min(r for _, r in occs) < existing[1][-1]
            ):
                raise ValueError(
                    f"extended() occurrence of {text!r} at {occs[0][0]} is "
                    "not after the existing occurrences"
                )
            suffix = [r for _, r in occs]
            for i in range(len(suffix) - 2, -1, -1):
                if suffix[i + 1] < suffix[i]:
                    suffix[i] = suffix[i + 1]
            if existing is None:
                clone._occurrences[text] = (
                    [l for l, _ in occs],
                    [r for _, r in occs],
                    suffix,
                )
                fresh.append(text)
            else:
                lefts, rights, old_suffix = existing
                clone._occurrences[text] = (
                    lefts + [l for l, _ in occs],
                    rights + [r for _, r in occs],
                    old_suffix + suffix,
                )
        if fresh:
            vocabulary = sorted(self._vocabulary + fresh)
        else:
            vocabulary = self._vocabulary
        clone._vocabulary = vocabulary
        return clone


class LabelWordIndex:
    """An abstract word index: an explicit region → pattern-set labelling.

    This realizes the paper's view of ``W`` as an arbitrary boolean
    predicate over (region, pattern) pairs.  Regions absent from the
    mapping satisfy no pattern.
    """

    def __init__(self, labels: Mapping[Region, Iterable[str]] | None = None):
        self._labels: dict[Region, frozenset[str]] = {}
        if labels:
            for region, patterns in labels.items():
                self._labels[region] = frozenset(patterns)

    def matches(self, region: Region, pattern: str) -> bool:
        return pattern in self._labels.get(region, frozenset())

    def labels_of(self, region: Region) -> frozenset[str]:
        return self._labels.get(region, frozenset())

    def with_label(self, region: Region, pattern: str) -> "LabelWordIndex":
        """A copy with ``pattern`` added to ``region``'s label set."""
        labels = dict(self._labels)
        labels[region] = labels.get(region, frozenset()) | {pattern}
        return LabelWordIndex(labels)

    def restricted_to(self, regions: Iterable[Region]) -> "LabelWordIndex":
        """A copy keeping only the labels of the given regions."""
        keep = set(regions)
        return LabelWordIndex(
            {r: pats for r, pats in self._labels.items() if r in keep}
        )

    def renamed(self, mapping: Mapping[Region, Region]) -> "LabelWordIndex":
        """A copy with regions translated through ``mapping``."""
        return LabelWordIndex(
            {mapping.get(r, r): pats for r, pats in self._labels.items()}
        )

    def items(self) -> list[tuple[Region, frozenset[str]]]:
        return sorted(self._labels.items(), key=lambda kv: kv[0])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LabelWordIndex):
            return NotImplemented
        mine = {r: p for r, p in self._labels.items() if p}
        theirs = {r: p for r, p in other._labels.items() if p}
        return mine == theirs

    def __hash__(self) -> int:
        return hash(frozenset((r, p) for r, p in self._labels.items() if p))
