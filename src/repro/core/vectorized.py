"""Optional numpy-vectorized structural semi-joins.

The scalar indexed joins in :mod:`repro.core.regionset` probe one left
region at a time (two binary searches each).  For bulk analytical
workloads the same algorithm vectorizes: all probes become two
``np.searchsorted`` calls over the whole left side, and the
suffix-minimum / prefix-maximum tables come from
``np.minimum.accumulate``.  Semantics are identical — the test suite
checks exact agreement with the scalar engine — and the benchmark
ablation A2 measures the win on large sets.

numpy is an optional dependency; importing this module without it
raises ``ImportError`` with a pointed message, and nothing else in the
library depends on it.
"""

from __future__ import annotations

try:
    import numpy as np
except ImportError as exc:  # pragma: no cover - optional dependency guard
    raise ImportError(
        "repro.core.vectorized requires the optional 'numpy' dependency"
    ) from exc

from repro.core.region import Region
from repro.core.regionset import RegionSet

__all__ = [
    "vectorized_including",
    "vectorized_included_in",
    "vectorized_preceding",
    "vectorized_following",
]


def _arrays(regions: RegionSet) -> tuple["np.ndarray", "np.ndarray"]:
    ordered = regions.regions
    lefts = np.fromiter((r.left for r in ordered), dtype=np.int64, count=len(ordered))
    rights = np.fromiter((r.right for r in ordered), dtype=np.int64, count=len(ordered))
    return lefts, rights


def _suffix_min(values: "np.ndarray") -> "np.ndarray":
    """``out[i] = min(values[i:])`` with a trailing +inf sentinel."""
    out = np.empty(len(values) + 1, dtype=np.int64)
    out[-1] = np.iinfo(np.int64).max
    if len(values):
        out[:-1] = np.minimum.accumulate(values[::-1])[::-1]
    return out


def _prefix_max(values: "np.ndarray") -> "np.ndarray":
    """``out[i] = max(values[:i])`` with a leading -inf sentinel."""
    out = np.empty(len(values) + 1, dtype=np.int64)
    out[0] = np.iinfo(np.int64).min
    if len(values):
        out[1:] = np.maximum.accumulate(values)
    return out


def _select(left: RegionSet, mask: "np.ndarray") -> RegionSet:
    ordered = left.regions
    return RegionSet(ordered[i] for i in np.flatnonzero(mask))


def vectorized_including(left: RegionSet, right: RegionSet) -> RegionSet:
    """``left ⊃ right`` — identical to :meth:`RegionSet.including`."""
    if not left or not right:
        return RegionSet.empty()
    l_lefts, l_rights = _arrays(left)
    s_lefts, s_rights = _arrays(right)
    suffix = _suffix_min(s_rights)
    # (A) left(s) > left(r), right(s) <= right(r)
    idx_a = np.searchsorted(s_lefts, l_lefts, side="right")
    mask = suffix[idx_a] <= l_rights
    # (B) left(s) >= left(r), right(s) < right(r)
    idx_b = np.searchsorted(s_lefts, l_lefts, side="left")
    mask |= suffix[idx_b] < l_rights
    return _select(left, mask)


def vectorized_included_in(left: RegionSet, right: RegionSet) -> RegionSet:
    """``left ⊂ right`` — identical to :meth:`RegionSet.included_in`."""
    if not left or not right:
        return RegionSet.empty()
    l_lefts, l_rights = _arrays(left)
    s_lefts, s_rights = _arrays(right)
    prefix = _prefix_max(s_rights)
    # (A) left(s) < left(r), right(s) >= right(r)
    idx_a = np.searchsorted(s_lefts, l_lefts, side="left")
    mask = prefix[idx_a] >= l_rights
    # (B) left(s) <= left(r), right(s) > right(r)
    idx_b = np.searchsorted(s_lefts, l_lefts, side="right")
    mask |= prefix[idx_b] > l_rights
    return _select(left, mask)


def vectorized_preceding(left: RegionSet, right: RegionSet) -> RegionSet:
    """``left < right`` — identical to :meth:`RegionSet.preceding`."""
    if not left or not right:
        return RegionSet.empty()
    _, l_rights = _arrays(left)
    max_left = max(r.left for r in right.regions[-1:])
    return _select(left, l_rights < max_left)


def vectorized_following(left: RegionSet, right: RegionSet) -> RegionSet:
    """``left > right`` — identical to :meth:`RegionSet.following`."""
    if not left or not right:
        return RegionSet.empty()
    l_lefts, _ = _arrays(left)
    _, s_rights = _arrays(right)
    min_right = int(s_rights.min())
    return _select(left, l_lefts > min_right)
