"""Compiled plan execution: flat region arrays, set-at-a-time kernels,
and a register plan VM.

The paper claims the region algebra admits "a very efficient evaluation
engine"; this package takes that claim seriously.  Optimized plans from
:mod:`repro.optimize` are lowered once (:mod:`repro.vm.compiler`) into
straight-line register programs (:mod:`repro.vm.program`) of
set-at-a-time kernels over flat endpoint arrays (:mod:`repro.vm.kernels`)
and executed by a tiny VM (:mod:`repro.vm.machine`).  The AST
interpreter in :mod:`repro.algebra.evaluator` remains both the fallback
for uncompilable plans and the bit-identical equivalence oracle.
"""

from repro.vm.compiler import compile_expr
from repro.vm.machine import execute
from repro.vm.program import Instr, Program

__all__ = ["compile_expr", "execute", "Instr", "Program"]
