"""Linear register programs for the plan VM.

A :class:`Program` is a straight-line sequence of :class:`Instr`
records.  Instruction ``i`` writes register ``i`` (registers are in SSA
form — assigned exactly once, never reused), and the last register holds
the query result.  Common sub-expressions are compiled once and read
from their register thereafter, mirroring the interpreter's memo table;
the number of elided re-evaluations is recorded in
:attr:`Program.cse_hits` so executed-program statistics stay
bit-compatible with the interpreter's ``EvalStats``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["Instr", "Program", "OP_NAMES"]

# Opcodes: leaves.
OP_LOAD_NAME = 0
OP_LOAD_EMPTY = 1
OP_LOAD_CONST = 2
OP_MATCH_POINTS = 3
# Unary.
OP_SELECT = 4
OP_ORDER_BOUND_PRE = 5
OP_ORDER_BOUND_FOL = 6
# Binary set-at-a-time kernels.
OP_UNION = 7
OP_INTERSECT = 8
OP_DIFFERENCE = 9
OP_INCLUDING = 10
OP_INCLUDED_IN = 11
OP_PRECEDING = 12
OP_FOLLOWING = 13
OP_DIRECT_INCLUDING = 14
OP_DIRECT_INCLUDED = 15
# Ternary.
OP_BOTH_INCLUDED = 16

OP_NAMES = {
    OP_LOAD_NAME: "load_name",
    OP_LOAD_EMPTY: "load_empty",
    OP_LOAD_CONST: "load_const",
    OP_MATCH_POINTS: "match_points",
    OP_SELECT: "select",
    OP_ORDER_BOUND_PRE: "order_bound_preceding",
    OP_ORDER_BOUND_FOL: "order_bound_following",
    OP_UNION: "union",
    OP_INTERSECT: "intersect",
    OP_DIFFERENCE: "difference",
    OP_INCLUDING: "including",
    OP_INCLUDED_IN: "included_in",
    OP_PRECEDING: "preceding",
    OP_FOLLOWING: "following",
    OP_DIRECT_INCLUDING: "direct_including",
    OP_DIRECT_INCLUDED: "direct_included",
    OP_BOTH_INCLUDED: "both_included",
}


@dataclass(frozen=True, slots=True)
class Instr:
    """One VM instruction: ``r<dest> = op(operands…)``.

    ``label`` carries the source AST node's class name so per-op metrics
    and histograms line up with the interpreter's.  ``fires`` marks
    whether the interpreter would fire the ``evaluator.step`` fault point
    for this node (shard-planner literals and order bounds do not).
    """

    op: int
    dest: int
    a: int = -1
    b: int = -1
    c: int = -1
    arg: Any = None
    label: str = ""
    fires: bool = True

    def render(self) -> str:
        name = OP_NAMES[self.op]
        operands = [f"r{reg}" for reg in (self.a, self.b, self.c) if reg >= 0]
        if self.op == OP_LOAD_CONST:
            operands.append(f"#{self.arg}")
        elif self.arg is not None:
            operands.append(repr(self.arg))
        tail = f" {', '.join(operands)}" if operands else ""
        return f"r{self.dest} = {name}{tail}"


@dataclass(frozen=True)
class Program:
    """A compiled query plan: straight-line kernels over SSA registers."""

    instructions: tuple[Instr, ...]
    constants: tuple[Any, ...] = ()
    cse_hits: int = 0
    op_counts: dict[str, int] = field(default_factory=dict, compare=False)

    @property
    def size(self) -> int:
        return len(self.instructions)

    @property
    def n_registers(self) -> int:
        return len(self.instructions)

    def listing(self) -> tuple[str, ...]:
        """Human-readable program text, one line per instruction."""
        return tuple(ins.render() for ins in self.instructions)
