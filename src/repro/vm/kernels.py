"""Set-at-a-time kernels over flat endpoint arrays.

Every kernel consumes :class:`~repro.core.regionset.RegionSet` operands,
reads their parallel ``_lefts``/``_rights`` int arrays directly, and
returns a new set via :meth:`RegionSet._from_arrays` — no per-region
Python objects are created on the hot path.  All kernels preserve the
``(left, right)``-sorted, duplicate-free invariant, so their outputs are
bit-identical to the interpreter's (the equivalence oracle).

The containment semi-joins use *galloping* (exponential) search: the
probe lefts are scanned in ascending order, so each bisect position is
monotone non-decreasing and can be found in ``O(log gap)`` from the
previous one instead of ``O(log m)`` from scratch — ``O(n + m)`` total
when the sets interleave densely, never worse than the plain bisect.

The order operators ``<`` / ``>`` fold to O(1) scalar extremes: a single
max-left (resp. min-right) bound plus one slice or filter pass.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable

from repro.core.region import Region
from repro.core.regionset import RegionSet

__all__ = [
    "gallop_left",
    "gallop_right",
    "union",
    "intersection",
    "difference",
    "including",
    "included_in",
    "preceding",
    "following",
    "select",
    "order_bound_preceding",
    "order_bound_following",
]


def gallop_right(arr: list[int], x: int, lo: int) -> int:
    """``bisect_right(arr, x)`` given the answer is known to be ``>= lo``.

    Doubles the step from ``lo`` until it overshoots, then bisects the
    final bracket — O(log distance) instead of O(log n).
    """
    n = len(arr)
    if lo >= n or arr[lo] > x:
        return lo
    step = 1
    prev = lo
    while lo + step < n and arr[lo + step] <= x:
        prev = lo + step
        step <<= 1
    return bisect_right(arr, x, prev + 1, min(lo + step, n))


def gallop_left(arr: list[int], x: int, lo: int) -> int:
    """``bisect_left(arr, x)`` given the answer is known to be ``>= lo``."""
    n = len(arr)
    if lo >= n or arr[lo] >= x:
        return lo
    step = 1
    prev = lo
    while lo + step < n and arr[lo + step] < x:
        prev = lo + step
        step <<= 1
    return bisect_left(arr, x, prev + 1, min(lo + step, n))


# ----------------------------------------------------------------------
# Set-theoretic kernels: linear merges over the sorted (left, right) keys.
# ----------------------------------------------------------------------

def union(a: RegionSet, b: RegionSet) -> RegionSet:
    al, ar = a._lefts, a._rights
    bl, br = b._lefts, b._rights
    if not al:
        return b
    if not bl:
        return a
    out_l: list[int] = []
    out_r: list[int] = []
    push_l, push_r = out_l.append, out_r.append
    i = j = 0
    n, m = len(al), len(bl)
    while i < n and j < m:
        la, ra = al[i], ar[i]
        lb, rb = bl[j], br[j]
        if la < lb or (la == lb and ra < rb):
            push_l(la)
            push_r(ra)
            i += 1
        elif la == lb and ra == rb:
            push_l(la)
            push_r(ra)
            i += 1
            j += 1
        else:
            push_l(lb)
            push_r(rb)
            j += 1
    out_l.extend(al[i:])
    out_r.extend(ar[i:])
    out_l.extend(bl[j:])
    out_r.extend(br[j:])
    return RegionSet._from_arrays(out_l, out_r)


def intersection(a: RegionSet, b: RegionSet) -> RegionSet:
    al, ar = a._lefts, a._rights
    bl, br = b._lefts, b._rights
    if not al or not bl:
        return RegionSet.empty()
    out_l: list[int] = []
    out_r: list[int] = []
    i = j = 0
    n, m = len(al), len(bl)
    while i < n and j < m:
        la, ra = al[i], ar[i]
        lb, rb = bl[j], br[j]
        if la == lb and ra == rb:
            out_l.append(la)
            out_r.append(ra)
            i += 1
            j += 1
        elif la < lb or (la == lb and ra < rb):
            i += 1
        else:
            j += 1
    return RegionSet._from_arrays(out_l, out_r)


def difference(a: RegionSet, b: RegionSet) -> RegionSet:
    al, ar = a._lefts, a._rights
    bl, br = b._lefts, b._rights
    if not al:
        return RegionSet.empty()
    if not bl:
        return a
    out_l: list[int] = []
    out_r: list[int] = []
    i = j = 0
    n, m = len(al), len(bl)
    while i < n and j < m:
        la, ra = al[i], ar[i]
        lb, rb = bl[j], br[j]
        if la == lb and ra == rb:
            i += 1
            j += 1
        elif la < lb or (la == lb and ra < rb):
            out_l.append(la)
            out_r.append(ra)
            i += 1
        else:
            j += 1
    out_l.extend(al[i:])
    out_r.extend(ar[i:])
    return RegionSet._from_arrays(out_l, out_r)


# ----------------------------------------------------------------------
# Containment semi-joins: extreme tables + galloping search.
# ----------------------------------------------------------------------

def including(a: RegionSet, b: RegionSet) -> RegionSet:
    """``A ⊃ B``: keep ``r ∈ A`` with some ``s ∈ B``, ``r ⊃ s``.

    Same two-disjunct suffix-minimum argument as
    :meth:`RegionSet._contains_region_inside`, with both bisect frontiers
    advanced by galloping since the probe lefts ascend.
    """
    al, ar = a._lefts, a._rights
    bl = b._lefts
    if not al or not bl:
        return RegionSet.empty()
    suffix = b._ensure_suffix_min()
    out_l: list[int] = []
    out_r: list[int] = []
    push_l, push_r = out_l.append, out_r.append
    m = len(bl)
    hi = lo = 0
    for left, right in zip(al, ar):
        # (A) left(s) > left(r) and right(s) <= right(r).  The gallop
        # is inlined: the already-positioned frontier is the hot case.
        if hi < m and bl[hi] <= left:
            prev, step = hi, 1
            while hi + step < m and bl[hi + step] <= left:
                prev = hi + step
                step <<= 1
            hi = bisect_right(bl, left, prev + 1, min(hi + step, m))
        if suffix[hi] <= right:
            push_l(left)
            push_r(right)
            continue
        # (B) left(s) >= left(r) and right(s) < right(r)
        if lo < m and bl[lo] < left:
            prev, step = lo, 1
            while lo + step < m and bl[lo + step] < left:
                prev = lo + step
                step <<= 1
            lo = bisect_left(bl, left, prev + 1, min(lo + step, m))
        if suffix[lo] < right:
            push_l(left)
            push_r(right)
    return RegionSet._from_arrays(out_l, out_r)


def included_in(a: RegionSet, b: RegionSet) -> RegionSet:
    """``A ⊂ B``: keep ``r ∈ A`` with some ``s ∈ B``, ``r ⊂ s``."""
    al, ar = a._lefts, a._rights
    bl = b._lefts
    if not al or not bl:
        return RegionSet.empty()
    prefix = b._ensure_prefix_max()
    out_l: list[int] = []
    out_r: list[int] = []
    push_l, push_r = out_l.append, out_r.append
    m = len(bl)
    hi = lo = 0
    for left, right in zip(al, ar):
        # (A) left(s) < left(r) and right(s) >= right(r)
        if lo < m and bl[lo] < left:
            prev, step = lo, 1
            while lo + step < m and bl[lo + step] < left:
                prev = lo + step
                step <<= 1
            lo = bisect_left(bl, left, prev + 1, min(lo + step, m))
        if prefix[lo] >= right:
            push_l(left)
            push_r(right)
            continue
        # (B) left(s) <= left(r) and right(s) > right(r)
        if hi < m and bl[hi] <= left:
            prev, step = hi, 1
            while hi + step < m and bl[hi + step] <= left:
                prev = hi + step
                step <<= 1
            hi = bisect_right(bl, left, prev + 1, min(hi + step, m))
        if prefix[hi] > right:
            push_l(left)
            push_r(right)
    return RegionSet._from_arrays(out_l, out_r)


# ----------------------------------------------------------------------
# Order operators: folded to O(1) scalar extremes.
# ----------------------------------------------------------------------

def preceding(a: RegionSet, b: RegionSet) -> RegionSet:
    """``A < B``: keep ``r ∈ A`` with ``right(r) < max(left(B))``."""
    if not a._lefts or not b._lefts:
        return RegionSet.empty()
    return order_bound_preceding(a, b._lefts[-1])


def following(a: RegionSet, b: RegionSet) -> RegionSet:
    """``A > B``: keep ``r ∈ A`` with ``left(r) > min(right(B))``."""
    if not a._lefts or not b._lefts:
        return RegionSet.empty()
    return order_bound_following(a, b._ensure_suffix_min()[0])


def order_bound_preceding(a: RegionSet, bound: int) -> RegionSet:
    """Keep ``r ∈ A`` with ``right(r) < bound`` (scalar exchange form)."""
    al, ar = a._lefts, a._rights
    out_l: list[int] = []
    out_r: list[int] = []
    for k in range(len(al)):
        if ar[k] < bound:
            out_l.append(al[k])
            out_r.append(ar[k])
    return RegionSet._from_arrays(out_l, out_r)


def order_bound_following(a: RegionSet, bound: int) -> RegionSet:
    """Keep ``r ∈ A`` with ``left(r) > bound`` — one bisect plus a slice."""
    al = a._lefts
    idx = bisect_right(al, bound)
    if idx == 0:
        return a
    return RegionSet._from_arrays(al[idx:], a._rights[idx:])


# ----------------------------------------------------------------------
# Selection (σ_p): predicate needs the object view, output skips the sort.
# ----------------------------------------------------------------------

def select(a: RegionSet, predicate: Callable[[Region], bool]) -> RegionSet:
    out_l: list[int] = []
    out_r: list[int] = []
    for r in a.regions:
        if predicate(r):
            out_l.append(r.left)
            out_r.append(r.right)
    return RegionSet._from_arrays(out_l, out_r)
