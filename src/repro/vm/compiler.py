"""Lowering optimized algebra expressions into VM programs.

The compiler walks the expression DFS in the *same child order* as the
interpreter's ``_dispatch`` (Select → child; BothIncluded → source,
first, second; binary ops → left, right), emitting one instruction per
distinct sub-expression.  A repeated sub-expression compiles to a
register re-read and bumps ``cse_hits`` — exactly the visits the
interpreter would satisfy from its memo table — so

    ``instructions + cse_hits == interpreter nodes_evaluated``
    ``cse_hits == interpreter memo_hits``

and the executed-program statistics mirror ``EvalStats`` bit for bit.

:func:`compile_expr` returns ``None`` for expressions containing node
types the VM has no kernel for; the caller falls back to the
interpreter (which stays the semantics oracle).
"""

from __future__ import annotations

from repro.algebra import ast as A
from repro.vm import program as P
from repro.vm.program import Instr, Program

__all__ = ["compile_expr"]

_BINARY_OPS = {
    A.Union: P.OP_UNION,
    A.Intersection: P.OP_INTERSECT,
    A.Difference: P.OP_DIFFERENCE,
    A.Including: P.OP_INCLUDING,
    A.IncludedIn: P.OP_INCLUDED_IN,
    A.Preceding: P.OP_PRECEDING,
    A.Following: P.OP_FOLLOWING,
    A.DirectlyIncluding: P.OP_DIRECT_INCLUDING,
    A.DirectlyIncluded: P.OP_DIRECT_INCLUDED,
}


class _Uncompilable(Exception):
    pass


def compile_expr(expr: A.Expr) -> Program | None:
    """Lower ``expr`` to a :class:`Program`, or ``None`` if any node has
    no kernel (the interpreter fallback handles it)."""
    instrs: list[Instr] = []
    registers: dict[A.Expr, int] = {}
    constants: list[object] = []
    cse_hits = 0

    def emit(op: int, a: int = -1, b: int = -1, c: int = -1,
             arg: object = None, label: str = "", fires: bool = True) -> int:
        dest = len(instrs)
        instrs.append(Instr(op=op, dest=dest, a=a, b=b, c=c,
                            arg=arg, label=label, fires=fires))
        return dest

    def lower(e: A.Expr) -> int:
        nonlocal cse_hits
        reg = registers.get(e)
        if reg is not None:
            cse_hits += 1
            return reg
        if isinstance(e, A.NameRef):
            reg = emit(P.OP_LOAD_NAME, arg=e.name, label="NameRef")
        elif isinstance(e, A.Empty):
            reg = emit(P.OP_LOAD_EMPTY, label="Empty")
        elif isinstance(e, A.Select):
            child = lower(e.child)
            reg = emit(P.OP_SELECT, a=child, arg=e.pattern, label="Select")
        elif isinstance(e, A.MatchPoints):
            reg = emit(P.OP_MATCH_POINTS, arg=e.pattern, label="MatchPoints")
        elif isinstance(e, A.BothIncluded):
            source = lower(e.source)
            first = lower(e.first)
            second = lower(e.second)
            reg = emit(P.OP_BOTH_INCLUDED, a=source, b=first, c=second,
                       label="BothIncluded")
        elif isinstance(e, A.BinaryOp):
            left = lower(e.left)
            right = lower(e.right)
            op = _BINARY_OPS.get(type(e))
            if op is None:
                raise _Uncompilable(type(e).__name__)
            reg = emit(op, a=left, b=right, label=type(e).__name__)
        else:
            reg = _lower_shard_node(e, lower, emit, constants)
        registers[e] = reg
        return reg

    try:
        lower(expr)
    except _Uncompilable:
        return None
    op_counts: dict[str, int] = {}
    for ins in instrs:
        op_counts[ins.label] = op_counts.get(ins.label, 0) + 1
    return Program(
        instructions=tuple(instrs),
        constants=tuple(constants),
        cse_hits=cse_hits,
        op_counts=op_counts,
    )


def _lower_shard_node(e, lower, emit, constants) -> int:
    # The shard planner's node types are resolved lazily so plain
    # expressions never import the shard layer.
    from repro.core.regionset import RegionSet
    from repro.shard.rewrite import OrderBound, RegionLiteral

    if isinstance(e, RegionLiteral):
        constants.append(RegionSet(e.regions))
        return emit(P.OP_LOAD_CONST, arg=len(constants) - 1,
                    label="RegionLiteral", fires=False)
    if isinstance(e, OrderBound):
        child = lower(e.child)
        op = P.OP_ORDER_BOUND_PRE if e.kind == "preceding" else P.OP_ORDER_BOUND_FOL
        return emit(op, a=child, arg=e.bound, label="OrderBound", fires=False)
    raise _Uncompilable(type(e).__name__)
