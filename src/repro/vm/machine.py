"""The register VM: execute a compiled :class:`Program` over an instance.

One pass over the instruction list; each step checks cooperative
deadline/cancel limits, fires the fault points the interpreter would
(``evaluator.step`` per AST node, plus the VM's own ``vm.kernel`` per
kernel execution), and dispatches to a set-at-a-time kernel.  With a
metrics histogram attached, each kernel is timed individually under the
same per-op labels the interpreter uses.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING, Any

from repro.core.regionset import RegionSet
from repro.core.wordindex import TextWordIndex
from repro.errors import EvaluationError
from repro.faults import registry as _faults
from repro.vm import kernels as K
from repro.vm import program as P
from repro.vm.program import Program

if TYPE_CHECKING:
    from repro.core.instance import Instance

__all__ = ["execute"]

_both_included = None


def execute(
    program: Program,
    instance: "Instance",
    limits: Any = None,
    node_hist: Any = None,
) -> RegionSet:
    """Run ``program`` against ``instance`` and return the final register."""
    regs: list[RegionSet | None] = [None] * len(program.instructions)
    for ins in program.instructions:
        if limits is not None:
            limits.check()
        active = _faults._active
        if active is not None:
            if ins.fires:
                active.fire("evaluator.step")
            active.fire("vm.kernel")
        if node_hist is None:
            regs[ins.dest] = _step(ins, regs, instance, program.constants)
        else:
            started = perf_counter()
            regs[ins.dest] = _step(ins, regs, instance, program.constants)
            node_hist.observe(perf_counter() - started, op=ins.label)
    return regs[-1]


def _step(ins, regs, instance, constants) -> RegionSet:
    op = ins.op
    if op == P.OP_INCLUDING:
        return K.including(regs[ins.a], regs[ins.b])
    if op == P.OP_INCLUDED_IN:
        return K.included_in(regs[ins.a], regs[ins.b])
    if op == P.OP_PRECEDING:
        return K.preceding(regs[ins.a], regs[ins.b])
    if op == P.OP_FOLLOWING:
        return K.following(regs[ins.a], regs[ins.b])
    if op == P.OP_UNION:
        return K.union(regs[ins.a], regs[ins.b])
    if op == P.OP_INTERSECT:
        return K.intersection(regs[ins.a], regs[ins.b])
    if op == P.OP_DIFFERENCE:
        return K.difference(regs[ins.a], regs[ins.b])
    if op == P.OP_LOAD_NAME:
        return instance.region_set(ins.arg)
    if op == P.OP_LOAD_EMPTY:
        return RegionSet.empty()
    if op == P.OP_LOAD_CONST:
        return constants[ins.arg]
    if op == P.OP_SELECT:
        pattern = ins.arg
        return K.select(regs[ins.a], lambda r: instance.matches(r, pattern))
    if op == P.OP_MATCH_POINTS:
        word_index = instance.word_index
        if not isinstance(word_index, TextWordIndex):
            raise EvaluationError(
                "match-point queries need a text-backed word index; "
                "this instance carries an abstract label index"
            )
        return word_index.match_points(ins.arg)
    if op == P.OP_ORDER_BOUND_PRE:
        return K.order_bound_preceding(regs[ins.a], ins.arg)
    if op == P.OP_ORDER_BOUND_FOL:
        return K.order_bound_following(regs[ins.a], ins.arg)
    if op == P.OP_DIRECT_INCLUDING:
        return instance.forest().directly_including(regs[ins.a], regs[ins.b])
    if op == P.OP_DIRECT_INCLUDED:
        return instance.forest().directly_included(regs[ins.a], regs[ins.b])
    if op == P.OP_BOTH_INCLUDED:
        global _both_included
        if _both_included is None:
            from repro.algebra.evaluator import _both_included_indexed
            _both_included = _both_included_indexed
        return _both_included(regs[ins.a], regs[ins.b], regs[ins.c])
    raise EvaluationError(f"unknown VM opcode {op}")  # pragma: no cover
