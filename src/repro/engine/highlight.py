"""Rendering query results inside their document.

Turns a result region set back into annotated text — the display layer
a retrieval UI needs.  Two renderers:

* :func:`annotate` — inline markers ``⟦…⟧`` (configurable) around every
  result region, nesting-safe because results are regions of a
  hierarchical instance;
* :func:`excerpts` — one trimmed excerpt per result region, with
  ellipses, for result lists.
"""

from __future__ import annotations

from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.errors import EvaluationError

__all__ = ["annotate", "excerpts"]


def annotate(
    text: str,
    regions: RegionSet,
    open_marker: str = "⟦",
    close_marker: str = "⟧",
) -> str:
    """The document text with markers around every result region.

    Markers nest correctly for nested results.  Raises
    :class:`~repro.errors.EvaluationError` when a region falls outside
    the text, which indicates results from a different document.
    """
    for region in regions:
        if region.left < 0 or region.right >= len(text):
            raise EvaluationError(
                f"region {region} lies outside the document (length {len(text)})"
            )
    # Insert closers before openers at the same position so adjacent
    # regions render as ⟧⟦, and nested ones as ⟦⟦…⟧⟧.
    inserts: dict[int, list[str]] = {}
    for region in regions:
        inserts.setdefault(region.left, []).append(open_marker)
        inserts.setdefault(region.right + 1, []).insert(0, close_marker)
    out: list[str] = []
    for position in range(len(text) + 1):
        if position in inserts:
            closers = [m for m in inserts[position] if m == close_marker]
            openers = [m for m in inserts[position] if m == open_marker]
            out.extend(closers)
            out.extend(openers)
        if position < len(text):
            out.append(text[position])
    return "".join(out)


def excerpts(
    text: str,
    regions: RegionSet,
    max_width: int = 60,
) -> list[tuple[Region, str]]:
    """One single-line excerpt per result region, document order.

    Long regions are trimmed in the middle with an ellipsis; whitespace
    is normalized so excerpts fit result lists.
    """
    out: list[tuple[Region, str]] = []
    for region in sorted(regions, key=lambda r: (r.left, r.right)):
        snippet = " ".join(text[region.left : region.right + 1].split())
        if len(snippet) > max_width:
            half = (max_width - 1) // 2
            snippet = f"{snippet[:half]}…{snippet[-half:]}"
        out.append((region, snippet))
    return out
