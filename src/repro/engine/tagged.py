"""Indexing SGML-like tagged text.

The paper motivates region indexes with marked-up documents ("SGML
documents in general").  This module turns tagged text into a region
index instance:

* every element ``<name …> … </name>`` becomes a region named after its
  tag, spanning from the ``<`` of the opening tag to the ``>`` of the
  closing tag — tags occupy positions, so nesting is always *strict*;
* self-closing elements ``<name/>`` become leaf regions over their tag;
* words outside markup become word-index tokens at their original
  positions (attribute text inside tags is part of the markup and is
  not indexed);
* ``<!-- comments -->`` are skipped entirely.

The result is a :class:`TaggedDocument` bundling the original text, the
instance, and the element tree, ready for querying.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import TextWordIndex, Token
from repro.errors import ParseError

__all__ = ["TaggedDocument", "parse_tagged_text"]

_TAG_RE = re.compile(
    r"""
    <!--.*?-->                                   # comment
  | </(?P<close>[A-Za-z_][A-Za-z0-9_]*)\s*>      # closing tag
  | <(?P<self>[A-Za-z_][A-Za-z0-9_]*)(?P<sattrs>[^<>]*)/>   # self-closing
  | <(?P<open>[A-Za-z_][A-Za-z0-9_]*)(?P<attrs>[^<>]*)>     # opening tag
    """,
    re.VERBOSE | re.DOTALL,
)

_WORD_RE = re.compile(r"\S+")


@dataclass(frozen=True)
class TaggedDocument:
    """A parsed tagged document: raw text plus its region index."""

    text: str
    instance: Instance

    def extract(self, region: Region) -> str:
        """The raw text a region covers (inclusive endpoints)."""
        return self.text[region.left : region.right + 1]


def parse_tagged_text(text: str) -> TaggedDocument:
    """Parse tagged text into a :class:`TaggedDocument`.

    Raises :class:`~repro.errors.ParseError` on mismatched or unclosed
    tags.  Build time lands in the process-wide
    ``index_build_seconds{kind=tagged}`` histogram.
    """
    from time import perf_counter

    from repro.obs.metrics import INDEX_BUILD_SECONDS, global_registry

    started = perf_counter()
    regions: dict[str, list[Region]] = {}
    tokens: list[Token] = []
    stack: list[tuple[str, int]] = []  # (tag name, position of '<')
    position = 0
    for match in _TAG_RE.finditer(text):
        _collect_words(text, position, match.start(), tokens)
        position = match.end()
        if match.group("close") is not None:
            name = match.group("close")
            if not stack or stack[-1][0] != name:
                raise ParseError(
                    f"unexpected closing tag </{name}>", match.start()
                )
            _, start = stack.pop()
            regions.setdefault(name, []).append(Region(start, match.end() - 1))
        elif match.group("self") is not None:
            name = match.group("self")
            regions.setdefault(name, []).append(
                Region(match.start(), match.end() - 1)
            )
        elif match.group("open") is not None:
            stack.append((match.group("open"), match.start()))
    if stack:
        raise ParseError(f"unclosed tag <{stack[-1][0]}>", stack[-1][1])
    _collect_words(text, position, len(text), tokens)
    instance = Instance(
        {name: RegionSet(rs) for name, rs in sorted(regions.items())},
        TextWordIndex(tokens),
    )
    global_registry().histogram(INDEX_BUILD_SECONDS).observe(
        perf_counter() - started, kind="tagged"
    )
    return TaggedDocument(text, instance)


def _collect_words(text: str, start: int, end: int, out: list[Token]) -> None:
    for match in _WORD_RE.finditer(text, start, end):
        out.append((match.group(), match.start(), match.end() - 1))
