"""Command-line interface: index, query, explain, stats, trace, querylog,
serve, loadgen, top, chaos.

A small operational wrapper over :class:`repro.engine.Engine`::

    python -m repro index  document.xml --format tagged -o doc.index.json
    python -m repro query  doc.index.json 'speech containing (speaker @ "ROMEO")'
    python -m repro query  doc.index.json 'Name within Proc' --text src.prog
    python -m repro explain doc.index.json 'Name within Proc_header within Proc'
    python -m repro stats  doc.index.json --telemetry
    python -m repro trace  doc.index.json 'speech within scene'
    python -m repro querylog doc.index.json 'speech' 'scene' --optimize
    python -m repro serve  doc.index.json --port 8600 --workers 4
    python -m repro loadgen --port 8600 --mix play --qps 25 --duration 5
    python -m repro chaos --seed 0 --fault-seconds 4

``serve`` runs the concurrent query service of :mod:`repro.server`
(endpoints, capacity knobs, and cache semantics: ``docs/server.md``);
``loadgen`` replays a named query mix against it and reports
p50/p95/p99 latencies; ``chaos`` runs the self-contained fault-injection
scenario of :mod:`repro.faults.chaos` (see ``docs/robustness.md``) and
exits non-zero if any resilience invariant is violated.

``index --format source`` uses the toy program language (Figure 1
structure); ``explain`` applies the Figure 1 RIG automatically for
source-derived indexes (``--rig figure1``).

The observability commands (``docs/observability.md``) ride on the
engine's telemetry layer: ``trace`` runs one query with span collection
on and prints the span tree (inclusive times, so children sum to at
most their parent); ``querylog`` runs a batch of queries and dumps the
engine's structured query log; ``stats --telemetry`` appends the
metrics snapshot.  All three speak ``--json`` for benchmarks and
scripts.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.engine.session import Engine
from repro.errors import ReproError
from repro.rig.graph import figure_1_rig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Region-algebra text indexing and querying"
    )
    commands = parser.add_subparsers(dest="command", required=True)

    index = commands.add_parser("index", help="build an index from a text file")
    index.add_argument("input", type=Path, help="document to index")
    index.add_argument(
        "--format",
        choices=("tagged", "source"),
        default="tagged",
        help="input format (default: tagged)",
    )
    index.add_argument(
        "-o", "--output", type=Path, required=True, help="index file to write"
    )

    query = commands.add_parser("query", help="run a query against an index")
    query.add_argument("index", type=Path)
    query.add_argument("query", help="region-algebra query text")
    query.add_argument("--optimize", action="store_true", help="optimize first")
    query.add_argument(
        "--rig", choices=("figure1",), help="schema graph for optimization"
    )
    query.add_argument(
        "--text", type=Path, help="original document, to print matched text"
    )
    query.add_argument("--json", action="store_true", help="machine-readable output")
    query.add_argument(
        "--profile",
        action="store_true",
        help="print per-operator cardinalities and timings",
    )
    query.add_argument(
        "--limit",
        type=int,
        default=None,
        help="print at most this many regions (document order)",
    )
    query.add_argument(
        "--annotate",
        action="store_true",
        help="print the whole document with result regions marked "
        "(requires --text)",
    )
    query.add_argument(
        "--shards",
        type=int,
        default=None,
        help="evaluate with sharded scatter-gather over K segments",
    )

    explain = commands.add_parser("explain", help="show the optimizer's plan")
    explain.add_argument("index", type=Path)
    explain.add_argument("query")
    explain.add_argument("--rig", choices=("figure1",), default="figure1")

    stats = commands.add_parser("stats", help="print index statistics")
    stats.add_argument("index", type=Path)
    stats.add_argument("--json", action="store_true")
    stats.add_argument(
        "--telemetry",
        action="store_true",
        help="include the engine's metrics snapshot (index build timings)",
    )
    stats.add_argument(
        "--shards",
        type=int,
        default=None,
        help="partition into K shards and report the per-shard summary",
    )

    trace = commands.add_parser(
        "trace", help="run a query with tracing on and print the span tree"
    )
    trace.add_argument("index", type=Path)
    trace.add_argument("query", help="region-algebra query text")
    trace.add_argument("--optimize", action="store_true", help="optimize first")
    trace.add_argument(
        "--rig", choices=("figure1",), help="schema graph for optimization"
    )
    trace.add_argument("--json", action="store_true", help="machine-readable output")

    querylog = commands.add_parser(
        "querylog", help="run queries and dump the structured query log"
    )
    querylog.add_argument("index", type=Path)
    querylog.add_argument("queries", nargs="+", help="queries to run, in order")
    querylog.add_argument("--optimize", action="store_true", help="optimize each")
    querylog.add_argument(
        "--rig", choices=("figure1",), help="schema graph for optimization"
    )
    querylog.add_argument("--json", action="store_true", help="machine-readable output")
    querylog.add_argument(
        "--capacity",
        type=int,
        default=None,
        help="query-log ring-buffer capacity (default: engine default)",
    )

    kwic = commands.add_parser(
        "kwic", help="keyword-in-context lines for a pattern in a document"
    )
    kwic.add_argument("input", type=Path, help="document to search")
    kwic.add_argument("pattern", help="word pattern (literal, prefix*, glob)")
    kwic.add_argument(
        "--format", choices=("tagged", "source"), default="tagged"
    )
    kwic.add_argument("--width", type=int, default=24, help="context width")

    serve = commands.add_parser(
        "serve",
        help="run the concurrent query service (docs/server.md)",
    )
    serve.add_argument(
        "corpora",
        nargs="*",
        type=Path,
        help="index files to serve (name = file stem); see also --synthetic",
    )
    serve.add_argument(
        "--synthetic",
        action="append",
        choices=("play", "dictionary", "report", "source"),
        default=None,
        help="also serve a generated corpus (repeatable)",
    )
    serve.add_argument("--scale", type=int, default=4, help="synthetic size")
    serve.add_argument("--seed", type=int, default=2024)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8600, help="0 = any free port")
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        help="waiting requests beyond which new ones get 429",
    )
    serve.add_argument("--cache-capacity", type=int, default=512)
    serve.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    serve.add_argument(
        "--no-vm",
        action="store_true",
        help="disable compiled plan execution (repro.vm); always interpret",
    )
    serve.add_argument(
        "--deadline",
        type=float,
        default=5.0,
        help="default per-query deadline, seconds",
    )
    serve.add_argument(
        "--max-deadline",
        type=float,
        default=60.0,
        help="largest deadline a request may ask for",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="per-corpus shard count for scatter-gather evaluation",
    )
    serve.add_argument(
        "--optimize", action="store_true", help="optimize queries by default"
    )
    serve.add_argument(
        "--topology",
        default=None,
        metavar="GxR",
        help="serve through a backend topology of G shard groups with R "
        "replicas each, e.g. 2x2 (docs/server.md)",
    )
    serve.add_argument(
        "--backend-mode",
        choices=("inprocess", "http"),
        default="inprocess",
        help="where backend nodes live: this process, or supervised "
        "repro-serve subprocesses",
    )
    serve.add_argument(
        "--backend-nodes",
        type=int,
        default=None,
        help="backend node count (default: the R of --topology)",
    )
    serve.add_argument(
        "--hedge-budget",
        type=float,
        default=0.1,
        help="hedged requests as a fraction of primary calls (0 disables)",
    )
    # Hidden: how a supervisor hands corpora to backend subprocesses.
    serve.add_argument(
        "--corpus-json",
        action="append",
        default=None,
        help=argparse.SUPPRESS,
    )
    serve.add_argument(
        "--ingest",
        action="store_true",
        help="accept writes on POST /ingest (docs/server.md)",
    )
    serve.add_argument(
        "--ingest-dir",
        type=Path,
        default=None,
        help="directory for WALs and checkpoints (default: a temp dir "
        "that vanishes on shutdown)",
    )
    serve.add_argument(
        "--no-ingest-fsync",
        action="store_true",
        help="skip fsync on WAL commits (faster, loses the crash-"
        "durability guarantee; tests only)",
    )
    serve.add_argument(
        "--compaction-interval",
        type=float,
        default=5.0,
        help="seconds between background compactor ticks",
    )
    serve.add_argument(
        "--no-compaction",
        action="store_true",
        help="disable the background compactor (POST /compact still works)",
    )
    serve.add_argument(
        "--no-replication",
        action="store_true",
        help="serve HTTP backends without WAL log shipping; ingest on "
        "remote topologies then answers 409 ingest_unreplicated",
    )
    serve.add_argument(
        "--replication-interval",
        type=float,
        default=2.0,
        help="seconds between anti-entropy sweeps over backend replicas",
    )
    serve.add_argument(
        "--trace", action="store_true", help="collect span trees per request"
    )
    serve.add_argument(
        "--trace-sample",
        type=float,
        default=0.1,
        help="head-sampling rate for per-operator trace detail (0..1)",
    )
    serve.add_argument(
        "--verbose", action="store_true", help="log every HTTP request"
    )

    loadgen = commands.add_parser(
        "loadgen", help="replay a query mix against a running server"
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument("--corpus", default=None, help="corpus to query")
    loadgen.add_argument(
        "--mix",
        choices=("play", "source", "dictionary", "report"),
        default=None,
        help="named query mix from repro.workloads",
    )
    loadgen.add_argument(
        "--query",
        action="append",
        default=None,
        help="literal query to add to the mix (repeatable)",
    )
    loadgen.add_argument("--qps", type=float, default=20.0)
    loadgen.add_argument("--duration", type=float, default=3.0)
    loadgen.add_argument("--concurrency", type=int, default=4)
    loadgen.add_argument("--optimize", action="store_true")
    loadgen.add_argument(
        "--no-cache", action="store_true", help="ask the server to skip its cache"
    )
    loadgen.add_argument("--seed", type=int, default=7)
    loadgen.add_argument(
        "--ingest-rate",
        type=float,
        default=0.0,
        help="writes per second to POST /ingest alongside the query mix "
        "(0 = read-only; needs a server started with --ingest)",
    )
    loadgen.add_argument("--json", action="store_true")

    ingest = commands.add_parser(
        "ingest",
        help="commit a mutation batch against a running server (docs/server.md)",
    )
    ingest.add_argument("corpus", help="corpus to write to")
    ingest.add_argument("--host", default="127.0.0.1")
    ingest.add_argument("--port", type=int, required=True)
    ingest.add_argument(
        "--append",
        action="append",
        nargs=2,
        metavar=("ID", "PATH"),
        default=None,
        help="append the tagged text in PATH as document ID (repeatable)",
    )
    ingest.add_argument(
        "--update",
        action="append",
        nargs=2,
        metavar=("ID", "PATH"),
        default=None,
        help="replace document ID with the tagged text in PATH (repeatable)",
    )
    ingest.add_argument(
        "--delete",
        action="append",
        metavar="ID",
        default=None,
        help="tombstone document ID (repeatable)",
    )
    ingest.add_argument(
        "--ops",
        type=Path,
        default=None,
        help="JSON file holding a full ops list (overrides the flags above)",
    )
    ingest.add_argument("--json", action="store_true")

    compact = commands.add_parser(
        "compact",
        help="merge a corpus's ingest segments and checkpoint its WAL",
    )
    compact.add_argument("corpus", help="corpus to compact")
    compact.add_argument("--host", default="127.0.0.1")
    compact.add_argument("--port", type=int, required=True)
    compact.add_argument("--json", action="store_true")

    backends = commands.add_parser(
        "backends",
        help="show a running server's backend topology (docs/server.md)",
    )
    backends.add_argument("--host", default="127.0.0.1")
    backends.add_argument("--port", type=int, required=True)
    backends.add_argument("--json", action="store_true")

    top = commands.add_parser(
        "top",
        help="live terminal dashboard for a running server (docs/observability.md)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, required=True)
    top.add_argument(
        "--interval", type=float, default=2.0, help="seconds between refreshes"
    )
    top.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="stop after N frames (default: run until ctrl-c)",
    )
    top.add_argument(
        "--json", action="store_true", help="one JSON frame per line"
    )

    chaos = commands.add_parser(
        "chaos",
        help="run the fault-injection scenario (docs/robustness.md)",
    )
    chaos.add_argument(
        "--mode",
        choices=("service", "backend-kill", "ingest", "replication"),
        default="service",
        help="service = fault-point injection against an in-process "
        "service; backend-kill = SIGKILL shard backend subprocesses "
        "under load; ingest = concurrent writes under WAL faults and a "
        "mid-run restart, verified against a rebuilt-from-scratch "
        "oracle; replication = writes against a replicated HTTP "
        "topology with ship faults and a replica SIGKILL, verified for "
        "read-your-writes and bit-identical convergence "
        "(docs/robustness.md)",
    )
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--scale", type=int, default=2, help="corpus size")
    chaos.add_argument(
        "--shards",
        type=int,
        default=2,
        help="per-corpus shard count the service evaluates with",
    )
    chaos.add_argument("--qps", type=float, default=60.0)
    chaos.add_argument("--concurrency", type=int, default=4)
    chaos.add_argument("--warmup-seconds", type=float, default=1.0)
    chaos.add_argument("--fault-seconds", type=float, default=4.0)
    chaos.add_argument("--recovery-seconds", type=float, default=3.0)
    chaos.add_argument(
        "--fault-rate",
        type=float,
        default=0.05,
        help="probability for the storage fault points; evaluator and "
        "kill rates scale down from it",
    )
    chaos.add_argument(
        "--no-disk-corruption",
        action="store_true",
        help="skip the deliberate on-disk index corruption",
    )
    chaos.add_argument("--json", action="store_true")
    return parser


def _load_engine(
    path: Path, rig_name: str | None, shards: int | None = None
) -> Engine:
    rig = figure_1_rig() if rig_name == "figure1" else None
    return Engine.load(path, rig=rig, shards=shards)


def _shard_summary_lines(summary: dict) -> list[str]:
    """Human-readable partition summary for ``query``/``stats``."""
    lines = [
        f"shards: {len(summary['segments'])} segment(s) "
        f"(requested {summary['requested']}), {summary['cuts']} cut(s), "
        f"{len(summary['boundary_regions'])} boundary region pair(s)"
    ]
    for segment in summary["segments"]:
        left, right = segment["span"]
        span = f"[{left if left is not None else '?'},{right if right is not None else '?'}]"
        lines.append(
            f"  shard {segment['index']}: {segment['roots']} root(s), "
            f"{segment['regions']} region(s), spans {span}"
        )
    return lines


def _cmd_index(args: argparse.Namespace) -> int:
    text = args.input.read_text(encoding="utf-8")
    if args.format == "tagged":
        engine = Engine.from_tagged_text(text)
    else:
        engine = Engine.from_source(text)
    engine.save(args.output)
    stats = engine.statistics()
    print(f"indexed {stats['total']} regions -> {args.output}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    engine = _load_engine(args.index, args.rig, shards=args.shards)
    if getattr(args, "profile", False):
        from repro.algebra.profile import profile

        report = profile(args.query, engine.instance)
        print(report)
        print(
            f"total: {report.total_seconds * 1e6:.0f} µs, "
            f"{report.cache_hits} memo hit(s)"
        )
        return 0
    result = engine.query(args.query, optimize_query=args.optimize)
    regions = sorted(result, key=lambda r: (r.left, r.right))
    limit = getattr(args, "limit", None)
    shown = regions if limit is None else regions[:limit]
    if args.json:
        print(json.dumps([[r.left, r.right] for r in shown]))
        return 0
    text = args.text.read_text(encoding="utf-8") if args.text else None
    if getattr(args, "annotate", False):
        if text is None:
            print("error: --annotate requires --text", file=sys.stderr)
            return 1
        from repro.core.regionset import RegionSet
        from repro.engine.highlight import annotate

        print(annotate(text, RegionSet(shown)))
        return 0
    print(f"{len(regions)} region(s)")
    if engine.shard_executor is not None:
        for line in _shard_summary_lines(
            engine.shard_executor.partition.summary()
        ):
            print(line)
    regions = shown
    for region in regions:
        if text is not None:
            snippet = text[region.left : region.right + 1]
            snippet = " ".join(snippet.split())
            if len(snippet) > 70:
                snippet = snippet[:67] + "..."
            print(f"  [{region.left},{region.right}] {snippet}")
        else:
            print(f"  [{region.left},{region.right}]")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    engine = _load_engine(args.index, args.rig)
    print(engine.explain(args.query))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    engine = _load_engine(args.index, None, shards=args.shards)
    stats = engine.statistics()
    telemetry = getattr(args, "telemetry", False)
    if telemetry:
        stats["telemetry"] = engine.telemetry()
    if args.json:
        print(json.dumps(stats))
        return 0
    print(f"regions: {stats['total']}, nesting depth: {stats['nesting_depth']}")
    for name, count in sorted(stats["regions"].items()):
        print(f"  {name:20s} {count}")
    if "shards" in stats:
        for line in _shard_summary_lines(stats["shards"]):
            print(line)
    if telemetry:
        histograms = stats["telemetry"]["metrics"]["histograms"]
        for label, series in histograms.get("index_build_seconds", {}).items():
            print(
                f"  index build ({label})  {series['sum'] * 1e3:.2f} ms "
                f"over {series['count']} build(s)"
            )
    return 0


def _span_tree_lines(span, depth: int, lines: list[str]) -> None:
    label = span.name
    attrs = span.attributes
    if "cardinality" in attrs:
        label += f" -> {attrs['cardinality']} region(s)"
    if attrs.get("cached"):
        label += " (cached)"
    lines.append(f"{'  ' * depth}{label}  {span.duration * 1e6:.0f} µs")
    for child in span.children:
        _span_tree_lines(child, depth + 1, lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.trace import span_to_dict

    engine = _load_engine(args.index, args.rig)
    engine.enable_tracing()
    result = engine.query(args.query, optimize_query=args.optimize)
    root = engine.tracer.last_root
    assert root is not None  # tracing was just enabled
    if args.json:
        print(json.dumps(span_to_dict(root)))
        return 0
    lines: list[str] = []
    _span_tree_lines(root, 0, lines)
    print("\n".join(lines))
    eval_spans = [
        s for s in root.walk() if s.name.startswith("eval.")
    ]
    total = root.duration
    evaluated = sum(s.duration for s in eval_spans if s.parent_id == root.span_id)
    print(
        f"{len(result)} region(s) in {total * 1e6:.0f} µs "
        f"({len(eval_spans)} operator span(s), "
        f"evaluation {evaluated / total * 100 if total else 0:.0f}% of total)"
    )
    return 0


def _cmd_querylog(args: argparse.Namespace) -> int:
    from repro.engine.storage import load_instance
    from repro.obs import Telemetry

    rig = figure_1_rig() if args.rig == "figure1" else None
    if args.capacity is not None and args.capacity < 1:
        print("error: --capacity must be positive", file=sys.stderr)
        return 1
    telemetry = (
        Telemetry(query_log_capacity=args.capacity)
        if args.capacity is not None
        else None
    )
    engine = Engine(load_instance(args.index), rig=rig, telemetry=telemetry)
    for query in args.queries:
        engine.query(query, optimize_query=args.optimize)
    records = [record.to_dict() for record in engine.query_log]
    if args.json:
        print(
            json.dumps(
                {"summary": engine.query_log.summary(), "records": records}
            )
        )
        return 0
    for record in records:
        error = record["cardinality_error"]
        line = (
            f"[{record['kind']}] {record['query']!r} -> plan {record['plan']!r}: "
            f"{record['cardinality']} region(s), "
            f"{record['seconds'] * 1e6:.0f} µs, "
            f"{record['memo_hits']} memo hit(s)"
        )
        if error is not None:
            line += f", card.err {error:.2f}"
        if record.get("trace_id"):
            line += f", trace {record['trace_id']}"
        print(line)
    summary = engine.query_log.summary()
    print(
        f"{summary['retained']} record(s) retained "
        f"({summary['evicted']} evicted, capacity {summary['capacity']})"
    )
    return 0


def _cmd_kwic(args: argparse.Namespace) -> int:
    text = args.input.read_text(encoding="utf-8")
    if args.format == "tagged":
        engine = Engine.from_tagged_text(text)
    else:
        engine = Engine.from_source(text)
    lines = engine.keyword_in_context(args.pattern, width=args.width)
    for point, snippet in sorted(lines, key=lambda pair: pair[0].left):
        print(f"  [{point.left:6d}] …{snippet}…")
    print(f"{len(lines)} occurrence(s) of {args.pattern!r}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from repro.server import CorpusSpec, QueryService, ServerConfig, create_server

    specs = [
        CorpusSpec(name=path.name.split(".")[0], kind="index", path=str(path))
        for path in args.corpora
    ]
    for kind in args.synthetic or ():
        specs.append(
            CorpusSpec(
                name=kind,
                kind="synthetic",
                path=kind,
                seed=args.seed,
                scale=args.scale,
            )
        )
    for raw in args.corpus_json or ():
        # The supervisor's wire format: one CorpusSpec as JSON per flag.
        specs.append(CorpusSpec(**json.loads(raw)))
    if not specs:
        print(
            "error: nothing to serve (pass index files and/or --synthetic)",
            file=sys.stderr,
        )
        return 1
    groups, replicas = 1, 1
    if args.topology is not None:
        try:
            left, _, right = args.topology.lower().partition("x")
            groups, replicas = int(left), int(right)
        except ValueError:
            print(
                f"error: --topology wants GxR (e.g. 2x2), got {args.topology!r}",
                file=sys.stderr,
            )
            return 1
    nodes = args.backend_nodes
    if nodes is None:
        nodes = replicas if args.topology is not None else 0
    config = ServerConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_capacity=args.cache_capacity,
        cache_enabled=not args.no_cache,
        default_deadline=args.deadline,
        max_deadline=args.max_deadline,
        optimize_default=args.optimize,
        tracing=args.trace,
        trace_sample_rate=args.trace_sample,
        vm_enabled=not args.no_vm,
        corpora=tuple(specs),
        shards=args.shards,
        backend_nodes=nodes,
        backend_groups=groups,
        backend_replicas=replicas,
        backend_mode=args.backend_mode,
        backend_hedge_budget=args.hedge_budget,
        ingest_enabled=args.ingest,
        ingest_dir=str(args.ingest_dir) if args.ingest_dir else None,
        ingest_fsync=not args.no_ingest_fsync,
        compaction_enabled=not args.no_compaction,
        compaction_interval=args.compaction_interval,
        replication_enabled=not args.no_replication,
        replication_interval=args.replication_interval,
    )
    service = QueryService(config)
    server = create_server(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    names = ", ".join(service.corpus_names)
    print(
        f"serving {len(specs)} corpus(es) [{names}] on "
        f"http://{args.host}:{server.bound_port}  "
        f"({config.workers} workers, queue {config.queue_depth}, "
        f"cache {'off' if args.no_cache else config.cache_capacity})",
        flush=True,
    )
    if config.backend_nodes:
        print(
            f"backend topology: {config.backend_groups} group(s) x "
            f"{config.backend_replicas} replica(s) on "
            f"{config.backend_nodes} {config.backend_mode} node(s)",
            flush=True,
        )
    if config.ingest_enabled:
        where = config.ingest_dir or "a temporary directory"
        print(
            f"ingest enabled: WALs in {where}, compaction "
            f"{'off' if not config.compaction_enabled else f'every {config.compaction_interval:g}s'}",
            flush=True,
        )
    # serve_forever runs on a helper thread so the main thread can wait
    # for SIGINT/SIGTERM and drive one clean shutdown path for both.
    stop = threading.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        signal.signal(signum, lambda *_: stop.set())
    thread = server.serve_in_background()
    stop.wait()
    server.stop()
    thread.join(timeout=5.0)
    requests = service.telemetry.metrics.counter("server_requests_total")
    print(f"shut down cleanly after {requests.total():.0f} request(s)")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.server.loadgen import run_load
    from repro.workloads.queries import QUERY_MIXES

    mix: dict[str, str] = {}
    if args.mix:
        mix.update(QUERY_MIXES[args.mix])
    for i, text in enumerate(args.query or ()):
        mix[f"query_{i}"] = text
    if not mix:
        print("error: pass --mix and/or --query", file=sys.stderr)
        return 1
    result = run_load(
        args.host,
        args.port,
        mix,
        corpus=args.corpus,
        qps=args.qps,
        duration=args.duration,
        concurrency=args.concurrency,
        optimize=args.optimize,
        use_cache=not args.no_cache,
        seed=args.seed,
        ingest_rate=args.ingest_rate,
    )
    if args.json:
        print(json.dumps(result.summary()))
    else:
        print(result.format_report())
    # Non-zero exit when nothing succeeded, so smoke scripts fail loudly.
    return 0 if result.status_counts.get("200", 0) > 0 else 1


def _post_json(host: str, port: int, path: str, body: dict) -> tuple[int, dict]:
    """POST a JSON body, returning ``(status, parsed_response)`` —
    error statuses come back as values (their envelope carries the
    machine-readable ``code``), not exceptions."""
    import http.client

    connection = http.client.HTTPConnection(host, port, timeout=30.0)
    try:
        connection.request(
            "POST",
            path,
            body=json.dumps(body),
            headers={"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        payload = response.read()
        try:
            parsed = json.loads(payload.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError):
            parsed = {"error": payload.decode("utf-8", "replace")}
        return response.status, parsed
    finally:
        connection.close()


def _cmd_ingest(args: argparse.Namespace) -> int:
    if args.ops is not None:
        ops = json.loads(args.ops.read_text(encoding="utf-8"))
    else:
        ops = []
        for doc_id, path in args.append or ():
            ops.append(
                {
                    "op": "append",
                    "id": doc_id,
                    "text": Path(path).read_text(encoding="utf-8"),
                }
            )
        for doc_id, path in args.update or ():
            ops.append(
                {
                    "op": "update",
                    "id": doc_id,
                    "text": Path(path).read_text(encoding="utf-8"),
                }
            )
        for doc_id in args.delete or ():
            ops.append({"op": "delete", "id": doc_id})
    if not ops:
        print(
            "error: nothing to do (pass --append/--update/--delete or --ops)",
            file=sys.stderr,
        )
        return 1
    status, body = _post_json(
        args.host, args.port, "/ingest", {"corpus": args.corpus, "ops": ops}
    )
    if args.json:
        print(json.dumps(body))
    elif status == 200:
        print(
            f"committed batch {body['batch_seq']} ({body['applied']} op(s)) "
            f"to {body['corpus']}: generation {body['generation']}, "
            f"{body['documents']} live doc(s), {body['segments']} segment(s), "
            f"{body['tombstones']} tombstone(s)"
        )
    else:
        print(
            f"error: {body.get('error')} (code {body.get('code')}, "
            f"http {status})",
            file=sys.stderr,
        )
    return 0 if status == 200 else 1


def _cmd_compact(args: argparse.Namespace) -> int:
    status, body = _post_json(
        args.host, args.port, "/compact", {"corpus": args.corpus}
    )
    if args.json:
        print(json.dumps(body))
    elif status == 200:
        merged = body.get("merged_segments")
        action = (
            f"merged {merged} segment(s), dropped "
            f"{body.get('dropped_tombstones', 0)} tombstone(s)"
            if body["compacted"]
            else "nothing to merge"
        )
        checkpoint = (
            "checkpointed + truncated WAL"
            if body["checkpointed"]
            else "WAL already empty"
        )
        print(f"{body['corpus']}: {action}; {checkpoint}")
    else:
        print(
            f"error: {body.get('error')} (code {body.get('code')}, "
            f"http {status})",
            file=sys.stderr,
        )
    return 0 if status == 200 else 1


def _cmd_backends(args: argparse.Namespace) -> int:
    import urllib.request

    url = f"http://{args.host}:{args.port}/backends"
    with urllib.request.urlopen(url, timeout=5.0) as response:
        info = json.loads(response.read().decode("utf-8"))
    if args.json:
        print(json.dumps(info))
        return 0
    if not info.get("enabled"):
        print("backend topology: disabled (single-process evaluation)")
        return 0
    hedge = info.get("hedge", {})
    print(
        f"backend topology: {info.get('groups')} group(s) x "
        f"{info.get('replicas')} replica(s), mode {info.get('mode')}"
    )
    print(
        f"hedging: budget {hedge.get('budget')} "
        f"(p{int(100 * (hedge.get('quantile') or 0))} trigger, "
        f"{hedge.get('hedges', 0)} hedged / {hedge.get('primaries', 0)} primary)"
    )
    for node in info.get("nodes", ()):
        breaker = node.get("breaker", {})
        latency = node.get("latency_ms", {})
        address = f" {node['address']}" if "address" in node else ""
        print(
            f"  {node.get('node')}{address}: {breaker.get('state', '?')}, "
            f"{node.get('requests', 0)} request(s), "
            f"p50 {latency.get('p50')}ms p95 {latency.get('p95')}ms"
        )
    for process in info.get("processes", ()):
        state = "alive" if process.get("alive") else "dead"
        print(
            f"  process {process.get('node')} pid {process.get('pid')}: "
            f"{state}, {process.get('respawns', 0)} respawn(s)"
        )
    placements = info.get("placement", {})
    for corpus, by_group in sorted(placements.items()):
        owners = ", ".join(
            f"g{group}->{'/'.join(nodes)}"
            for group, nodes in sorted(by_group.items(), key=lambda kv: int(kv[0]))
        )
        print(f"  placement[{corpus}]: {owners}")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.server.dashboard import run_top

    if args.interval <= 0:
        print("error: --interval must be positive", file=sys.stderr)
        return 1
    run_top(
        args.host,
        args.port,
        interval=args.interval,
        iterations=args.iterations,
        json_output=args.json,
    )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    if args.mode == "backend-kill":
        from repro.faults.backendchaos import (
            BackendChaosConfig,
            run_backend_chaos,
        )

        backend_config = BackendChaosConfig(
            seed=args.seed,
            scale=args.scale,
            groups=max(2, args.shards),
            qps=args.qps,
            concurrency=args.concurrency,
            warmup_seconds=args.warmup_seconds,
            kill_seconds=args.fault_seconds,
            recovery_seconds=args.recovery_seconds,
        )
        backend_report = run_backend_chaos(backend_config)
        if args.json:
            print(json.dumps(backend_report.summary()))
        else:
            print(backend_report.format_report())
        return 0 if backend_report.ok else 1

    if args.mode == "replication":
        from repro.faults.replicationchaos import (
            ReplicationChaosConfig,
            run_replication_chaos,
        )

        replication_config = ReplicationChaosConfig(
            seed=args.seed,
            scale=args.scale,
            groups=max(2, args.shards),
            qps=args.qps,
            concurrency=args.concurrency,
            warmup_seconds=args.warmup_seconds,
            fault_seconds=args.fault_seconds,
            recovery_seconds=args.recovery_seconds,
            # Ship batches are low-volume like WAL records; scale the
            # shared --fault-rate up so a short run still fires faults.
            ship_fault_rate=min(0.9, args.fault_rate * 7.0),
        )
        replication_report = run_replication_chaos(replication_config)
        if args.json:
            print(json.dumps(replication_report.summary()))
        else:
            print(replication_report.format_report())
        return 0 if replication_report.ok else 1

    if args.mode == "ingest":
        from repro.faults.ingestchaos import (
            IngestChaosConfig,
            run_ingest_chaos,
        )

        ingest_config = IngestChaosConfig(
            seed=args.seed,
            scale=args.scale,
            qps=args.qps,
            concurrency=args.concurrency,
            warmup_seconds=args.warmup_seconds,
            fault_seconds=args.fault_seconds,
            recovery_seconds=args.recovery_seconds,
            # The shared --fault-rate is calibrated for high-volume read
            # paths; WAL records are only a few per second, so scale it
            # up to get a comparable number of fires per run.
            wal_fault_rate=min(0.9, args.fault_rate * 7.0),
        )
        ingest_report = run_ingest_chaos(ingest_config)
        if args.json:
            print(json.dumps(ingest_report.summary()))
        else:
            print(ingest_report.format_report())
        return 0 if ingest_report.ok else 1

    from repro.faults.chaos import ChaosConfig, run_chaos

    config = ChaosConfig(
        seed=args.seed,
        scale=args.scale,
        shards=args.shards,
        qps=args.qps,
        concurrency=args.concurrency,
        warmup_seconds=args.warmup_seconds,
        fault_seconds=args.fault_seconds,
        recovery_seconds=args.recovery_seconds,
        storage_fault_rate=args.fault_rate,
        evaluator_fault_rate=args.fault_rate / 12.5,
        kill_rate=args.fault_rate / 5.0,
        corrupt_disk=not args.no_disk_corruption,
    )
    report = run_chaos(config)
    if args.json:
        print(json.dumps(report.summary()))
    else:
        print(report.format_report())
    return 0 if report.ok else 1


_COMMANDS = {
    "index": _cmd_index,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "stats": _cmd_stats,
    "trace": _cmd_trace,
    "querylog": _cmd_querylog,
    "kwic": _cmd_kwic,
    "serve": _cmd_serve,
    "loadgen": _cmd_loadgen,
    "ingest": _cmd_ingest,
    "compact": _cmd_compact,
    "backends": _cmd_backends,
    "top": _cmd_top,
    "chaos": _cmd_chaos,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
