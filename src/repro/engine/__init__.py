"""The text indexing engine: parsers, persistence, and the query facade."""

from repro.engine.cli import main as cli_main
from repro.engine.corpus import DOCUMENT_REGION_NAME, Corpus
from repro.engine.highlight import annotate, excerpts
from repro.engine.session import Engine, QueryPlan
from repro.engine.sourcecode import (
    SOURCE_REGION_NAMES,
    SourceDocument,
    generate_program_source,
    parse_source,
)
from repro.engine.storage import (
    instance_from_dict,
    instance_to_dict,
    load_instance,
    save_instance,
)
from repro.engine.tagged import TaggedDocument, parse_tagged_text

__all__ = [
    "Engine",
    "Corpus",
    "DOCUMENT_REGION_NAME",
    "cli_main",
    "annotate",
    "excerpts",
    "QueryPlan",
    "TaggedDocument",
    "parse_tagged_text",
    "SourceDocument",
    "parse_source",
    "generate_program_source",
    "SOURCE_REGION_NAMES",
    "save_instance",
    "load_instance",
    "instance_to_dict",
    "instance_from_dict",
]
