"""Index persistence: JSON serialization of instances.

A text indexing system builds its region and word indexes once and
reopens them for querying; this module provides the (deliberately
transparent) on-disk format::

    {
      "version": 1,
      "names": ["Proc", ...],
      "sets": {"Proc": [[left, right], ...], ...},
      "word_index": {"kind": "text", "tokens": [[word, left, right], ...]}
                  | {"kind": "label", "labels": [[left, right, ["p", ...]], ...]}
                  | {"kind": "none"}
    }

Both word-index flavours round-trip exactly; a foreign
:class:`~repro.core.WordIndex` implementation is rejected rather than
silently dropped.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import LabelWordIndex, TextWordIndex
from repro.errors import StorageError

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "SUPPORTED_VERSIONS",
]

_VERSION = 1

#: Format versions :func:`instance_from_dict` can read.
SUPPORTED_VERSIONS = (1,)


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """The JSON-ready representation of an instance."""
    word_index = instance.word_index
    if isinstance(word_index, TextWordIndex):
        tokens = []
        for token in word_index.vocabulary:
            lefts, rights, _ = word_index._occurrences[token]
            tokens.extend([token, l, r] for l, r in zip(lefts, rights))
        payload: dict[str, Any] = {"kind": "text", "tokens": sorted(tokens, key=lambda t: t[1])}
    elif isinstance(word_index, LabelWordIndex):
        payload = {
            "kind": "label",
            "labels": [
                [region.left, region.right, sorted(patterns)]
                for region, patterns in word_index.items()
                if patterns
            ],
        }
    else:
        raise StorageError(
            f"cannot serialize word index of type {type(word_index).__name__}"
        )
    return {
        "version": _VERSION,
        "names": list(instance.names),
        "sets": {
            name: [[r.left, r.right] for r in instance.region_set(name)]
            for name in instance.names
        },
        "word_index": payload,
    }


def instance_from_dict(data: dict[str, Any]) -> Instance:
    """Rebuild an instance from :func:`instance_to_dict` output."""
    try:
        if data["version"] not in SUPPORTED_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
            raise StorageError(
                f"unsupported index version {data['version']!r} "
                f"(this build reads version(s): {supported}); "
                "re-index the document with this version of repro"
            )
        sets = {
            name: RegionSet(Region(l, r) for l, r in data["sets"].get(name, []))
            for name in data["names"]
        }
        payload = data["word_index"]
        if payload["kind"] == "text":
            word_index = TextWordIndex(
                (word, l, r) for word, l, r in payload["tokens"]
            )
        elif payload["kind"] == "label":
            word_index = LabelWordIndex(
                {
                    Region(l, r): set(patterns)
                    for l, r, patterns in payload["labels"]
                }
            )
        elif payload["kind"] == "none":
            word_index = None
        else:
            raise StorageError(f"unknown word index kind {payload['kind']!r}")
    except (KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"malformed index data: {exc}") from exc
    return Instance(sets, word_index)


def save_instance(instance: Instance, path: str | Path) -> None:
    """Write an instance to a JSON file, atomically.

    The payload lands in a temporary file in the target directory and is
    moved into place with :func:`os.replace`, so a reader (or a serving
    process reloading its corpus) never observes a torn index: it sees
    either the complete old file or the complete new one.
    """
    target = Path(path)
    payload = json.dumps(instance_to_dict(instance))
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent or Path("."), prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def load_instance(path: str | Path) -> Instance:
    """Read an instance back from :func:`save_instance` output.

    Load time lands in the process-wide
    ``index_build_seconds{kind=load}`` histogram.
    """
    from time import perf_counter

    from repro.obs.metrics import INDEX_BUILD_SECONDS, global_registry

    started = perf_counter()
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read index from {path}: {exc}") from exc
    instance = instance_from_dict(data)
    global_registry().histogram(INDEX_BUILD_SECONDS).observe(
        perf_counter() - started, kind="load"
    )
    return instance
