"""Index persistence: JSON serialization of instances.

A text indexing system builds its region and word indexes once and
reopens them for querying; this module provides the (deliberately
transparent) on-disk format::

    {
      "version": 1,
      "names": ["Proc", ...],
      "sets": {"Proc": [[left, right], ...], ...},
      "word_index": {"kind": "text", "tokens": [[word, left, right], ...]}
                  | {"kind": "label", "labels": [[left, right, ["p", ...]], ...]}
                  | {"kind": "none"},
      "checksum": "sha256 hex of the canonical JSON of everything above"
    }

Both word-index flavours round-trip exactly; a foreign
:class:`~repro.core.WordIndex` implementation is rejected rather than
silently dropped.

Robustness (see ``docs/robustness.md``): writes are crash-safe (fsync
of both the temp file and its directory around the atomic rename) and
carry a content checksum; reads verify it and raise
:class:`~repro.errors.CorruptIndexError` — a distinct subclass of
:class:`~repro.errors.StorageError` — on any mismatch or undecodable
payload, so the serving layer can quarantine the file
(:func:`quarantine_index`) and rebuild from source instead of serving
from a damaged index.  Files written before checksums existed still
load.  Both paths traverse the ``storage.read`` / ``storage.write``
fault points of :mod:`repro.faults`.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import LabelWordIndex, TextWordIndex
from repro.errors import CorruptIndexError, StorageError
from repro.faults import registry as _faults

__all__ = [
    "instance_to_dict",
    "instance_from_dict",
    "save_instance",
    "load_instance",
    "quarantine_index",
    "SUPPORTED_VERSIONS",
]

_VERSION = 1

#: Format versions :func:`instance_from_dict` can read.
SUPPORTED_VERSIONS = (1,)


def _checksum(data: dict[str, Any]) -> str:
    """sha256 of the canonical JSON encoding of ``data`` (sans checksum)."""
    core = {k: v for k, v in data.items() if k != "checksum"}
    canonical = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def instance_to_dict(instance: Instance) -> dict[str, Any]:
    """The JSON-ready representation of an instance (checksummed)."""
    word_index = instance.word_index
    if isinstance(word_index, TextWordIndex):
        tokens = []
        for token in word_index.vocabulary:
            lefts, rights, _ = word_index._occurrences[token]
            tokens.extend([token, l, r] for l, r in zip(lefts, rights))
        payload: dict[str, Any] = {"kind": "text", "tokens": sorted(tokens, key=lambda t: t[1])}
    elif isinstance(word_index, LabelWordIndex):
        payload = {
            "kind": "label",
            "labels": [
                [region.left, region.right, sorted(patterns)]
                for region, patterns in word_index.items()
                if patterns
            ],
        }
    else:
        raise StorageError(
            f"cannot serialize word index of type {type(word_index).__name__}"
        )
    data = {
        "version": _VERSION,
        "names": list(instance.names),
        "sets": {
            name: [[r.left, r.right] for r in instance.region_set(name)]
            for name in instance.names
        },
        "word_index": payload,
    }
    data["checksum"] = _checksum(data)
    return data


def instance_from_dict(data: dict[str, Any]) -> Instance:
    """Rebuild an instance from :func:`instance_to_dict` output.

    The ``checksum`` key is ignored here — callers holding a dict
    already trust it; :func:`load_instance` verifies the checksum of
    what actually came off the disk.
    """
    try:
        if data["version"] not in SUPPORTED_VERSIONS:
            supported = ", ".join(str(v) for v in SUPPORTED_VERSIONS)
            raise StorageError(
                f"unsupported index version {data['version']!r} "
                f"(this build reads version(s): {supported}); "
                "re-index the document with this version of repro"
            )
        sets = {
            name: RegionSet(Region(l, r) for l, r in data["sets"].get(name, []))
            for name in data["names"]
        }
        payload = data["word_index"]
        if payload["kind"] == "text":
            word_index = TextWordIndex(
                (word, l, r) for word, l, r in payload["tokens"]
            )
        elif payload["kind"] == "label":
            word_index = LabelWordIndex(
                {
                    Region(l, r): set(patterns)
                    for l, r, patterns in payload["labels"]
                }
            )
        elif payload["kind"] == "none":
            word_index = None
        else:
            raise StorageError(f"unknown word index kind {payload['kind']!r}")
    except (KeyError, TypeError, ValueError) as exc:
        raise CorruptIndexError(f"malformed index data: {exc}") from exc
    return Instance(sets, word_index)


def save_instance(instance: Instance, path: str | Path) -> None:
    """Write an instance to a JSON file, atomically and crash-safely.

    The payload lands in a temporary file in the target directory and is
    moved into place with :func:`os.replace`, so a reader (or a serving
    process reloading its corpus) never observes a torn index.  Both the
    temp file and the directory are fsynced around the rename, so the
    atomicity survives power loss, not just process death: after a
    crash the target is either the complete old file or the complete
    new one, never an empty or half-written entry.
    """
    _faults.fire("storage.write")
    target = Path(path)
    payload = json.dumps(instance_to_dict(instance))
    directory = target.parent if str(target.parent) else Path(".")
    fd, tmp_name = tempfile.mkstemp(
        dir=directory, prefix=target.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, target)
        _fsync_directory(directory)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def _fsync_directory(directory: Path) -> None:
    """Persist a rename by fsyncing its directory (no-op where the
    platform does not support opening directories)."""
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


def load_instance(path: str | Path) -> Instance:
    """Read an instance back from :func:`save_instance` output.

    Raises :class:`~repro.errors.StorageError` for I/O failures and
    :class:`~repro.errors.CorruptIndexError` when the file exists but
    its contents fail decoding or checksum verification.  Load time
    lands in the process-wide ``index_build_seconds{kind=load}``
    histogram.
    """
    from time import perf_counter

    from repro.obs.metrics import INDEX_BUILD_SECONDS, global_registry

    started = perf_counter()
    try:
        raw = Path(path).read_bytes()
    except OSError as exc:
        raise StorageError(f"cannot read index from {path}: {exc}") from exc
    raw = _faults.fire("storage.read", raw)
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CorruptIndexError(
            f"index file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise CorruptIndexError(f"index file {path} is not a JSON object")
    recorded = data.get("checksum")
    if recorded is not None and recorded != _checksum(data):
        raise CorruptIndexError(
            f"index file {path} failed checksum verification: contents do "
            "not match the recorded sha256 (truncated or corrupted write?)"
        )
    instance = instance_from_dict(data)
    global_registry().histogram(INDEX_BUILD_SECONDS).observe(
        perf_counter() - started, kind="load"
    )
    return instance


def quarantine_index(path: str | Path) -> Path | None:
    """Move a corrupt index file aside so it is never loaded again.

    Renames ``index.json`` to ``index.json.quarantined`` (with a numeric
    suffix if that name is taken) in the same directory, and counts the
    event in ``storage_quarantined_total``.  Returns the quarantine path,
    or ``None`` when the file had already vanished.
    """
    from repro.obs.metrics import STORAGE_QUARANTINED_TOTAL, global_registry

    source = Path(path)
    destination = source.with_name(source.name + ".quarantined")
    attempt = 0
    while destination.exists():
        attempt += 1
        destination = source.with_name(f"{source.name}.quarantined.{attempt}")
    try:
        os.replace(source, destination)
    except OSError:
        return None
    global_registry().counter(
        STORAGE_QUARANTINED_TOTAL, help="corrupt index files moved aside"
    ).inc()
    return destination
