"""The paper's running example: indexing program source code.

Section 2.2 describes files of programs with headers, bodies, nested
procedures and variable definitions, structured by the Figure 1 RIG.
This module defines a small concrete language realizing that structure::

    program Main {
        var x;
        proc Foo {
            var y;
            proc Bar { var x; }
        }
    }

and a recursive-descent indexer mapping parses onto the Figure 1 region
names:

==============  ====================================================
Region          Span
==============  ====================================================
``Program``     ``program`` keyword through the closing ``}``
``Prog_header`` the whitespace-padded program name
``Prog_body``   the braced block
``Proc``        ``proc`` keyword through its closing ``}``
``Proc_header`` the whitespace-padded procedure name
``Proc_body``   the braced block
``Name``        the bare identifier inside a header
``Var``         ``var`` keyword through the ``;``
==============  ====================================================

Header regions start at the whitespace after the keyword so that they
*strictly* include their ``Name`` region, as the hierarchy requires.
Every token (keywords, identifiers, punctuation) feeds the word index,
so ``σ_"x"(Var)`` selects the definitions of ``x`` exactly as in the
paper's Section 5.1 example.  :func:`generate_program_source` synthesizes
random programs for workloads and benchmarks.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import TextWordIndex
from repro.errors import ParseError

__all__ = ["SourceDocument", "parse_source", "generate_program_source", "SOURCE_REGION_NAMES"]

SOURCE_REGION_NAMES = (
    "Program",
    "Prog_header",
    "Prog_body",
    "Proc",
    "Proc_header",
    "Proc_body",
    "Name",
    "Var",
)

_TOKEN_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|[{};]")


@dataclass(frozen=True)
class SourceDocument:
    """A parsed source file: raw text plus its region index."""

    text: str
    instance: Instance

    def extract(self, region: Region) -> str:
        return self.text[region.left : region.right + 1]


@dataclass(frozen=True, slots=True)
class _Tok:
    text: str
    left: int
    right: int


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = [
            _Tok(m.group(), m.start(), m.end() - 1) for m in _TOKEN_RE.finditer(text)
        ]
        self.index = 0
        self.regions: dict[str, list[Region]] = {name: [] for name in SOURCE_REGION_NAMES}

    def _peek(self) -> _Tok | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def _next(self, expected: str | None = None) -> _Tok:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of source", len(self.text))
        if expected is not None and token.text != expected:
            raise ParseError(
                f"expected {expected!r}, found {token.text!r}", token.left
            )
        self.index += 1
        return token

    def _identifier(self) -> _Tok:
        token = self._next()
        if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token.text) or token.text in (
            "program",
            "proc",
            "var",
        ):
            raise ParseError(f"expected an identifier, found {token.text!r}", token.left)
        return token

    def parse(self) -> Instance:
        while self._peek() is not None:
            self._program()
        return Instance(
            {name: RegionSet(rs) for name, rs in self.regions.items()},
            TextWordIndex(
                (t.text, t.left, t.right) for t in self.tokens
            ),
        )

    def _program(self) -> None:
        keyword = self._next("program")
        self._header(keyword, "Prog_header")
        close = self._body("Prog_body")
        self.regions["Program"].append(Region(keyword.left, close.right))

    def _proc(self) -> None:
        keyword = self._next("proc")
        self._header(keyword, "Proc_header")
        close = self._body("Proc_body")
        self.regions["Proc"].append(Region(keyword.left, close.right))

    def _header(self, keyword: _Tok, region_name: str) -> None:
        name = self._identifier()
        if keyword.right + 1 >= name.left:
            raise ParseError("missing whitespace before name", name.left)
        # Start at the padding so the header strictly includes the Name.
        self.regions[region_name].append(Region(keyword.right + 1, name.right))
        self.regions["Name"].append(Region(name.left, name.right))

    def _body(self, region_name: str) -> _Tok:
        open_brace = self._next("{")
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("unclosed block", open_brace.left)
            if token.text == "}":
                close = self._next()
                self.regions[region_name].append(Region(open_brace.left, close.right))
                return close
            if token.text == "var":
                self._var()
            elif token.text == "proc":
                self._proc()
            else:
                raise ParseError(
                    f"expected 'var', 'proc' or '}}', found {token.text!r}",
                    token.left,
                )

    def _var(self) -> None:
        keyword = self._next("var")
        self._identifier()
        semicolon = self._next(";")
        self.regions["Var"].append(Region(keyword.left, semicolon.right))


def parse_source(text: str) -> SourceDocument:
    """Parse toy source code into a :class:`SourceDocument`.

    Build time lands in the process-wide
    ``index_build_seconds{kind=source}`` histogram.
    """
    from time import perf_counter

    from repro.obs.metrics import INDEX_BUILD_SECONDS, global_registry

    started = perf_counter()
    document = SourceDocument(text, _Parser(text).parse())
    global_registry().histogram(INDEX_BUILD_SECONDS).observe(
        perf_counter() - started, kind="source"
    )
    return document


def generate_program_source(
    rng: random.Random,
    procedures: int = 5,
    max_nesting: int = 3,
    max_vars: int = 3,
    name_pool: tuple[str, ...] = ("x", "y", "z", "count", "total", "flag"),
) -> str:
    """Synthesize a random program in the toy language.

    ``procedures`` bounds the total number of procedures; nesting depth
    is bounded by ``max_nesting`` — deep nesting exercises the layer
    loops of the Section 6 programs.
    """
    remaining = procedures
    counter = 0

    def fresh_name() -> str:
        nonlocal counter
        counter += 1
        return f"P{counter}"

    def block(depth: int, indent: str) -> list[str]:
        nonlocal remaining
        lines: list[str] = []
        for _ in range(rng.randint(0, max_vars)):
            lines.append(f"{indent}var {rng.choice(name_pool)};")
        # The top-level block consumes whatever budget its descendants
        # left over, so `procedures` is the exact count (nesting depth
        # permitting); nested blocks take a geometric share.
        while remaining > 0 and depth < max_nesting and (
            depth == 0 or rng.random() < 0.6
        ):
            remaining -= 1
            inner = block(depth + 1, indent + "    ")
            lines.append(f"{indent}proc {fresh_name()} {{")
            lines.extend(inner)
            lines.append(f"{indent}}}")
        return lines

    body = block(0, "    ")
    return "program Main {\n" + "\n".join(body) + "\n}\n"
