"""The query engine facade.

:class:`Engine` bundles an instance, its source text (when available),
an optional RIG, and the evaluator/optimizer into the interface a text
retrieval system exposes:

* ``query("Name within Proc_header within Proc")`` — parse, (optionally)
  optimize, evaluate;
* ``match_points('x*')`` — the PAT word index as a region set;
* ``define_view`` — named derived sets.  The full PAT algebra constructs
  region sets dynamically; the paper treats those as *views* (footnote
  1), and views here are macro-expanded into queries before evaluation
  so the hierarchy of the base index is never disturbed;
* ``extract`` — the raw text a result region covers;
* ``explain`` — the plan: parsed form, optimized form, cost estimates;
* ``save``/``load`` — index persistence.

Every engine carries a :class:`~repro.obs.Telemetry` bundle: metrics
and the query log are always on (cheap), span tracing is off until
:meth:`Engine.enable_tracing`.  ``query`` and ``explain`` share one
plan-construction path (:meth:`Engine.plan`), so the plan the optimizer
explains is exactly the plan the evaluator runs, and both calls append
a structured record — plan, cardinality, wall time, memo hits,
estimated-vs-actual cardinality error — to ``engine.query_log``.
:meth:`Engine.telemetry` snapshots all of it as plain JSON-ready data.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Any

from repro.algebra import ast as A
from repro.algebra.cost import CostModel
from repro.algebra.evaluator import CancelToken, EvalStats, Evaluator, Strategy
from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import TextWordIndex
from repro.errors import EvaluationError, UnknownRegionNameError
from repro.faults import registry as _faults
from repro.obs import Telemetry
from repro.obs.metrics import (
    CARDINALITY_BUCKETS,
    INDEX_BUILD_SECONDS,
    PARSE_SECONDS,
    QUERIES_TOTAL,
    RESULT_CARDINALITY,
)
from repro.obs import context as _trace_context
from repro.obs.querylog import QueryLog, QueryRecord
from repro.obs.trace import Tracer, maybe_span
from repro.optimize.optimizer import optimize
from repro.rig.graph import RegionInclusionGraph

__all__ = ["Engine", "QueryPlan"]


@dataclass(frozen=True)
class QueryPlan:
    """What ``explain`` returns: the plan for one query.

    ``compiled`` says the optimized expression lowers to a
    :mod:`repro.vm` program; ``program`` is its listing (one line per
    instruction).  Both are deterministic functions of the plan, so two
    ``explain`` calls for the same query compare equal regardless of
    what the caches did in between.
    """

    original: A.Expr
    optimized: A.Expr
    original_cost: float
    optimized_cost: float
    steps: tuple[str, ...]
    compiled: bool = False
    program: tuple[str, ...] = ()

    def __str__(self) -> str:  # pragma: no cover - display helper
        lines = [
            f"query:     {to_text(self.original)}",
            f"plan:      {to_text(self.optimized)}",
            f"cost:      {self.original_cost:.0f} -> {self.optimized_cost:.0f}",
        ]
        if self.steps:
            lines.append(f"rewrites:  {', '.join(self.steps)}")
        if self.compiled:
            lines.append("program:")
            lines.extend(f"  {line}" for line in self.program)
        return "\n".join(lines)


class Engine:
    """A queryable region index (see module docstring)."""

    def __init__(
        self,
        instance: Instance,
        text: str | None = None,
        rig: RegionInclusionGraph | None = None,
        strategy: Strategy = "indexed",
        telemetry: Telemetry | None = None,
        shards: int | None = None,
        shard_pool: str = "thread",
        vm: bool = True,
    ):
        self._instance = instance
        self._text = text
        self._rig = rig
        self._telemetry = telemetry if telemetry is not None else Telemetry()
        self._evaluator = Evaluator(
            strategy,
            tracer=self._telemetry.tracer,
            metrics=self._telemetry.metrics,
            vm=vm,
        )
        self._views: dict[str, A.Expr] = {}
        self._cost_model: CostModel | None = None
        self._shard_executor = None
        if shards is not None:
            from repro.shard import ShardExecutor

            self._shard_executor = ShardExecutor(
                instance,
                shards,
                pool=shard_pool,
                strategy=strategy,
                tracer=self._telemetry.tracer,
                metrics=self._telemetry.metrics,
                vm=vm,
            )

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------

    @classmethod
    def from_tagged_text(
        cls,
        text: str,
        rig: RegionInclusionGraph | None = None,
        shards: int | None = None,
        shard_pool: str = "thread",
    ) -> "Engine":
        """Index an SGML-like tagged document."""
        from repro.engine.tagged import parse_tagged_text

        _faults.fire("index.build")
        started = perf_counter()
        document = parse_tagged_text(text)
        engine = cls(
            document.instance,
            text=document.text,
            rig=rig,
            shards=shards,
            shard_pool=shard_pool,
        )
        engine._observe_index_build("tagged", perf_counter() - started)
        return engine

    @classmethod
    def from_source(
        cls,
        text: str,
        shards: int | None = None,
        shard_pool: str = "thread",
    ) -> "Engine":
        """Index toy program source code (Figure 1 structure and RIG)."""
        from repro.engine.sourcecode import parse_source
        from repro.rig.graph import figure_1_rig

        _faults.fire("index.build")
        started = perf_counter()
        document = parse_source(text)
        engine = cls(
            document.instance,
            text=document.text,
            rig=figure_1_rig(),
            shards=shards,
            shard_pool=shard_pool,
        )
        engine._observe_index_build("source", perf_counter() - started)
        return engine

    @classmethod
    def load(
        cls,
        path: str | Path,
        rig: RegionInclusionGraph | None = None,
        shards: int | None = None,
        shard_pool: str = "thread",
    ) -> "Engine":
        from repro.engine.storage import load_instance

        _faults.fire("index.build")
        started = perf_counter()
        instance = load_instance(path)
        engine = cls(instance, rig=rig, shards=shards, shard_pool=shard_pool)
        engine._observe_index_build("load", perf_counter() - started)
        return engine

    def _observe_index_build(self, kind: str, seconds: float) -> None:
        self._telemetry.metrics.histogram(INDEX_BUILD_SECONDS).observe(
            seconds, kind=kind
        )

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------

    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def rig(self) -> RegionInclusionGraph | None:
        return self._rig

    @property
    def text(self) -> str | None:
        """The raw indexed text, when the engine was built from text
        (``None`` for engines loaded from a saved index)."""
        return self._text

    @property
    def region_names(self) -> tuple[str, ...]:
        return self._instance.names

    @property
    def shard_executor(self):
        """The :class:`~repro.shard.ShardExecutor` when ``shards`` was
        given at construction, else ``None``."""
        return self._shard_executor

    def statistics(self) -> dict[str, Any]:
        """Index statistics: per-name cardinalities and nesting depth."""
        stats = {
            "regions": {
                name: len(self._instance.region_set(name))
                for name in self._instance.names
            },
            "total": len(self._instance),
            "nesting_depth": self._instance.nesting_depth(),
            "views": sorted(self._views),
        }
        if self._shard_executor is not None:
            stats["shards"] = self._shard_executor.partition.summary()
        return stats

    def close(self) -> None:
        """Release the shard executor's worker pool, if any."""
        if self._shard_executor is not None:
            self._shard_executor.close()

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------

    @property
    def tracer(self) -> Tracer:
        return self._telemetry.tracer

    @property
    def metrics(self):
        return self._telemetry.metrics

    @property
    def query_log(self) -> QueryLog:
        return self._telemetry.query_log

    def enable_tracing(self, enabled: bool = True) -> None:
        """Turn span collection on (or back off) for this engine."""
        self._telemetry.enable_tracing(enabled)

    def telemetry(self) -> dict[str, Any]:
        """A JSON-ready snapshot of this engine's metrics, query log,
        and tracing state (see ``docs/observability.md``)."""
        return self._telemetry.snapshot()

    # ------------------------------------------------------------------
    # Querying.
    # ------------------------------------------------------------------

    def query(
        self,
        query: str | A.Expr,
        optimize_query: bool = False,
        deadline: float | None = None,
        cancel: "CancelToken | None" = None,
    ) -> RegionSet:
        """Evaluate a query (text or expression tree) against the index.

        ``deadline`` (seconds) and ``cancel`` (a
        :class:`threading.Event`-like token) bound the evaluation; see
        :meth:`Evaluator.evaluate`.  A query that runs out of budget
        raises :class:`~repro.errors.QueryTimeout` and is not logged.
        """
        tracer = self._telemetry.tracer
        started = perf_counter()
        with maybe_span(tracer, "query", optimize=optimize_query) as root:
            with maybe_span(tracer, "parse"):
                parse_started = perf_counter()
                expr = self._prepare(query)
                parse_seconds = perf_counter() - parse_started
            plan = self._plan(expr) if optimize_query else None
            executed = plan.optimized if plan is not None else expr
            if root is not None:
                root.set("text", to_text(expr))
            if self._shard_executor is not None:
                result = self._shard_executor.run(
                    executed, deadline=deadline, cancel=cancel
                )
            else:
                result = self._evaluator.evaluate(
                    executed, self._instance, deadline=deadline, cancel=cancel
                )
            if root is not None:
                root.set("cardinality", len(result))
        self._record(
            kind="query",
            query=query,
            executed=executed,
            plan=plan,
            result=result,
            seconds=perf_counter() - started,
            parse_seconds=parse_seconds,
            stats=(
                self._evaluator.last_stats
                if self._shard_executor is None
                else None
            ),
        )
        return result

    def explain(self, query: str | A.Expr) -> QueryPlan:
        """The optimizer's plan for a query, without running it.

        Built by the same :meth:`plan` path :meth:`query` executes, so
        what is explained is exactly what would run.
        """
        return self.explain_with_caches(query)[0]

    def explain_with_caches(
        self, query: str | A.Expr
    ) -> tuple[QueryPlan, dict[str, bool]]:
        """:meth:`explain` plus which engine caches the call hit.

        The second element reports ``plan_cache_hit`` (the per-engine
        CostModel was already built) and ``program_cache_hit`` (the
        compiled VM program was already cached) *separately* — a
        cost-model hit alone does not mean the query skipped
        compilation.  These are observations about cache state, not
        part of the plan, which stays deterministic.
        """
        plan_cache_hit = self._cost_model is not None
        tracer = self._telemetry.tracer
        started = perf_counter()
        with maybe_span(tracer, "explain"):
            with maybe_span(tracer, "parse"):
                parse_started = perf_counter()
                expr = self._prepare(query)
                parse_seconds = perf_counter() - parse_started
            plan, program_cache_hit = self._plan_ex(expr)
        self._record(
            kind="explain",
            query=query,
            executed=plan.optimized,
            plan=plan,
            result=None,
            seconds=perf_counter() - started,
            parse_seconds=parse_seconds,
            stats=None,
        )
        return plan, {
            "plan_cache_hit": plan_cache_hit,
            "program_cache_hit": program_cache_hit,
        }

    def plan(self, query: str | A.Expr) -> QueryPlan:
        """The plan ``query(..., optimize_query=True)`` would execute."""
        return self._plan(self._prepare(query))

    def normalize(self, query: str | A.Expr) -> str:
        """The canonical text of a query after parsing and view
        expansion — equal for syntactically different spellings of the
        same plan, which makes it the result-cache key the query
        service uses (see ``docs/server.md``)."""
        return to_text(self._prepare(query))

    def _plan(self, expr: A.Expr) -> QueryPlan:
        """The single plan-construction path shared by query/explain."""
        return self._plan_ex(expr)[0]

    def _plan_ex(self, expr: A.Expr) -> tuple[QueryPlan, bool]:
        """Build the plan and report whether its compiled program was
        already cached.  Compiling here warms the evaluator's program
        cache, so ``explain`` → ``query`` executes without recompiling."""
        result = optimize(
            expr,
            rig=self._rig,
            cost_model=self._ensure_cost_model(),
            tracer=self._telemetry.tracer,
            metrics=self._telemetry.metrics,
        )
        program = None
        program_cached = False
        if self._evaluator.vm_enabled:
            program, program_cached = self._evaluator.compiled_program(
                result.expression
            )
        plan = QueryPlan(
            original=expr,
            optimized=result.expression,
            original_cost=result.original_cost,
            optimized_cost=result.optimized_cost,
            steps=result.steps,
            compiled=program is not None,
            program=program.listing() if program is not None else (),
        )
        return plan, program_cached

    def _ensure_cost_model(self) -> CostModel:
        if self._cost_model is None:
            self._cost_model = CostModel.from_instance(self._instance)
        return self._cost_model

    def _record(
        self,
        kind: str,
        query: str | A.Expr,
        executed: A.Expr,
        plan: QueryPlan | None,
        result: RegionSet | None,
        seconds: float,
        parse_seconds: float,
        stats: EvalStats | None,
    ) -> None:
        metrics = self._telemetry.metrics
        metrics.counter(QUERIES_TOTAL).inc(kind=kind)
        metrics.histogram(PARSE_SECONDS).observe(parse_seconds)
        try:
            estimate = self._ensure_cost_model().estimate(executed)
        except TypeError:
            # The cost model covers the core algebra; word queries
            # (match points) and extended nodes fall outside it.
            estimate = None
        cardinality = error = None
        if result is not None:
            cardinality = len(result)
            metrics.histogram(
                RESULT_CARDINALITY, CARDINALITY_BUCKETS
            ).observe(cardinality)
            if estimate is not None:
                error = (
                    abs(estimate.cardinality - cardinality) / max(cardinality, 1)
                )
        self._telemetry.query_log.append(
            QueryRecord(
                kind=kind,
                query=query if isinstance(query, str) else to_text(query),
                plan=to_text(executed),
                optimized=plan is not None,
                seconds=seconds,
                cardinality=cardinality,
                memo_hits=stats.memo_hits if stats is not None else 0,
                nodes_evaluated=stats.nodes_evaluated if stats is not None else 0,
                estimated_cost=estimate.cost if estimate is not None else None,
                estimated_cardinality=(
                    estimate.cardinality if estimate is not None else None
                ),
                cardinality_error=error,
                steps=plan.steps if plan is not None else (),
                timestamp=time.time(),
                trace_id=_trace_context.current_trace_id(),
            )
        )

    def match_points(self, pattern: str) -> RegionSet:
        """The word-index match points of a pattern (PAT word queries)."""
        word_index = self._instance.word_index
        if not isinstance(word_index, TextWordIndex):
            raise EvaluationError(
                "match points require a text-backed word index"
            )
        return word_index.match_points(pattern)

    def extract(self, region: Region) -> str:
        """The raw text a region covers (requires the source text)."""
        if self._text is None:
            raise EvaluationError("this engine was built without source text")
        return self._text[region.left : region.right + 1]

    def extract_all(self, regions: RegionSet) -> list[str]:
        return [self.extract(r) for r in regions]

    def region_at(self, position: int) -> Region | None:
        """The innermost region covering a text position, if any.

        The navigation primitive an editor needs: "which element is the
        cursor in?".
        """
        best: Region | None = None
        for region in self._instance.all_regions().spanning(position):
            if best is None or best.includes(region):
                best = region
        return best

    def path_at(self, position: int) -> list[tuple[str, Region]]:
        """The chain of (name, region) covering a position, outermost first."""
        innermost = self.region_at(position)
        if innermost is None:
            return []
        forest = self._instance.forest()
        chain = list(reversed(forest.ancestors_of(innermost))) + [innermost]
        return [(self._instance.name_of(r), r) for r in chain]

    def outline(self, max_depth: int | None = None) -> str:
        """An indented dump of the region tree (names and spans)."""
        forest = self._instance.forest()
        lines: list[str] = []
        for region in forest.preorder:
            depth = forest.depth_of(region)
            if max_depth is not None and depth >= max_depth:
                continue
            name = self._instance.name_of(region)
            lines.append(f"{'  ' * depth}{name} [{region.left},{region.right}]")
        return "\n".join(lines)

    def keyword_in_context(
        self, pattern: str, width: int = 24
    ) -> list[tuple[Region, str]]:
        """KWIC lines: each match point with ``width`` characters of
        context on both sides (requires the source text)."""
        if self._text is None:
            raise EvaluationError("this engine was built without source text")
        out: list[tuple[Region, str]] = []
        for point in self.match_points(pattern):
            left = max(point.left - width, 0)
            right = min(point.right + width, len(self._text) - 1)
            snippet = self._text[left : right + 1].replace("\n", " ")
            out.append((point, snippet))
        return out

    # ------------------------------------------------------------------
    # Views (footnote 1: dynamic region sets as views).
    # ------------------------------------------------------------------

    def define_view(self, name: str, query: str | A.Expr) -> None:
        """Register a named view; queries may use it like a region name."""
        if name in self._instance.names:
            raise EvaluationError(
                f"view name {name!r} collides with a region name"
            )
        expr = parse(query) if isinstance(query, str) else query
        self._check_names(expr, allow_view=name)
        self._views[name] = expr

    def _prepare(self, query: str | A.Expr) -> A.Expr:
        expr = parse(query) if isinstance(query, str) else query
        expr = self._expand_views(expr, frozenset())
        self._check_names(expr)
        return expr

    def _expand_views(self, expr: A.Expr, expanding: frozenset[str]) -> A.Expr:
        if isinstance(expr, A.NameRef) and expr.name in self._views:
            if expr.name in expanding:
                raise EvaluationError(f"view {expr.name!r} is self-referential")
            return self._expand_views(
                self._views[expr.name], expanding | {expr.name}
            )
        for i, child in enumerate(A.children(expr)):
            new = self._expand_views(child, expanding)
            if new != child:
                expr = A.replace_child(expr, i, new)
        return expr

    def _check_names(self, expr: A.Expr, allow_view: str | None = None) -> None:
        known = set(self._instance.names) | set(self._views)
        for name in A.region_names(expr):
            if name not in known and name != allow_view:
                raise UnknownRegionNameError(name, tuple(sorted(known)))

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        from repro.engine.storage import save_instance

        save_instance(self._instance, path)
