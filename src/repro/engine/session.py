"""The query engine facade.

:class:`Engine` bundles an instance, its source text (when available),
an optional RIG, and the evaluator/optimizer into the interface a text
retrieval system exposes:

* ``query("Name within Proc_header within Proc")`` — parse, (optionally)
  optimize, evaluate;
* ``match_points('x*')`` — the PAT word index as a region set;
* ``define_view`` — named derived sets.  The full PAT algebra constructs
  region sets dynamically; the paper treats those as *views* (footnote
  1), and views here are macro-expanded into queries before evaluation
  so the hierarchy of the base index is never disturbed;
* ``extract`` — the raw text a result region covers;
* ``explain`` — the plan: parsed form, optimized form, cost estimates;
* ``save``/``load`` — index persistence.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.algebra import ast as A
from repro.algebra.cost import CostModel
from repro.algebra.evaluator import Evaluator, Strategy
from repro.algebra.parser import parse
from repro.algebra.printer import to_text
from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import TextWordIndex
from repro.errors import EvaluationError, UnknownRegionNameError
from repro.optimize.optimizer import optimize
from repro.rig.graph import RegionInclusionGraph

__all__ = ["Engine", "QueryPlan"]


@dataclass(frozen=True)
class QueryPlan:
    """What ``explain`` returns: the plan for one query."""

    original: A.Expr
    optimized: A.Expr
    original_cost: float
    optimized_cost: float
    steps: tuple[str, ...]

    def __str__(self) -> str:  # pragma: no cover - display helper
        lines = [
            f"query:     {to_text(self.original)}",
            f"plan:      {to_text(self.optimized)}",
            f"cost:      {self.original_cost:.0f} -> {self.optimized_cost:.0f}",
        ]
        if self.steps:
            lines.append(f"rewrites:  {', '.join(self.steps)}")
        return "\n".join(lines)


class Engine:
    """A queryable region index (see module docstring)."""

    def __init__(
        self,
        instance: Instance,
        text: str | None = None,
        rig: RegionInclusionGraph | None = None,
        strategy: Strategy = "indexed",
    ):
        self._instance = instance
        self._text = text
        self._rig = rig
        self._evaluator = Evaluator(strategy)
        self._views: dict[str, A.Expr] = {}

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------

    @classmethod
    def from_tagged_text(
        cls, text: str, rig: RegionInclusionGraph | None = None
    ) -> "Engine":
        """Index an SGML-like tagged document."""
        from repro.engine.tagged import parse_tagged_text

        document = parse_tagged_text(text)
        return cls(document.instance, text=document.text, rig=rig)

    @classmethod
    def from_source(cls, text: str) -> "Engine":
        """Index toy program source code (Figure 1 structure and RIG)."""
        from repro.engine.sourcecode import parse_source
        from repro.rig.graph import figure_1_rig

        document = parse_source(text)
        return cls(document.instance, text=document.text, rig=figure_1_rig())

    @classmethod
    def load(cls, path: str | Path, rig: RegionInclusionGraph | None = None) -> "Engine":
        from repro.engine.storage import load_instance

        return cls(load_instance(path), rig=rig)

    # ------------------------------------------------------------------
    # Accessors.
    # ------------------------------------------------------------------

    @property
    def instance(self) -> Instance:
        return self._instance

    @property
    def rig(self) -> RegionInclusionGraph | None:
        return self._rig

    @property
    def region_names(self) -> tuple[str, ...]:
        return self._instance.names

    def statistics(self) -> dict[str, Any]:
        """Index statistics: per-name cardinalities and nesting depth."""
        return {
            "regions": {
                name: len(self._instance.region_set(name))
                for name in self._instance.names
            },
            "total": len(self._instance),
            "nesting_depth": self._instance.nesting_depth(),
            "views": sorted(self._views),
        }

    # ------------------------------------------------------------------
    # Querying.
    # ------------------------------------------------------------------

    def query(
        self, query: str | A.Expr, optimize_query: bool = False
    ) -> RegionSet:
        """Evaluate a query (text or expression tree) against the index."""
        expr = self._prepare(query)
        if optimize_query:
            expr = optimize(expr, rig=self._rig).expression
        return self._evaluator.evaluate(expr, self._instance)

    def explain(self, query: str | A.Expr) -> QueryPlan:
        """The optimizer's plan for a query, without running it."""
        expr = self._prepare(query)
        model = CostModel.from_instance(self._instance)
        result = optimize(expr, rig=self._rig, cost_model=model)
        return QueryPlan(
            original=expr,
            optimized=result.expression,
            original_cost=result.original_cost,
            optimized_cost=result.optimized_cost,
            steps=result.steps,
        )

    def match_points(self, pattern: str) -> RegionSet:
        """The word-index match points of a pattern (PAT word queries)."""
        word_index = self._instance.word_index
        if not isinstance(word_index, TextWordIndex):
            raise EvaluationError(
                "match points require a text-backed word index"
            )
        return word_index.match_points(pattern)

    def extract(self, region: Region) -> str:
        """The raw text a region covers (requires the source text)."""
        if self._text is None:
            raise EvaluationError("this engine was built without source text")
        return self._text[region.left : region.right + 1]

    def extract_all(self, regions: RegionSet) -> list[str]:
        return [self.extract(r) for r in regions]

    def region_at(self, position: int) -> Region | None:
        """The innermost region covering a text position, if any.

        The navigation primitive an editor needs: "which element is the
        cursor in?".
        """
        best: Region | None = None
        for region in self._instance.all_regions().spanning(position):
            if best is None or best.includes(region):
                best = region
        return best

    def path_at(self, position: int) -> list[tuple[str, Region]]:
        """The chain of (name, region) covering a position, outermost first."""
        innermost = self.region_at(position)
        if innermost is None:
            return []
        forest = self._instance.forest()
        chain = list(reversed(forest.ancestors_of(innermost))) + [innermost]
        return [(self._instance.name_of(r), r) for r in chain]

    def outline(self, max_depth: int | None = None) -> str:
        """An indented dump of the region tree (names and spans)."""
        forest = self._instance.forest()
        lines: list[str] = []
        for region in forest.preorder:
            depth = forest.depth_of(region)
            if max_depth is not None and depth >= max_depth:
                continue
            name = self._instance.name_of(region)
            lines.append(f"{'  ' * depth}{name} [{region.left},{region.right}]")
        return "\n".join(lines)

    def keyword_in_context(
        self, pattern: str, width: int = 24
    ) -> list[tuple[Region, str]]:
        """KWIC lines: each match point with ``width`` characters of
        context on both sides (requires the source text)."""
        if self._text is None:
            raise EvaluationError("this engine was built without source text")
        out: list[tuple[Region, str]] = []
        for point in self.match_points(pattern):
            left = max(point.left - width, 0)
            right = min(point.right + width, len(self._text) - 1)
            snippet = self._text[left : right + 1].replace("\n", " ")
            out.append((point, snippet))
        return out

    # ------------------------------------------------------------------
    # Views (footnote 1: dynamic region sets as views).
    # ------------------------------------------------------------------

    def define_view(self, name: str, query: str | A.Expr) -> None:
        """Register a named view; queries may use it like a region name."""
        if name in self._instance.names:
            raise EvaluationError(
                f"view name {name!r} collides with a region name"
            )
        expr = parse(query) if isinstance(query, str) else query
        self._check_names(expr, allow_view=name)
        self._views[name] = expr

    def _prepare(self, query: str | A.Expr) -> A.Expr:
        expr = parse(query) if isinstance(query, str) else query
        expr = self._expand_views(expr, frozenset())
        self._check_names(expr)
        return expr

    def _expand_views(self, expr: A.Expr, expanding: frozenset[str]) -> A.Expr:
        if isinstance(expr, A.NameRef) and expr.name in self._views:
            if expr.name in expanding:
                raise EvaluationError(f"view {expr.name!r} is self-referential")
            return self._expand_views(
                self._views[expr.name], expanding | {expr.name}
            )
        for i, child in enumerate(A.children(expr)):
            new = self._expand_views(child, expanding)
            if new != child:
                expr = A.replace_child(expr, i, new)
        return expr

    def _check_names(self, expr: A.Expr, allow_view: str | None = None) -> None:
        known = set(self._instance.names) | set(self._views)
        for name in A.region_names(expr):
            if name not in known and name != allow_view:
                raise UnknownRegionNameError(name, tuple(sorted(known)))

    # ------------------------------------------------------------------
    # Persistence.
    # ------------------------------------------------------------------

    def save(self, path: str | Path) -> None:
        from repro.engine.storage import save_instance

        save_instance(self._instance, path)
