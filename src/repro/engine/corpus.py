"""Multi-document corpora with a distinguished document unit.

Section 5.2 observes that "traditional systems recognize one
distinguished unit (the document) within the structure of the text".
:class:`Corpus` realizes that: each added text is wrapped in a
``document`` region, the whole collection is indexed as one instance,
and query results can be attributed back to their document.

This also demonstrates the paper's document-scoped queries: with the
document as the unit, ``bi(document, X, Y)`` is exactly the classic
"X before Y in the same document" request.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.engine.session import Engine
from repro.errors import EvaluationError, ParseError
from repro.rig.graph import RegionInclusionGraph

__all__ = ["Corpus", "DOCUMENT_REGION_NAME"]

DOCUMENT_REGION_NAME = "document"


class Corpus:
    """A collection of tagged documents indexed as one instance."""

    def __init__(
        self,
        rig: RegionInclusionGraph | None = None,
        shards: int | None = None,
        shard_pool: str = "thread",
    ):
        self._texts: list[str] = []
        self._names: list[str] = []
        self._rig = rig
        self._shards = shards
        self._shard_pool = shard_pool
        self._engine: Engine | None = None

    def add(self, text: str, name: str | None = None) -> None:
        """Add one tagged document; the index is rebuilt lazily.

        Raises :class:`~repro.errors.ParseError` immediately on
        malformed markup, so a bad document never poisons the corpus.
        """
        if f"<{DOCUMENT_REGION_NAME}" in text:
            raise ParseError(
                f"documents must not use the reserved <{DOCUMENT_REGION_NAME}> tag"
            )
        from repro.engine.tagged import parse_tagged_text

        parse_tagged_text(text)  # validate eagerly
        self._texts.append(text)
        self._names.append(name if name is not None else f"doc{len(self._texts)}")
        self._engine = None

    def __len__(self) -> int:
        return len(self._texts)

    @property
    def document_names(self) -> tuple[str, ...]:
        return tuple(self._names)

    # ------------------------------------------------------------------

    def engine(self) -> Engine:
        """The engine over the combined index (built on demand)."""
        if self._engine is None:
            if not self._texts:
                raise EvaluationError("the corpus has no documents")
            combined = "\n".join(
                f"<{DOCUMENT_REGION_NAME}>\n{text}\n</{DOCUMENT_REGION_NAME}>"
                for text in self._texts
            )
            self._engine = Engine.from_tagged_text(
                combined,
                rig=self._rig,
                shards=self._shards,
                shard_pool=self._shard_pool,
            )
        return self._engine

    def query(self, query: str, optimize_query: bool = False) -> RegionSet:
        return self.engine().query(query, optimize_query=optimize_query)

    def extract(self, region: Region) -> str:
        return self.engine().extract(region)

    # ------------------------------------------------------------------
    # Document attribution.
    # ------------------------------------------------------------------

    def _document_regions(self) -> list[Region]:
        documents = self.engine().instance.region_set(DOCUMENT_REGION_NAME)
        return sorted(documents, key=lambda r: r.left)

    def document_of(self, region: Region) -> str:
        """The name of the document containing ``region``."""
        for index, document in enumerate(self._document_regions()):
            if document == region or document.includes(region):
                return self._names[index]
        raise EvaluationError(f"region {region} is not inside any document")

    def count_by_document(self, regions: RegionSet) -> dict[str, int]:
        """How many result regions fall in each document (zeros included)."""
        counts = {name: 0 for name in self._names}
        for region in regions:
            counts[self.document_of(region)] += 1
        return counts

    def documents_matching(self, query: str) -> Iterator[str]:
        """Names of documents whose unit region the query selects regions in."""
        seen: set[str] = set()
        for region in self.query(query):
            name = self.document_of(region)
            if name not in seen:
                seen.add(name)
                yield name
