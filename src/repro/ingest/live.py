"""Live corpora: segment-based document stores over a frozen base.

A :class:`LiveCorpus` holds an (optional) immutable *base* instance —
whatever the corpus was loaded with — plus ingested documents grouped
into **segments**: each committed append batch lands in a fresh segment
(the shard partitioner already cuts at top-level-tree boundaries, so a
segment is also a natural shard slice).  Deletes and updates never
rewrite a segment; they mark the old entry as a **tombstone** and (for
updates) re-append the new text at the end.

The assembled corpus is defined by its *layout*: the base text, then
every surviving document wrapped in the reserved ``<document>`` tag,
joined by single newlines — byte-for-byte the text
:class:`~repro.engine.corpus.Corpus` would have indexed.  That gives a
very strong oracle: the assembled :class:`~repro.core.Instance` must be
**bit-identical** (via :func:`~repro.engine.storage.instance_to_dict`)
to parsing the combined text from scratch, and the chaos harness holds
the server to exactly that.

Each document is parsed exactly once, in its own local coordinates;
assembly shifts the cached regions and tokens by cumulative offsets.
Two paths build the assembled instance:

* **append fast path** — a batch of pure appends extends the previous
  instance in ``O(new)`` via :meth:`Instance.appended` and
  :meth:`TextWordIndex.extended` (no region re-validation, no word
  index rebuild);
* **reassembly** — deletes/updates shift every later document, so the
  survivors are re-concatenated from their cached parses (still no
  re-parsing).

Compaction (:meth:`LiveCorpus.compact`) merges all segments into one
and physically drops tombstoned entries.  Because survivors keep their
order, the assembled layout — and therefore every query result — is
unchanged: compaction is pure maintenance and never bumps the corpus
generation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.instance import Instance
from repro.core.region import Region
from repro.core.regionset import RegionSet
from repro.core.wordindex import TextWordIndex, Token
from repro.engine.corpus import DOCUMENT_REGION_NAME
from repro.errors import (
    DuplicateDocumentError,
    IngestError,
    ParseError,
    UnknownDocumentError,
)

__all__ = ["LiveCorpus", "PreparedBatch", "INGEST_OP_KINDS"]

INGEST_OP_KINDS = ("append", "update", "delete")


class _Doc:
    """One ingested document: raw text plus its cached local parse."""

    __slots__ = ("doc_id", "text", "wrapped_len", "sets", "tokens", "deleted")

    def __init__(self, doc_id: str, text: str):
        from repro.engine.tagged import parse_tagged_text

        self.doc_id = doc_id
        self.text = text
        wrapped = f"<{DOCUMENT_REGION_NAME}>\n{text}\n</{DOCUMENT_REGION_NAME}>"
        self.wrapped_len = len(wrapped)
        document = parse_tagged_text(wrapped)
        instance = document.instance
        self.sets: dict[str, list[Region]] = {
            name: list(instance.region_set(name)) for name in instance.names
        }
        self.tokens: list[Token] = _index_tokens(instance.word_index)
        self.deleted = False

    def wrapped(self) -> str:
        return f"<{DOCUMENT_REGION_NAME}>\n{self.text}\n</{DOCUMENT_REGION_NAME}>"


@dataclass
class _Segment:
    """A contiguous run of ingested documents (one per append batch)."""

    docs: list[_Doc] = field(default_factory=list)

    def live_count(self) -> int:
        return sum(1 for doc in self.docs if not doc.deleted)


@dataclass
class PreparedBatch:
    """A validated, parsed batch ready to commit (no state mutated yet)."""

    ops: list[dict[str, Any]]
    docs: dict[str, _Doc]  # parsed append/update payloads by id
    appends_only: bool


def _index_tokens(word_index: Any) -> list[Token]:
    """The token occurrences of a :class:`TextWordIndex`, sorted by
    position — the same flattening ``instance_to_dict`` uses."""
    if not isinstance(word_index, TextWordIndex):
        raise IngestError(
            "live ingestion needs a text-backed word index; got "
            f"{type(word_index).__name__}"
        )
    tokens: list[Token] = []
    for token in word_index.vocabulary:
        lefts, rights, _ = word_index._occurrences[token]
        tokens.extend((token, l, r) for l, r in zip(lefts, rights))
    tokens.sort(key=lambda t: (t[1], t[2]))
    return tokens


class LiveCorpus:
    """The mutable document overlay of one ingest-enabled corpus.

    Not thread-safe by itself — the service serializes writers with a
    per-corpus lock; readers only ever see fully-built immutable
    :class:`Instance` snapshots returned by :meth:`commit`.
    """

    def __init__(
        self,
        base_instance: Instance | None = None,
        base_text: str | None = None,
    ):
        self._base_instance = base_instance
        self._base_text = base_text
        if base_instance is not None:
            self._base_sets = {
                name: list(base_instance.region_set(name))
                for name in base_instance.names
            }
            self._base_tokens = _index_tokens(base_instance.word_index)
            if base_text is not None:
                self._base_extent = len(base_text)
            else:
                max_right = base_instance._rights_max()
                for _, _, right in self._base_tokens:
                    if right > max_right:
                        max_right = right
                self._base_extent = max_right + 1
        else:
            self._base_sets = {}
            self._base_tokens = []
            self._base_extent = 0
        self._segments: list[_Segment] = []
        self._index: dict[str, _Doc] = {}
        self._tombstones = 0
        self._assembled: Instance | None = base_instance
        self._extent = self._base_extent

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def instance(self) -> Instance:
        """The current assembled instance (the base when unmutated)."""
        if self._assembled is None:
            self._assembled = self._reassemble()
        return self._assembled

    @property
    def document_count(self) -> int:
        """Live ingested documents (the base is not counted)."""
        return len(self._index)

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    @property
    def tombstone_count(self) -> int:
        return self._tombstones

    @property
    def document_ids(self) -> list[str]:
        return [
            doc.doc_id
            for segment in self._segments
            for doc in segment.docs
            if not doc.deleted
        ]

    def documents(self) -> list[tuple[str, str]]:
        """``(id, text)`` for every surviving ingested document, in the
        order they occupy the assembled instance (segment order)."""
        return [
            (doc.doc_id, doc.text)
            for segment in self._segments
            for doc in segment.docs
            if not doc.deleted
        ]

    def combined_text(self) -> str | None:
        """The full corpus text the assembled instance indexes, or
        ``None`` when the base engine carried no raw text."""
        if self._base_instance is not None and self._base_text is None:
            return None
        parts = [] if self._base_text is None else [self._base_text]
        for segment in self._segments:
            for doc in segment.docs:
                if not doc.deleted:
                    parts.append(doc.wrapped())
        return "\n".join(parts)

    def oracle_instance(self) -> Instance | None:
        """The rebuilt-from-scratch instance: a full re-parse of the
        combined text.  The bit-identity oracle of the chaos harness and
        the recovery tests; ``None`` without raw base text."""
        from repro.engine.tagged import parse_tagged_text

        text = self.combined_text()
        if text is None:
            return None
        return parse_tagged_text(text).instance

    # ------------------------------------------------------------------
    # Validation and application.
    # ------------------------------------------------------------------

    def prepare(self, ops: Any) -> PreparedBatch:
        """Validate a batch against the current state and parse its
        payloads; raises the :class:`~repro.errors.IngestError` family
        without mutating anything (batches are all-or-nothing)."""
        if not isinstance(ops, list) or not ops:
            raise IngestError(
                "an ingest batch must be a non-empty list of operations"
            )
        live = set(self._index)
        seen: set[str] = set()
        docs: dict[str, _Doc] = {}
        appends_only = True
        for position, op in enumerate(ops):
            where = f"operation {position}"
            if not isinstance(op, dict):
                raise IngestError(f"{where} is not an object")
            kind = op.get("op")
            if kind not in INGEST_OP_KINDS:
                raise IngestError(
                    f"{where} has unknown op {kind!r} "
                    f"(expected one of {', '.join(INGEST_OP_KINDS)})"
                )
            doc_id = op.get("id")
            if not isinstance(doc_id, str) or not doc_id:
                raise IngestError(f"{where} needs a non-empty string id")
            if doc_id in seen:
                raise DuplicateDocumentError(
                    f"document {doc_id!r} appears twice in one batch"
                )
            seen.add(doc_id)
            if kind == "append":
                if doc_id in live:
                    raise DuplicateDocumentError(
                        f"document {doc_id!r} already exists"
                    )
                docs[doc_id] = self._parse_payload(op, where)
                live.add(doc_id)
            elif kind == "update":
                appends_only = False
                if doc_id not in live:
                    raise UnknownDocumentError(
                        f"document {doc_id!r} does not exist"
                    )
                docs[doc_id] = self._parse_payload(op, where)
            else:  # delete
                appends_only = False
                if doc_id not in live:
                    raise UnknownDocumentError(
                        f"document {doc_id!r} does not exist"
                    )
                live.discard(doc_id)
        return PreparedBatch(ops=ops, docs=docs, appends_only=appends_only)

    def _parse_payload(self, op: dict[str, Any], where: str) -> _Doc:
        text = op.get("text")
        if not isinstance(text, str) or not text.strip():
            raise IngestError(f"{where} needs a non-empty string text")
        if f"<{DOCUMENT_REGION_NAME}" in text:
            raise IngestError(
                f"{where} uses the reserved <{DOCUMENT_REGION_NAME}> tag"
            )
        try:
            return _Doc(op["id"], text)
        except ParseError as exc:
            raise IngestError(f"{where} does not parse: {exc}") from exc

    def commit(self, prepared: PreparedBatch) -> Instance:
        """Apply a prepared batch and return the new assembled instance.

        Pure-append batches take the fast path; any delete or update
        shifts later documents and triggers a full (parse-free)
        reassembly from the cached per-document parses.
        """
        new_segment = _Segment()
        for op in prepared.ops:
            kind, doc_id = op["op"], op["id"]
            if kind in ("update", "delete"):
                old = self._index.pop(doc_id)
                old.deleted = True
                self._tombstones += 1
            if kind in ("append", "update"):
                doc = prepared.docs[doc_id]
                new_segment.docs.append(doc)
                self._index[doc_id] = doc
        if new_segment.docs:
            self._segments.append(new_segment)
        if prepared.appends_only and self._assembled is not None:
            self._assembled = self._append_assembled(new_segment.docs)
        else:
            self._assembled = self._reassemble()
        return self._assembled

    def apply(self, ops: Any) -> Instance:
        """:meth:`prepare` + :meth:`commit` (the WAL-replay path)."""
        return self.commit(self.prepare(ops))

    # ------------------------------------------------------------------
    # Assembly.
    # ------------------------------------------------------------------

    def _append_assembled(self, docs: list[_Doc]) -> Instance:
        assert self._assembled is not None
        additions: dict[str, list[Region]] = {}
        new_tokens: list[Token] = []
        for doc in docs:
            offset = self._extent + 1 if self._extent > 0 else 0
            for name, regions in doc.sets.items():
                additions.setdefault(name, []).extend(
                    region.shifted(offset) for region in regions
                )
            new_tokens.extend(
                (text, left + offset, right + offset)
                for text, left, right in doc.tokens
            )
            self._extent = offset + doc.wrapped_len
        word_index = self._assembled.word_index
        if not isinstance(word_index, TextWordIndex):
            raise IngestError(
                "live ingestion needs a text-backed word index"
            )
        return self._assembled.appended(
            additions, word_index.extended(new_tokens)
        )

    def _reassemble(self) -> Instance:
        sets: dict[str, list[Region]] = {
            name: list(regions) for name, regions in self._base_sets.items()
        }
        tokens: list[Token] = list(self._base_tokens)
        extent = self._base_extent
        for segment in self._segments:
            for doc in segment.docs:
                if doc.deleted:
                    continue
                offset = extent + 1 if extent > 0 else 0
                for name, regions in doc.sets.items():
                    sets.setdefault(name, []).extend(
                        region.shifted(offset) for region in regions
                    )
                tokens.extend(
                    (text, left + offset, right + offset)
                    for text, left, right in doc.tokens
                )
                extent = offset + doc.wrapped_len
        self._extent = extent
        return Instance(
            {
                name: RegionSet._from_sorted(sets[name])
                for name in sorted(sets)
            },
            TextWordIndex(tokens),
            validate=False,
        )

    # ------------------------------------------------------------------
    # Compaction and checkpointing.
    # ------------------------------------------------------------------

    def compact(self) -> dict[str, int] | None:
        """Merge every segment into one and drop tombstoned entries.

        Survivors keep their order, so the assembled layout — and every
        query answer — is unchanged; no generation bump is needed.
        Returns a summary, or ``None`` when there was nothing to do.
        """
        if len(self._segments) <= 1 and self._tombstones == 0:
            return None
        merged = _Segment(
            [
                doc
                for segment in self._segments
                for doc in segment.docs
                if not doc.deleted
            ]
        )
        summary = {
            "merged_segments": len(self._segments),
            "dropped_tombstones": self._tombstones,
            "live_documents": len(merged.docs),
        }
        self._segments = [merged] if merged.docs else []
        self._tombstones = 0
        return summary

    def small_segment_count(self, max_docs: int) -> int:
        """Segments at or below the size tier (the compaction trigger)."""
        return sum(
            1 for segment in self._segments if segment.live_count() <= max_docs
        )

    def state(self, through_batch: int) -> dict[str, Any]:
        """A checkpoint of the live overlay for the WAL snapshot file."""
        return {
            "through_batch": through_batch,
            "docs": [
                [doc.doc_id, doc.text]
                for segment in self._segments
                for doc in segment.docs
                if not doc.deleted
            ],
        }

    @classmethod
    def from_state(
        cls,
        state: dict[str, Any],
        base_instance: Instance | None = None,
        base_text: str | None = None,
    ) -> "LiveCorpus":
        """Rebuild the overlay from a checkpoint (one merged segment)."""
        live = cls(base_instance, base_text)
        docs = state.get("docs") or []
        if docs:
            live.apply(
                [
                    {"op": "append", "id": doc_id, "text": text}
                    for doc_id, text in docs
                ]
            )
        return live
