"""A crash-safe write-ahead log for corpus mutations.

Every ingest batch is recorded here *before* it is applied: one JSON
line per operation, closed by a commit line carrying the operation
count, every line checksummed with the same canonical-JSON sha256 used
by the index files (:mod:`repro.engine.storage`).  Durability contract:

* a batch is **committed** iff its commit record is on disk intact;
* :meth:`WriteAheadLog.append_batch` fsyncs once, after the commit
  record, and only then returns — so an acknowledged batch is exactly a
  committed batch;
* :meth:`WriteAheadLog.replay` yields committed batches only, in
  sequence order, skipping any torn tail a crash left behind (a batch
  whose commit record is missing, truncated, or checksum-corrupt was
  never acknowledged, so dropping it loses nothing).

The ``storage.write`` fault point fires before every record write,
which lets the recovery property tests kill an append at every record
boundary and assert the all-or-nothing semantics.

A checkpoint (:meth:`save_snapshot` + :meth:`truncate`) bounds replay
work: the snapshot file is written atomically (temp file + fsync +
rename + directory fsync, exactly like ``save_instance``) and records
the last batch sequence it folds in; replay then skips batches at or
below that watermark, so a crash *between* snapshot and truncation is
harmless — the overlapping batches are simply not re-applied.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterator

from repro.errors import CorruptIndexError, StorageError
from repro.faults import registry as _faults
from repro.obs.metrics import (
    WAL_BYTES_TOTAL,
    WAL_RECORDS_TOTAL,
    WAL_REPLAYED_RECORDS_TOTAL,
    WAL_TRUNCATIONS_TOTAL,
    MetricsRegistry,
    global_registry,
)

__all__ = ["WriteAheadLog", "wal_checksum"]


def wal_checksum(record: dict[str, Any]) -> str:
    """sha256 of the canonical JSON of ``record`` (sans checksum)."""
    import hashlib

    core = {k: v for k, v in record.items() if k != "checksum"}
    canonical = json.dumps(core, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def _fsync_directory(directory: Path) -> None:
    try:
        dir_fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)


class WriteAheadLog:
    """The per-corpus mutation log: ``<dir>/<corpus>.wal`` JSON lines
    plus an atomic ``<dir>/<corpus>.snapshot.json`` checkpoint."""

    def __init__(
        self,
        directory: str | Path,
        corpus: str,
        *,
        fsync: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        self.directory = Path(directory)
        self.corpus = corpus
        self.fsync = fsync
        self.path = self.directory / f"{corpus}.wal"
        self.snapshot_path = self.directory / f"{corpus}.snapshot.json"
        self.directory.mkdir(parents=True, exist_ok=True)
        metrics = metrics if metrics is not None else global_registry()
        self._records = metrics.counter(
            WAL_RECORDS_TOTAL, help="WAL records written, by kind"
        )
        self._bytes = metrics.counter(
            WAL_BYTES_TOTAL, help="WAL bytes written"
        )
        self._replayed = metrics.counter(
            WAL_REPLAYED_RECORDS_TOTAL, help="WAL records re-applied at startup"
        )
        self._truncations = metrics.counter(
            WAL_TRUNCATIONS_TOTAL, help="WAL truncations after checkpoint"
        )
        self._next_seq = self._scan_next_seq()

    # ------------------------------------------------------------------
    # Writing.
    # ------------------------------------------------------------------

    @property
    def next_seq(self) -> int:
        """The sequence number the next batch will use."""
        return self._next_seq

    @property
    def last_seq(self) -> int:
        """The highest batch sequence ever handed out (0 when fresh)."""
        return self._next_seq - 1

    def append_batch(self, ops: list[dict[str, Any]]) -> int:
        """Record one batch durably; returns its sequence number.

        All-or-nothing: any failure (I/O error, injected fault) before
        the final fsync leaves at most a commit-less partial batch in
        the file, which :meth:`replay` ignores.  The sequence number is
        consumed either way, so a retried batch never collides.
        """
        seq = self._next_seq
        self._next_seq += 1
        with open(self.path, "a", encoding="utf-8") as handle:
            for index, op in enumerate(ops):
                record = {"seq": seq, "kind": "op", "index": index, "op": op}
                self._write_record(handle, record)
            commit = {"seq": seq, "kind": "commit", "ops": len(ops)}
            self._write_record(handle, commit)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        return seq

    def _write_record(self, handle, record: dict[str, Any]) -> None:
        _faults.fire("storage.write")
        record["checksum"] = wal_checksum(record)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        handle.write(line + "\n")
        self._records.inc(kind=record["kind"])
        self._bytes.inc(len(line) + 1)

    # ------------------------------------------------------------------
    # Reading.
    # ------------------------------------------------------------------

    def _scan_next_seq(self) -> int:
        """The first unused sequence number: one past the highest seq
        mentioned by any intact record (committed or not), and never
        below the snapshot watermark."""
        highest = 0
        snapshot = self.load_snapshot()
        if snapshot is not None:
            highest = int(snapshot.get("through_batch", 0))
        for record in self._intact_records():
            if record["seq"] > highest:
                highest = record["seq"]
        return highest + 1

    def _intact_records(self) -> Iterator[dict[str, Any]]:
        """Every record that parses and passes its checksum; reading
        stops at the first damaged line (everything after a torn write
        is suspect, and a single-writer log only tears at the tail)."""
        try:
            raw = self.path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return
        except OSError as exc:  # pragma: no cover - disk failure
            raise StorageError(f"cannot read WAL {self.path}: {exc}") from exc
        for line in raw.splitlines():
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                return
            if not isinstance(record, dict) or "seq" not in record:
                return
            if record.get("checksum") != wal_checksum(record):
                return
            yield record

    def replay(self, after: int = 0) -> list[tuple[int, list[dict[str, Any]]]]:
        """Committed batches with ``seq > after``, in sequence order.

        A batch counts only when its commit record is intact and every
        one of its ``ops`` operation records is present.
        """
        ops_by_seq: dict[int, dict[int, dict[str, Any]]] = {}
        committed: dict[int, int] = {}
        for record in self._intact_records():
            seq = record["seq"]
            if record.get("kind") == "op":
                ops_by_seq.setdefault(seq, {})[record["index"]] = record["op"]
            elif record.get("kind") == "commit":
                committed[seq] = record["ops"]
        batches: list[tuple[int, list[dict[str, Any]]]] = []
        for seq in sorted(committed):
            if seq <= after:
                continue
            count = committed[seq]
            ops = ops_by_seq.get(seq, {})
            if len(ops) != count or set(ops) != set(range(count)):
                continue  # commit without all its ops: treat as torn
            batch = [ops[i] for i in range(count)]
            batches.append((seq, batch))
            self._replayed.inc(count + 1)
        return batches

    # ------------------------------------------------------------------
    # Checkpointing.
    # ------------------------------------------------------------------

    def save_snapshot(self, state: dict[str, Any]) -> None:
        """Atomically persist a checkpoint of the live corpus state.

        ``state`` must carry ``through_batch`` — the last batch sequence
        folded into it; :meth:`replay` skips batches at or below it.
        """
        if "through_batch" not in state:
            raise ValueError("snapshot state needs a through_batch watermark")
        _faults.fire("storage.write")
        data = dict(state)
        data["checksum"] = wal_checksum(data)
        payload = json.dumps(data, sort_keys=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=self.snapshot_path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            os.replace(tmp_name, self.snapshot_path)
            if self.fsync:
                _fsync_directory(self.directory)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def load_snapshot(self) -> dict[str, Any] | None:
        """The latest checkpoint, or ``None``; checksum-verified."""
        try:
            raw = self.snapshot_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:  # pragma: no cover - disk failure
            raise StorageError(
                f"cannot read snapshot {self.snapshot_path}: {exc}"
            ) from exc
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CorruptIndexError(
                f"snapshot {self.snapshot_path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(data, dict) or data.get("checksum") != wal_checksum(data):
            raise CorruptIndexError(
                f"snapshot {self.snapshot_path} failed checksum verification"
            )
        return data

    def truncate(self) -> None:
        """Atomically replace the log with an empty file (post-checkpoint)."""
        _faults.fire("storage.write")
        fd, tmp_name = tempfile.mkstemp(
            dir=self.directory, prefix=self.path.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8"):
                pass
            os.replace(tmp_name, self.path)
            if self.fsync:
                _fsync_directory(self.directory)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._truncations.inc()

    def size_bytes(self) -> int:
        try:
            return self.path.stat().st_size
        except OSError:
            return 0
