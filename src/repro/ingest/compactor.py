"""The background segment compactor.

A single daemon thread that periodically asks for compaction
*candidates* — ingest-enabled corpora whose small-segment count crossed
the size-tier trigger, or that carry tombstones — and compacts **at
most one corpus per tick** (the rate limit: compaction holds the
corpus's writer lock and burns CPU re-checkpointing, so it must trickle
rather than storm).  When the :class:`~repro.server.health.HealthMonitor`
reports anything other than ``healthy`` the tick yields entirely:
query load and recovery always win over maintenance.

The compactor never touches corpus state itself — it only calls back
into the service, which owns the per-corpus locking, the WAL
checkpoint, and the metrics.  That keeps this module free of any
ordering assumptions and makes :meth:`run_once` trivially testable.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["BackgroundCompactor"]


class BackgroundCompactor:
    """Drive ``compact(name)`` over ``candidates()`` on a timer."""

    def __init__(
        self,
        candidates: Callable[[], list[str]],
        compact: Callable[[str], object],
        *,
        interval: float = 5.0,
        health: object | None = None,
    ):
        if interval <= 0:
            raise ValueError("compaction interval must be positive")
        self._candidates = candidates
        self._compact = compact
        self._interval = interval
        self._health = health
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.ticks = 0
        self.yields = 0
        self.runs = 0

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self._thread is not None:
            return
        self._thread = threading.Thread(
            target=self._loop, name="repro-compactor", daemon=True
        )
        self._thread.start()

    def close(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def _loop(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self.run_once()
            except Exception:  # pragma: no cover - defensive
                # Maintenance must never take the server down; a failed
                # compaction leaves the corpus exactly as it was and the
                # next tick tries again.
                pass

    # ------------------------------------------------------------------

    def run_once(self) -> str | None:
        """One tick: yield under load pressure, else compact the first
        candidate.  Returns the compacted corpus name, or ``None``."""
        self.ticks += 1
        health = self._health
        if health is not None and getattr(health, "state", "healthy") != "healthy":
            self.yields += 1
            return None
        candidates = self._candidates()
        if not candidates:
            return None
        name = candidates[0]
        self._compact(name)
        self.runs += 1
        return name
