"""Live ingestion: generation-versioned corpus writes under traffic.

The write path of the serving stack (see ``docs/internals.md``,
"Segments, generations, and the WAL"):

* :mod:`repro.ingest.wal` — the checksummed, fsync'd write-ahead log
  every mutation hits first, with committed-batch-only replay and
  atomic snapshot checkpoints;
* :mod:`repro.ingest.live` — :class:`LiveCorpus`, the segment +
  tombstone document overlay whose assembled instance is bit-identical
  to re-parsing the combined corpus text from scratch;
* :mod:`repro.ingest.compactor` — the rate-limited, health-yielding
  background thread that merges small segments and drops tombstones
  without ever changing a query answer.
"""

from repro.ingest.compactor import BackgroundCompactor
from repro.ingest.live import INGEST_OP_KINDS, LiveCorpus, PreparedBatch
from repro.ingest.wal import WriteAheadLog, wal_checksum

__all__ = [
    "BackgroundCompactor",
    "INGEST_OP_KINDS",
    "LiveCorpus",
    "PreparedBatch",
    "WriteAheadLog",
    "wal_checksum",
]
