"""FMFT formulas: syntax, free variables, and the restricted fragment.

The first-order monadic theory of finite binary trees has atomic
formulas ``x = y``, ``x ⊃ y`` (proper prefix), ``x < y`` (lexicographic
order) and ``Q_i(x)``, closed under the connectives and quantifiers.
Our predicate atoms are tagged ``region`` or ``pattern`` to mirror the
split of the ``Q_i`` in Definition 3.2.

:func:`is_restricted` recognizes the fragment of Definition 3.1 — the
image of the region algebra under Proposition 3.3:

1. ``Q_i(x)`` is restricted;
2. if ``φ₁, φ₂`` are restricted then so are ``φ₁ ∨ φ₂``, ``φ₁ ∧ φ₂``,
   ``φ₁ ∧ ¬φ₂`` (same free variable), and
   ``(∃y) φ₁ ∧ φ₂ ∧ x ∘ y`` / ``(∃y) φ₁ ∧ φ₂ ∧ y ∘ x`` with
   ``∘ ∈ {⊃, <}`` and distinct free variables ``x, y``.

One liberalization: selections ``σ_p(e)`` translate to
``φ ∧ pattern_p(x)``, so a bare pattern atom is allowed wherever a
``Q_i(x)`` is — Definition 3.2 treats patterns as additional monadic
predicates ``Q_{n+j}``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Literal

__all__ = [
    "Formula",
    "PredicateAtom",
    "PrefixAtom",
    "OrderAtom",
    "EqualsAtom",
    "Not",
    "And",
    "Or",
    "Exists",
    "ForAll",
    "free_variables",
    "is_restricted",
    "walk_formula",
]


@dataclass(frozen=True, slots=True)
class Formula:
    """Base class of all formula nodes."""


@dataclass(frozen=True, slots=True)
class PredicateAtom(Formula):
    """``Q(x)`` — a monadic predicate applied to a variable.

    ``kind`` distinguishes the region-name predicates ``Q_1..Q_n`` from
    the pattern predicates ``Q_{n+1}..Q_{n+k}`` of Definition 3.2.
    """

    kind: Literal["region", "pattern"]
    predicate: str
    variable: str


@dataclass(frozen=True, slots=True)
class PrefixAtom(Formula):
    """``x ⊃ y``: ``x`` is a proper prefix of ``y`` (region inclusion)."""

    left: str
    right: str


@dataclass(frozen=True, slots=True)
class OrderAtom(Formula):
    """``x < y``: ``x`` precedes ``y`` in document order."""

    left: str
    right: str


@dataclass(frozen=True, slots=True)
class EqualsAtom(Formula):
    """``x = y``."""

    left: str
    right: str


@dataclass(frozen=True, slots=True)
class Not(Formula):
    body: Formula


@dataclass(frozen=True, slots=True)
class And(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True, slots=True)
class Or(Formula):
    left: Formula
    right: Formula


@dataclass(frozen=True, slots=True)
class Exists(Formula):
    variable: str
    body: Formula


@dataclass(frozen=True, slots=True)
class ForAll(Formula):
    variable: str
    body: Formula


def walk_formula(formula: Formula) -> Iterator[Formula]:
    yield formula
    if isinstance(formula, Not):
        yield from walk_formula(formula.body)
    elif isinstance(formula, (And, Or)):
        yield from walk_formula(formula.left)
        yield from walk_formula(formula.right)
    elif isinstance(formula, (Exists, ForAll)):
        yield from walk_formula(formula.body)


def free_variables(formula: Formula) -> frozenset[str]:
    if isinstance(formula, PredicateAtom):
        return frozenset((formula.variable,))
    if isinstance(formula, (PrefixAtom, OrderAtom, EqualsAtom)):
        return frozenset((formula.left, formula.right))
    if isinstance(formula, Not):
        return free_variables(formula.body)
    if isinstance(formula, (And, Or)):
        return free_variables(formula.left) | free_variables(formula.right)
    if isinstance(formula, (Exists, ForAll)):
        return free_variables(formula.body) - {formula.variable}
    raise TypeError(f"unknown formula node {type(formula).__name__}")


def is_restricted(formula: Formula) -> bool:
    """Does ``formula`` belong to the Definition 3.1 fragment?"""
    if isinstance(formula, PredicateAtom):
        return True
    if isinstance(formula, Or):
        return (
            is_restricted(formula.left)
            and is_restricted(formula.right)
            and free_variables(formula.left) == free_variables(formula.right)
        )
    if isinstance(formula, And):
        # φ₁ ∧ φ₂  or  φ₁ ∧ ¬φ₂, same single free variable.
        right = formula.right
        right_core = right.body if isinstance(right, Not) else right
        return (
            is_restricted(formula.left)
            and is_restricted(right_core)
            and free_variables(formula.left) == free_variables(right_core)
            and len(free_variables(formula.left)) == 1
        )
    if isinstance(formula, Exists):
        # (∃y) φ₁ ∧ φ₂ ∧ x ∘ y   (grouped as And(And(φ₁, φ₂), atom))
        body = formula.body
        if not isinstance(body, And) or not isinstance(body.left, And):
            return False
        phi1, phi2, atom = body.left.left, body.left.right, body.right
        if not isinstance(atom, (PrefixAtom, OrderAtom)):
            return False
        if not (is_restricted(phi1) and is_restricted(phi2)):
            return False
        x_vars = free_variables(phi1)
        y_vars = free_variables(phi2)
        if len(x_vars) != 1 or len(y_vars) != 1 or x_vars == y_vars:
            return False
        (x,) = x_vars
        (y,) = y_vars
        if y != formula.variable:
            return False
        return {atom.left, atom.right} == {x, y}
    return False
