"""Evaluating FMFT formulas over finite tree models.

Quantifiers range over the *words in the model* (the union of the
region predicates) — the active domain.  For the restricted fragment of
Definition 3.1 this matches the full theory: restricted formulas only
ever apply predicates to every variable, so witnesses outside the model
cannot satisfy them.  For general formulas the active-domain semantics
is an explicit, documented substitution for Rabin-style decision
procedures (DESIGN.md §2); it is what Theorems 3.4/3.6 need for
*finite* counter-model search.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import EvaluationError
from repro.fmft.formula import (
    And,
    EqualsAtom,
    Exists,
    ForAll,
    Formula,
    Not,
    Or,
    OrderAtom,
    PredicateAtom,
    PrefixAtom,
    free_variables,
)
from repro.fmft.model import TreeModel, word_precedes, word_prefix_includes

__all__ = ["holds", "satisfying_words"]


def holds(formula: Formula, model: TreeModel, env: Mapping[str, str]) -> bool:
    """Does ``model, env ⊨ formula``?  ``env`` binds the free variables."""
    return _holds(formula, model, dict(env), sorted(model.words))


def _holds(
    formula: Formula, model: TreeModel, env: dict[str, str], domain: list[str]
) -> bool:
    if isinstance(formula, PredicateAtom):
        word = _lookup(env, formula.variable)
        table = model.regions if formula.kind == "region" else model.patterns
        return word in table.get(formula.predicate, frozenset())
    if isinstance(formula, PrefixAtom):
        return word_prefix_includes(_lookup(env, formula.left), _lookup(env, formula.right))
    if isinstance(formula, OrderAtom):
        return word_precedes(_lookup(env, formula.left), _lookup(env, formula.right))
    if isinstance(formula, EqualsAtom):
        return _lookup(env, formula.left) == _lookup(env, formula.right)
    if isinstance(formula, Not):
        return not _holds(formula.body, model, env, domain)
    if isinstance(formula, And):
        return _holds(formula.left, model, env, domain) and _holds(
            formula.right, model, env, domain
        )
    if isinstance(formula, Or):
        return _holds(formula.left, model, env, domain) or _holds(
            formula.right, model, env, domain
        )
    if isinstance(formula, Exists):
        saved = env.get(formula.variable)
        try:
            for word in domain:
                env[formula.variable] = word
                if _holds(formula.body, model, env, domain):
                    return True
            return False
        finally:
            _restore(env, formula.variable, saved)
    if isinstance(formula, ForAll):
        saved = env.get(formula.variable)
        try:
            for word in domain:
                env[formula.variable] = word
                if not _holds(formula.body, model, env, domain):
                    return False
            return True
        finally:
            _restore(env, formula.variable, saved)
    raise EvaluationError(f"unknown formula node {type(formula).__name__}")


def _lookup(env: Mapping[str, str], variable: str) -> str:
    try:
        return env[variable]
    except KeyError:
        raise EvaluationError(f"unbound variable {variable!r}") from None


def _restore(env: dict[str, str], variable: str, saved: str | None) -> None:
    if saved is None:
        env.pop(variable, None)
    else:
        env[variable] = saved


def satisfying_words(formula: Formula, model: TreeModel) -> frozenset[str]:
    """``φ(t)``: the words satisfying a formula with one free variable."""
    variables = free_variables(formula)
    if len(variables) != 1:
        raise EvaluationError(
            f"satisfying_words needs exactly one free variable, got {sorted(variables)}"
        )
    (variable,) = variables
    domain = sorted(model.words)
    return frozenset(
        word for word in domain if _holds(formula, model, {variable: word}, domain)
    )
