"""The Proposition 3.3 translations: algebra ⇄ restricted formulas.

``algebra_to_formula`` follows the constructive proof verbatim:

* ``R_i``            ↦ ``Q_i(x)``
* ``e₁ ∪ e₂``        ↦ ``φ₁ ∨ φ₂``
* ``e₁ ∩ e₂``        ↦ ``φ₁ ∧ φ₂``
* ``e₁ − e₂``        ↦ ``φ₁ ∧ ¬φ₂``
* ``e₁ ⊃ e₂``        ↦ ``(∃y) φ₁(x) ∧ φ₂(y) ∧ x ⊃ y``
* ``e₁ ⊂ e₂``        ↦ ``(∃y) φ₁(x) ∧ φ₂(y) ∧ y ⊃ x``
* ``e₁ < e₂``        ↦ ``(∃y) φ₁(x) ∧ φ₂(y) ∧ x < y``
* ``e₁ > e₂``        ↦ ``(∃y) φ₁(x) ∧ φ₂(y) ∧ y < x``
* ``σ_p(e)``         ↦ ``φ ∧ Q_{n+p}(x)``

``formula_to_algebra`` is the converse ("completely analogous" in the
paper) and is total on the restricted fragment as recognized by
:func:`repro.fmft.formula.is_restricted`.  Round-tripping an expression
returns a structurally equal expression; semantic agreement on models
is the content of Proposition 3.3 and is property-tested.

Also provided are the translations of the extended operators (used by
Theorems 3.6/5.5's remark that ``⊃_d`` and ``BI`` are FMFT-expressible —
with *general*, non-restricted formulas).
"""

from __future__ import annotations

from itertools import count

from repro.algebra import ast as A
from repro.errors import ReproError
from repro.fmft.formula import (
    And,
    Exists,
    Formula,
    Not,
    Or,
    OrderAtom,
    PredicateAtom,
    PrefixAtom,
)

__all__ = [
    "algebra_to_formula",
    "formula_to_algebra",
    "directly_including_formula",
    "both_included_formula",
]


def algebra_to_formula(expr: A.Expr, variable: str = "x") -> Formula:
    """The restricted formula of Proposition 3.3 for a core expression."""
    fresh = count()

    def translate(e: A.Expr, var: str) -> Formula:
        if isinstance(e, A.NameRef):
            return PredicateAtom("region", e.name, var)
        if isinstance(e, A.Select):
            return And(
                translate(e.child, var), PredicateAtom("pattern", e.pattern, var)
            )
        if isinstance(e, A.Union):
            return Or(translate(e.left, var), translate(e.right, var))
        if isinstance(e, A.Intersection):
            return And(translate(e.left, var), translate(e.right, var))
        if isinstance(e, A.Difference):
            return And(translate(e.left, var), Not(translate(e.right, var)))
        if isinstance(e, (A.Including, A.IncludedIn, A.Preceding, A.Following)):
            witness = f"y{next(fresh)}"
            phi1 = translate(e.left, var)
            phi2 = translate(e.right, witness)
            if isinstance(e, A.Including):
                atom: Formula = PrefixAtom(var, witness)
            elif isinstance(e, A.IncludedIn):
                atom = PrefixAtom(witness, var)
            elif isinstance(e, A.Preceding):
                atom = OrderAtom(var, witness)
            else:
                atom = OrderAtom(witness, var)
            return Exists(witness, And(And(phi1, phi2), atom))
        raise ReproError(
            f"only core-algebra expressions translate to restricted formulas; "
            f"got {type(e).__name__}"
        )

    return translate(expr, variable)


def formula_to_algebra(formula: Formula) -> A.Expr:
    """The converse translation, total on the restricted fragment."""
    if isinstance(formula, PredicateAtom):
        if formula.kind == "region":
            return A.NameRef(formula.predicate)
        raise ReproError(
            "a bare pattern atom has no algebra counterpart; patterns occur "
            "as conjuncts σ_p in restricted formulas built from expressions"
        )
    if isinstance(formula, Or):
        return A.Union(formula_to_algebra(formula.left), formula_to_algebra(formula.right))
    if isinstance(formula, And):
        # φ ∧ Q_pattern(x) ↦ σ_p ;  φ₁ ∧ ¬φ₂ ↦ − ;  φ₁ ∧ φ₂ ↦ ∩
        if isinstance(formula.right, PredicateAtom) and formula.right.kind == "pattern":
            return A.Select(formula.right.predicate, formula_to_algebra(formula.left))
        if isinstance(formula.right, Not):
            return A.Difference(
                formula_to_algebra(formula.left),
                formula_to_algebra(formula.right.body),
            )
        return A.Intersection(
            formula_to_algebra(formula.left), formula_to_algebra(formula.right)
        )
    if isinstance(formula, Exists):
        body = formula.body
        if not isinstance(body, And) or not isinstance(body.left, And):
            raise ReproError("existential body is not in restricted form")
        phi1, phi2, atom = body.left.left, body.left.right, body.right
        left = formula_to_algebra(phi1)
        right = formula_to_algebra(phi2)
        y = formula.variable
        if isinstance(atom, PrefixAtom):
            return A.Including(left, right) if atom.right == y else A.IncludedIn(left, right)
        if isinstance(atom, OrderAtom):
            return A.Preceding(left, right) if atom.right == y else A.Following(left, right)
        raise ReproError(f"unexpected relation atom {type(atom).__name__}")
    raise ReproError(
        f"formula node {type(formula).__name__} is outside the restricted fragment"
    )


def directly_including_formula(
    source: str, target: str, variable: str = "x"
) -> Formula:
    """``x ∈ source ⊃_d target`` as a *general* FMFT formula.

    ``Q_s(x) ∧ ∃y (Q_t(y) ∧ x ⊃ y ∧ ¬∃z (x ⊃ z ∧ z ⊃ y))`` — the
    inner negated existential is exactly what the restricted fragment
    forbids (Theorem 5.1 shows it cannot be eliminated).
    """
    x, y, z = variable, f"{variable}__w", f"{variable}__b"
    no_between = Not(Exists(z, And(PrefixAtom(x, z), PrefixAtom(z, y))))
    return And(
        PredicateAtom("region", source, x),
        Exists(y, And(And(PredicateAtom("region", target, y), PrefixAtom(x, y)), no_between)),
    )


def both_included_formula(
    source: str, first: str, second: str, variable: str = "x"
) -> Formula:
    """``x ∈ source BI (first, second)`` as a general FMFT formula.

    ``Q_r(x) ∧ ∃y ∃z (Q_s(y) ∧ Q_t(z) ∧ x ⊃ y ∧ x ⊃ z ∧ y < z)`` — two
    simultaneous witnesses, which restricted formulas (one existential
    at a time) cannot correlate (Theorem 5.3).
    """
    x, y, z = variable, f"{variable}__s", f"{variable}__t"
    inner = And(
        And(
            And(PredicateAtom("region", first, y), PredicateAtom("region", second, z)),
            And(PrefixAtom(x, y), PrefixAtom(x, z)),
        ),
        OrderAtom(y, z),
    )
    return And(PredicateAtom("region", source, x), Exists(y, Exists(z, inner)))
